"""Shared recording helpers for the throughput benchmark suite.

Every benchmark module in this directory records its measurements into
the same ``BENCH_throughput.json`` at the repo root. This module is the
single place that knows where that file lives and how sections merge
into it (via :func:`repro.experiments.throughput.write_throughput_json`,
whose top-level-key merge lets independently run sections accumulate
instead of clobbering each other).
"""

from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.throughput import BENCH_JSON_NAME, write_throughput_json

#: Repository root — benchmarks/ lives one level below it.
REPO_ROOT = Path(__file__).parent.parent

#: The shared benchmark record all throughput suites write into.
BENCH_JSON_PATH = REPO_ROOT / BENCH_JSON_NAME


def record_section(
    report: Dict[str, Any], key: Optional[str] = None
) -> Dict[str, Any]:
    """Merge ``report`` into ``BENCH_throughput.json`` and return the file.

    With ``key`` the report is nested under that top-level key (the
    ``"sharded"`` / ``"durable"`` sections); without it the report's own
    top-level keys merge directly (the batch-ingestion matrix).
    """
    section = report if key is None else {key: report}
    return write_throughput_json(BENCH_JSON_PATH, report=section)
