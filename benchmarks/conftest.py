"""Benchmark-harness fixtures.

Each figure benchmark runs its experiment once (``benchmark.pedantic`` with
one round — these are minutes-scale reproductions, not microbenchmarks),
prints the paper-style series table, and persists it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from real runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    """``--quick``: shrink benchmark workloads to CI smoke-test size.

    Suites that honor it (currently the query-engine throughput suite)
    keep their structure and assertions-of-shape but drop the timing
    bars, which are meaningless on shared CI runners.
    """
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks at smoke-test size (skips timing bars)",
    )


@pytest.fixture(scope="session")
def quick_mode(request):
    """Whether the suite runs at smoke-test size."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture
def save_result():
    """Persist an ExperimentResult's rendering and print it."""

    def _save(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
