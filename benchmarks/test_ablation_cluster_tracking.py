"""Ablation: cluster tracking over biased vs unbiased reservoirs.

The paper motivates biased sampling for mining applications via
classification (Figures 7-8) and scatter plots (Figure 9); this ablation
runs the *clustering* application its Section 4 discussion promises:
periodic warm-started k-means over each reservoir, scored by the distance
between the recovered centers and the generator's true (current) centers.

Expected: the unbiased reservoir's centers lag toward the historical
average of each cluster's drift trail; the biased reservoir's centers stay
near the current positions, with the gap growing as the walk lengthens.
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir, UnbiasedReservoir
from repro.experiments.runner import ExperimentResult
from repro.mining.cluster_tracking import ClusterTracker
from repro.streams import EvolvingClusterStream


def run_ablation(length=120_000, capacity=1000, lam=1e-4, seeds=(61, 62, 63)):
    checkpoints = None
    acc = {}
    for seed in seeds:
        true_center_history = {}
        trackers = {
            "biased": ClusterTracker(
                SpaceConstrainedReservoir(
                    lam=lam, capacity=capacity, rng=seed + 10
                ),
                k=4,
                every=20_000,
                rng=seed,
            ),
            "unbiased": ClusterTracker(
                UnbiasedReservoir(capacity, rng=seed + 20),
                k=4,
                every=20_000,
                rng=seed,
            ),
        }
        # Drive both trackers from one generator pass, snapshotting the
        # generator's true centers at each checkpoint for scoring.
        gen = EvolvingClusterStream(
            length=length, n_clusters=4, drift=0.05, drift_every=100, rng=seed
        )
        for i, point in enumerate(gen, start=1):
            for tracker in trackers.values():
                tracker.offer(point)
            if i % 20_000 == 0:
                true_center_history[i] = gen.centers.copy()
        for name, tracker in trackers.items():
            for checkpoint in tracker.checkpoints:
                truth = true_center_history[checkpoint.t]
                dists = np.linalg.norm(
                    checkpoint.centers[:, None, :] - truth[None, :, :],
                    axis=2,
                )
                err = float(dists.min(axis=1).mean())
                acc.setdefault((checkpoint.t, name), []).append(err)
        checkpoints = sorted({t for t, _ in acc})
    rows = []
    for t in checkpoints:
        rows.append(
            {
                "t": t,
                "biased_error": float(np.mean(acc[(t, "biased")])),
                "unbiased_error": float(np.mean(acc[(t, "unbiased")])),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_cluster_tracking",
        title="k-means center tracking error vs progression "
        "(biased vs unbiased reservoir)",
        params={"length": length, "capacity": capacity, "lambda": lam,
                "k": 4},
        columns=["t", "biased_error", "unbiased_error"],
        rows=rows,
    )


def test_ablation_cluster_tracking(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    # Biased tracking is at least as good everywhere and clearly better
    # by the end of the stream.
    last = result.rows[-1]
    assert last["biased_error"] < last["unbiased_error"]
    wins = sum(
        1
        for r in result.rows
        if r["biased_error"] <= r["unbiased_error"] * 1.1
    )
    assert wins >= len(result.rows) - 1
    # Unbiased error grows with progression (stale trail pulls centers).
    first = result.rows[0]
    assert last["unbiased_error"] > first["unbiased_error"]
