"""Ablation: Horvitz-Thompson vs self-normalized (Hajek) estimation.

The paper's Equation 18 is plain HT; the experiments report fractions,
where the ratio (Hajek) form is what keeps estimates bounded. This
ablation quantifies the difference on class-distribution queries: plain HT
divides by the *true* horizon size (known here), Hajek divides by the
estimated one. Hajek should be uniformly more stable at small horizons.
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir
from repro.experiments.runner import ExperimentResult
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    class_count_query,
    class_distribution_query,
    nan_penalized_error,
)
from repro.streams import INTRUSION_CLASSES, IntrusionStream


def run_ablation(length=100_000, capacity=1000, lam=1e-4, seeds=(21, 22, 23)):
    n_classes = len(INTRUSION_CLASSES)
    horizons = (500, 2_000, 10_000, 50_000)
    acc = {h: {"hajek": [], "plain_ht": []} for h in horizons}
    for seed in seeds:
        hist = StreamHistory(34)
        res = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=seed)
        for p in IntrusionStream(length=length, rng=seed):
            hist.observe(p)
            res.offer(p)
        estimator = QueryEstimator(res)
        for h in horizons:
            truth = hist.evaluate(class_distribution_query(h, n_classes))
            hajek = estimator.estimate(
                class_distribution_query(h, n_classes)
            ).estimate
            counts = estimator.estimate(class_count_query(h, n_classes))
            plain = counts.estimate / min(h, length)  # divide by true size
            acc[h]["hajek"].append(nan_penalized_error(truth, hajek))
            acc[h]["plain_ht"].append(nan_penalized_error(truth, plain))
    rows = [
        {
            "horizon": h,
            "hajek_error": float(np.mean(acc[h]["hajek"])),
            "plain_ht_error": float(np.mean(acc[h]["plain_ht"])),
        }
        for h in horizons
    ]
    return ExperimentResult(
        experiment_id="ablation_estimator",
        title="Hajek (self-normalized) vs plain HT on class fractions",
        params={"length": length, "capacity": capacity, "lambda": lam},
        columns=["horizon", "hajek_error", "plain_ht_error"],
        rows=rows,
    )


def test_ablation_estimator_weighting(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    # Hajek should win (or tie) at the small horizons where the realized
    # sample size fluctuates most relative to its expectation.
    small = result.rows[0]
    assert small["hajek_error"] <= small["plain_ht_error"] * 1.5
    # Both must be sane everywhere.
    for r in result.rows:
        assert r["hajek_error"] < 0.2
        assert np.isfinite(r["plain_ht_error"])
