"""Ablation: whole-distribution (histogram) tracking over recent horizons.

Figure 5 shows biased sampling winning on a *single* range predicate; this
ablation generalizes to the full distribution: estimate the equi-width
histogram of one dimension over recent horizons and score total-variation
distance against the exact horizon histogram. On an evolving stream the
unbiased reservoir's histogram is a lifetime blend; the biased one tracks
the recent shape.
"""

import numpy as np

from repro.experiments.common import drive, make_sampler_pair
from repro.experiments.runner import ExperimentResult
from repro.queries import StreamHistory
from repro.queries.histogram import estimate_histogram, exact_histogram
from repro.streams import EvolvingClusterStream

EDGES = np.linspace(-2.0, 3.0, 26)


def run_ablation(length=120_000, capacity=1000, lam=1e-4, seeds=(41, 42, 43)):
    horizons = (1_000, 5_000, 20_000)
    acc = {h: {"biased": [], "unbiased": []} for h in horizons}
    for seed in seeds:
        hist = StreamHistory(10)
        samplers = make_sampler_pair(capacity, lam, seed)
        drive(
            EvolvingClusterStream(length=length, drift=0.02, rng=seed),
            samplers,
            hist,
        )
        for h in horizons:
            truth = exact_histogram(hist, 0, EDGES, horizon=h)
            for name, sampler in samplers.items():
                est = estimate_histogram(sampler, 0, EDGES, horizon=h)
                acc[h][name].append(est.total_variation(truth))
    rows = [
        {
            "horizon": h,
            "biased_tv": float(np.mean(acc[h]["biased"])),
            "unbiased_tv": float(np.mean(acc[h]["unbiased"])),
        }
        for h in horizons
    ]
    return ExperimentResult(
        experiment_id="ablation_histogram",
        title="Recent-horizon histogram tracking (total-variation distance)",
        params={"length": length, "capacity": capacity, "lambda": lam,
                "bins": EDGES.size - 1},
        columns=["horizon", "biased_tv", "unbiased_tv"],
        rows=rows,
    )


def test_ablation_histogram(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    for r in result.rows:
        assert 0.0 <= r["biased_tv"] <= 1.0
        assert 0.0 <= r["unbiased_tv"] <= 1.0
    # The biased reservoir tracks the recent distribution better at the
    # short and medium horizons.
    short = result.rows[0]
    assert short["biased_tv"] < short["unbiased_tv"]
    medium = result.rows[1]
    assert medium["biased_tv"] < medium["unbiased_tv"]
