"""Ablation: Algorithm 3.1 (space-constrained) vs Algorithm 2.1 at equal
memory.

The paper's query experiments use reservoir 1000 with lambda = 1e-4, which
forces Algorithm 3.1 (p_in = 0.1). The alternative under the same memory
budget is Algorithm 2.1 at capacity 1000, whose bias rate is then
lambda = 1e-3 (Observation 2.1) — a 10x shorter effective memory. This
ablation sweeps query horizons to show the trade-off: the sharper
Algorithm 2.1 bias wins at very short horizons, the gentler Algorithm 3.1
bias wins at medium-long horizons.
"""

import numpy as np

from repro.core import ExponentialReservoir, SpaceConstrainedReservoir
from repro.experiments.runner import ExperimentResult
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    average_query,
    nan_penalized_error,
)
from repro.streams import EvolvingClusterStream


def run_ablation(length=100_000, capacity=1000, seeds=(31, 32, 33)):
    horizons = (500, 2_000, 10_000, 50_000)
    acc = {h: {"alg21": [], "alg31": []} for h in horizons}
    for seed in seeds:
        hist = StreamHistory(10)
        alg21 = ExponentialReservoir(capacity=capacity, rng=seed)
        alg31 = SpaceConstrainedReservoir(
            lam=1e-4, capacity=capacity, rng=seed + 500
        )
        for p in EvolvingClusterStream(length=length, rng=seed):
            hist.observe(p)
            alg21.offer(p)
            alg31.offer(p)
        for h in horizons:
            q = average_query(h, range(10))
            truth = hist.evaluate(q)
            for name, sampler in (("alg21", alg21), ("alg31", alg31)):
                est = QueryEstimator(sampler).estimate(q)
                acc[h][name].append(
                    nan_penalized_error(truth, est.estimate)
                )
    rows = [
        {
            "horizon": h,
            "alg21_error": float(np.mean(acc[h]["alg21"])),
            "alg31_error": float(np.mean(acc[h]["alg31"])),
        }
        for h in horizons
    ]
    return ExperimentResult(
        experiment_id="ablation_sampler_regime",
        title="Algorithm 2.1 (lam=1e-3) vs Algorithm 3.1 (lam=1e-4) "
        "at equal memory",
        params={"length": length, "capacity": capacity},
        columns=["horizon", "alg21_error", "alg31_error"],
        rows=rows,
    )


def test_ablation_sampler_regime(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    for r in result.rows:
        assert np.isfinite(r["alg21_error"])
        assert np.isfinite(r["alg31_error"])
    # At the longest horizon the gentler Algorithm 3.1 bias should not be
    # worse than the sharp Algorithm 2.1 bias.
    last = result.rows[-1]
    assert last["alg31_error"] <= last["alg21_error"] * 1.5
