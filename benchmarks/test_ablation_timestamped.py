"""Ablation: count-based vs wall-clock vs rate-adaptive decay on bursts.

The paper's bias is per-*arrival*. On a stream whose rate varies, "the
last 10,000 arrivals" and "the last hour" are different populations. Three
samplers, two burst scenarios:

* ``count-based`` — Algorithm 2.1 (decay per arrival);
* ``hybrid`` — :class:`TimestampedExponentialReservoir` (wall-clock decay
  plus the memory-pressure floor of deterministic insertion);
* ``rate-adaptive`` — :class:`TimeDecayReservoir` (wall-clock decay with
  rate-gated insertion: pure time proportionality).

Scenario A (*burst then quiet*): count-based keeps wall-clock-ancient
burst points because arrivals stopped; both time-aware samplers age them
out.

Scenario B (*quiet then burst*): count-based and hybrid wash out the quiet
epoch (each burst arrival forces an eviction); the rate-adaptive sampler
subsamples the burst and keeps the quiet epoch's time-proportional share.
"""

import numpy as np

from repro.core import ExponentialReservoir
from repro.core.time_proportional import TimeDecayReservoir
from repro.core.timestamped import TimestampedExponentialReservoir
from repro.experiments.runner import ExperimentResult

CAPACITY = 1000
LAM_TIME = 1e-3


def _make_samplers(seed):
    return {
        "count-based": ExponentialReservoir(capacity=CAPACITY, rng=seed),
        "hybrid": TimestampedExponentialReservoir(
            lam_time=LAM_TIME, capacity=CAPACITY, rng=seed + 1
        ),
        "rate-adaptive": TimeDecayReservoir(
            lam_time=LAM_TIME, capacity=CAPACITY, rng=seed + 2
        ),
    }


def _epoch_arrivals(rng, count, mean_gap, start, tag):
    now = start
    out = []
    for _ in range(count):
        now += rng.exponential(mean_gap)
        out.append((now, tag))
    return out, now


def _fractions(sampler, tag):
    payloads = sampler.payloads()
    hits = sum(1 for p in payloads if p == tag)
    return hits / max(1, len(payloads))


def run_ablation(seed=5):
    rng = np.random.default_rng(seed)
    rows = []

    # Scenario A: burst (10k pts over ~100 s) then quiet (1k over ~10k s).
    burst, now = _epoch_arrivals(rng, 10_000, 0.01, 0.0, "burst")
    quiet, _ = _epoch_arrivals(rng, 1_000, 10.0, now, "quiet")
    samplers = _make_samplers(seed)
    for stamp, tag in burst + quiet:
        samplers["count-based"].offer(tag)
        samplers["hybrid"].offer_at(tag, stamp)
        samplers["rate-adaptive"].offer_at(tag, stamp)
    for name, sampler in samplers.items():
        rows.append(
            {
                "scenario": "A: burst->quiet",
                "sampler": name,
                "stale_fraction": _fractions(sampler, "burst"),
                "size": sampler.size,
            }
        )

    # Scenario B: quiet (10k pts over ~10k s) then burst (10k over ~100 s).
    quiet, now = _epoch_arrivals(rng, 10_000, 1.0, 0.0, "quiet")
    burst, _ = _epoch_arrivals(rng, 10_000, 0.01, now, "burst")
    samplers = _make_samplers(seed + 50)
    for stamp, tag in quiet + burst:
        samplers["count-based"].offer(tag)
        samplers["hybrid"].offer_at(tag, stamp)
        samplers["rate-adaptive"].offer_at(tag, stamp)
    for name, sampler in samplers.items():
        rows.append(
            {
                "scenario": "B: quiet->burst",
                "sampler": name,
                # here the *quiet* epoch is the one at risk of erasure
                "stale_fraction": _fractions(sampler, "quiet"),
                "size": sampler.size,
            }
        )

    return ExperimentResult(
        experiment_id="ablation_timestamped",
        title="Burst behaviour of count-based / hybrid / rate-adaptive decay",
        params={"capacity": CAPACITY, "lam_time": LAM_TIME},
        columns=["scenario", "sampler", "stale_fraction", "size"],
        rows=rows,
        notes=[
            "A: stale_fraction = share of residents from the ~10,000-s-old "
            "burst (time-aware samplers should forget it)",
            "B: stale_fraction = share of residents from the pre-burst "
            "quiet epoch (only the rate-adaptive sampler preserves it)",
        ],
    )


def test_ablation_timestamped(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    by_key = {(r["scenario"], r["sampler"]): r for r in result.rows}

    # Scenario A: count-based retains a big stale share (theory ~0.37);
    # both time-aware samplers decay it to ~e^{-10}.
    a_count = by_key[("A: burst->quiet", "count-based")]["stale_fraction"]
    a_hybrid = by_key[("A: burst->quiet", "hybrid")]["stale_fraction"]
    a_adaptive = by_key[("A: burst->quiet", "rate-adaptive")]["stale_fraction"]
    assert a_count > 0.2
    assert a_hybrid < 0.02
    assert a_adaptive < 0.05

    # Scenario B: only the rate-adaptive sampler keeps the quiet epoch.
    b_count = by_key[("B: quiet->burst", "count-based")]["stale_fraction"]
    b_hybrid = by_key[("B: quiet->burst", "hybrid")]["stale_fraction"]
    b_adaptive = by_key[("B: quiet->burst", "rate-adaptive")]["stale_fraction"]
    assert b_count < 0.02
    assert b_hybrid < 0.02
    # Quiet epoch ended ~100 s ago; pure time decay at 1e-3 retains most
    # of its mass relative to the burst's ~100 s of equal-rate mass.
    assert b_adaptive > 0.3
