"""Ablation: the q-schedule of variable reservoir sampling.

Theorem 3.3 holds for any reduction factor q; what q changes is the fill
*trajectory*. The paper recommends q = 1 - 1/n_max (eject one point per
phase). This ablation compares it against aggressive halving (q = 1/2) and
a mild q = 0.9, measuring the worst observed deficit after startup and the
points needed to converge p_in to its target.
"""

from repro.core import VariableReservoir
from repro.experiments.runner import ExperimentResult


def run_ablation(length=60_000, capacity=1000, lam=1e-5, seed=3):
    rows = []
    for label, q in (
        ("paper (1 - 1/n)", 1 - 1 / capacity),
        ("mild (0.9)", 0.9),
        ("halving (0.5)", 0.5),
    ):
        res = VariableReservoir(lam=lam, capacity=capacity, q=q, rng=seed)
        worst_deficit = 0
        converged_at = None
        for i in range(length):
            res.offer(i)
            if i > 2 * capacity:
                worst_deficit = max(worst_deficit, capacity - res.size)
            if converged_at is None and res.p_in <= res.target_p_in + 1e-12:
                converged_at = i + 1
        rows.append(
            {
                "schedule": label,
                "q": round(q, 4),
                "worst_deficit": worst_deficit,
                "final_fill": res.size / capacity,
                "p_in_converged_at": converged_at or length,
                "phases": len(res.phase_history) - 1,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_variable_q",
        title="Variable-reservoir q-schedule ablation",
        params={"length": length, "capacity": capacity, "lambda": lam},
        columns=[
            "schedule",
            "q",
            "worst_deficit",
            "final_fill",
            "p_in_converged_at",
            "phases",
        ],
        rows=rows,
    )


def test_ablation_variable_q(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    by_schedule = {r["schedule"]: r for r in result.rows}
    paper = by_schedule["paper (1 - 1/n)"]
    halving = by_schedule["halving (0.5)"]
    # The paper schedule keeps the reservoir within one point of full.
    assert paper["worst_deficit"] <= 1
    # Halving needs far fewer phases but leaves big transient deficits
    # (half the reservoir gone, refilled at the reduced p_in).
    assert halving["phases"] < paper["phases"]
    assert halving["worst_deficit"] > 100
    # Every schedule keeps the reservoir mostly usable.
    for r in result.rows:
        assert r["final_fill"] > 0.6
