"""Ablation: Lemma 4.1's variance predictions vs Monte-Carlo reality.

The Section 4 analysis predicts the design variance of horizon-count
estimates in closed form (`repro.queries.variance_analysis`), including
the horizon at which the unbiased design overtakes the biased one. This
ablation measures the empirical estimator variance over replicated
samplers and checks the predictions — the analytical and empirical halves
of the reproduction validating each other.

(Count queries need no payload values, so the replicates drive the
samplers with bare integers — hundreds of replicated streams in seconds.)
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir, UnbiasedReservoir
from repro.experiments.runner import ExperimentResult
from repro.queries import QueryEstimator, count_query
from repro.queries.variance_analysis import (
    count_variance_space_constrained,
    count_variance_unbiased_exact,
    crossover_horizon,
)


def run_ablation(n=200, p_in=0.5, t=10_000, reps=120):
    horizons = (100, 400, 1_600, 6_400)
    estimates = {h: {"biased": [], "unbiased": []} for h in horizons}
    for seed in range(reps):
        biased = SpaceConstrainedReservoir(capacity=n, p_in=p_in, rng=seed)
        unbiased = UnbiasedReservoir(n, rng=seed + reps)
        for i in range(t):
            biased.offer(i)
            unbiased.offer(i)
        for h in horizons:
            q = count_query(horizon=h)
            estimates[h]["biased"].append(
                QueryEstimator(biased).estimate(q).estimate[0]
            )
            estimates[h]["unbiased"].append(
                QueryEstimator(unbiased).estimate(q).estimate[0]
            )
    rows = []
    for h in horizons:
        rows.append(
            {
                "horizon": h,
                "biased_var_measured": float(
                    np.var(estimates[h]["biased"], ddof=1)
                ),
                "biased_var_predicted": count_variance_space_constrained(
                    n, p_in, h, t
                ),
                "unbiased_var_measured": float(
                    np.var(estimates[h]["unbiased"], ddof=1)
                ),
                "unbiased_var_predicted": count_variance_unbiased_exact(
                    n, h, t
                ),
            }
        )
    h_star = crossover_horizon(n, t, p_in=p_in)
    return ExperimentResult(
        experiment_id="ablation_variance_prediction",
        title="Lemma 4.1 predicted vs Monte-Carlo estimator variance",
        params={"n": n, "p_in": p_in, "t": t, "reps": reps},
        columns=[
            "horizon",
            "biased_var_measured",
            "biased_var_predicted",
            "unbiased_var_measured",
            "unbiased_var_predicted",
        ],
        rows=rows,
        notes=[f"predicted crossover horizon: {h_star}"],
    )


def test_ablation_variance_prediction(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    for r in result.rows:
        # Lemma 4.1 assumes independent inclusions; reservoir designs have
        # weak dependence, so demand agreement within a factor band.
        for side in ("biased", "unbiased"):
            measured = r[f"{side}_var_measured"]
            predicted = r[f"{side}_var_predicted"]
            assert measured < 2.5 * predicted + 50
            assert measured > predicted / 2.5 - 50
    # The variance ordering must flip across the predicted crossover.
    first, last = result.rows[0], result.rows[-1]
    assert first["biased_var_measured"] < first["unbiased_var_measured"]
    assert last["biased_var_measured"] > last["unbiased_var_measured"]
