"""Ablation: Algorithm 2.1's F(t)-gated ejection vs eject-only-when-full.

Algorithm 2.1 flips an F(t) coin so that ejections can happen *before* the
reservoir is full, which is what makes the inclusion probability exactly
exponential from the very first point. The obvious simplification — insert
freely until full, then always replace — produces a different (uniform)
distribution over the pre-fill prefix and only converges to exponential
later. This ablation measures the age-distribution error of both policies
against the Theorem 2.2 model shortly after fill time.
"""

from typing import Any

import numpy as np

from repro.core import ExponentialReservoir
from repro.core.reservoir import ReservoirSampler
from repro.experiments.runner import ExperimentResult


class EjectWhenFullReservoir(ReservoirSampler):
    """The naive variant: grow until full, then always replace."""

    def offer(self, payload: Any) -> bool:
        self.t += 1
        self.offers += 1
        if self.is_full:
            self._replace_random(payload)
        else:
            self._append(payload)
        return True

    def inclusion_probability(self, r, t=None):  # pragma: no cover
        raise NotImplementedError("ablation-only sampler")


def age_model_error(sampler_factory, n, t, reps):
    """Mean |empirical - model| inclusion over reference ages."""
    ages_ref = np.array([0, n // 4, n // 2, n, 2 * n])
    ages_ref = ages_ref[ages_ref < t]
    hits = np.zeros(len(ages_ref))
    for seed in range(reps):
        sampler = sampler_factory(seed)
        sampler.extend(range(t))
        ages = set(sampler.ages().tolist())
        for i, a in enumerate(ages_ref):
            if int(a) in ages:
                hits[i] += 1
    empirical = hits / reps
    model = np.exp(-ages_ref / n)
    return float(np.mean(np.abs(empirical - model)))


def run_ablation(n=100, reps=300):
    rows = []
    for t in (int(n * 1.5), 3 * n, 10 * n):
        err_alg21 = age_model_error(
            lambda seed: ExponentialReservoir(capacity=n, rng=seed), n, t, reps
        )
        err_naive = age_model_error(
            lambda seed: EjectWhenFullReservoir(n, rng=seed), n, t, reps
        )
        rows.append(
            {
                "t_over_n": round(t / n, 1),
                "alg21_model_error": err_alg21,
                "naive_model_error": err_naive,
            }
        )
    return ExperimentResult(
        experiment_id="ablation_victim_policy",
        title="F(t)-gated ejection (Alg 2.1) vs eject-when-full: distance "
        "to the Theorem 2.2 inclusion model",
        params={"n": n, "reps": reps},
        columns=["t_over_n", "alg21_model_error", "naive_model_error"],
        rows=rows,
    )


def test_ablation_victim_policy(run_once, save_result):
    result = run_once(run_ablation)
    save_result(result)

    # Shortly after fill, Algorithm 2.1 already matches the exponential
    # model much better than the naive policy.
    early = result.rows[0]
    assert early["alg21_model_error"] < early["naive_model_error"]
    # Long after fill, both converge (memory of the prefix washes out).
    late = result.rows[-1]
    assert late["naive_model_error"] < 0.1
    assert late["alg21_model_error"] < 0.1
