"""Benchmark: Figure 1 — variable vs fixed reservoir utilization.

Regenerates the paper's Figure 1 series (fractional fill vs points
processed) and asserts its qualitative claims: the variable scheme is full
within ~n_max points and stays within one point of full; the fixed scheme
lags severely and tracks the O(n log n / p_in) theory.
"""

from repro.experiments import fig1_fill


def test_fig1_reservoir_utilization(run_once, save_result):
    """Runs at the paper's exact scale (the full 494,021-point stream)."""
    result = run_once(
        lambda: fig1_fill.run(
            length=494_021,
            capacity=1000,
            lam=1e-5,
            grid_points=30,
            seed=7,
            extra_checkpoints=(1_000, 10_000, 100_000),
        )
    )
    save_result(result)

    rows = {r["t"]: r for r in result.rows}
    # Variable scheme: full (within one point) from ~1k points onward.
    assert rows[1_000]["variable_fill"] >= 0.99
    assert all(
        r["variable_fill"] >= 0.99 for r in result.rows if r["t"] >= 1_000
    )
    # Fixed scheme: far behind at every paper-quoted mark.
    assert rows[10_000]["fixed_fill"] < 0.2
    assert rows[100_000]["fixed_fill"] < 0.75
    # Paper's end-of-stream quote: "contains 986 data points ... still not
    # full" after all 494,021 points (expectation 992.8).
    end = rows[494_021]["fixed_fill"]
    assert 0.96 <= end < 1.0
    # Fixed curve tracks the closed form.
    for r in result.rows:
        assert abs(r["fixed_fill"] - r["fixed_fill_expected"]) < 0.1
