"""Benchmark: Figure 2 — sum-query error vs horizon (intrusion stream).

Asserts the paper's shape: biased error clearly lower at the smallest
horizons (where the unbiased relevant sample nearly vanishes) and the two
schemes competitive at the largest horizon.
"""

from repro.experiments import fig2_sum_intrusion


def test_fig2_sum_query_intrusion(run_once, save_result):
    result = run_once(lambda: fig2_sum_intrusion.run(length=200_000))
    save_result(result)

    first, last = result.rows[0], result.rows[-1]
    # Small horizon: biased wins decisively.
    assert first["biased_error"] < first["unbiased_error"]
    assert first["biased_support"] > 3 * first["unbiased_support"]
    # Biased error roughly flat across horizons (max/min bounded).
    biased = [r["biased_error"] for r in result.rows]
    assert max(biased) < 12 * min(biased)
    # Largest horizon: competitive (within a factor of ~3 either way).
    ratio = last["biased_error"] / max(last["unbiased_error"], 1e-12)
    assert 1 / 4 < ratio < 4
