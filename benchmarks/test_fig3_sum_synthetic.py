"""Benchmark: Figure 3 — sum-query error vs horizon (synthetic stream)."""

from repro.experiments import fig3_sum_synthetic


def test_fig3_sum_query_synthetic(run_once, save_result):
    result = run_once(lambda: fig3_sum_synthetic.run(length=200_000))
    save_result(result)

    first, last = result.rows[0], result.rows[-1]
    assert first["biased_error"] < first["unbiased_error"]
    # The paper highlights the near-flat biased curve on this data set.
    biased = [r["biased_error"] for r in result.rows]
    assert max(biased) < 10 * min(biased)
    ratio = last["biased_error"] / max(last["unbiased_error"], 1e-12)
    assert 1 / 4 < ratio < 4
