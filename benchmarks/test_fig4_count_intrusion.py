"""Benchmark: Figure 4 — class-distribution count-query error vs horizon."""

from repro.experiments import fig4_count_intrusion


def test_fig4_count_query_intrusion(run_once, save_result):
    result = run_once(lambda: fig4_count_intrusion.run(length=200_000))
    save_result(result)

    first, last = result.rows[0], result.rows[-1]
    # Biased consistently outperforms at short horizons (paper: "even in
    # this case, the biased sampling approach consistently outperforms").
    assert first["biased_error"] < first["unbiased_error"]
    small_rows = [r for r in result.rows if r["horizon"] <= 10_000]
    wins = sum(
        1 for r in small_rows if r["biased_error"] <= r["unbiased_error"]
    )
    assert wins >= len(small_rows) - 1  # allow one noisy row
    # Large horizon: competitive.
    ratio = last["biased_error"] / max(last["unbiased_error"], 1e-12)
    assert 1 / 5 < ratio < 5
