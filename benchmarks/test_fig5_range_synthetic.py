"""Benchmark: Figure 5 — range-selectivity estimation error vs horizon."""

from repro.experiments import fig5_range_synthetic


def test_fig5_range_selectivity(run_once, save_result):
    result = run_once(lambda: fig5_range_synthetic.run(length=200_000))
    save_result(result)

    first = result.rows[0]
    assert first["biased_error"] < first["unbiased_error"]
    # Paper: "the error rate of the biased sampling method remains robust
    # with variation in the horizon length" — bounded spread.
    biased = [r["biased_error"] for r in result.rows]
    assert max(biased) - min(biased) < 0.15
    # Paper: the unbiased error varies much more suddenly with horizon.
    unbiased = [r["unbiased_error"] for r in result.rows]
    assert max(unbiased) - min(unbiased) > max(biased) - min(biased)
