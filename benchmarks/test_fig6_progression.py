"""Benchmark: Figure 6 — fixed-horizon error vs stream progression.

The paper's sharpest claim: at a fixed horizon the unbiased error
deteriorates as the stream grows (relevant fraction h/t shrinks), while the
memory-less biased reservoir's error stays flat.
"""

import numpy as np

from repro.experiments import fig6_progression


def test_fig6_error_with_progression(run_once, save_result):
    result = run_once(
        lambda: fig6_progression.run(length=200_000, horizon=10_000)
    )
    save_result(result)

    biased = np.array([r["biased_error"] for r in result.rows])
    unbiased = np.array([r["unbiased_error"] for r in result.rows])
    half = len(result.rows) // 2
    # Unbiased degrades: late errors exceed early errors.
    assert unbiased[half:].mean() > unbiased[:half].mean()
    # Biased stays comparatively flat.
    biased_growth = biased[half:].mean() / max(biased[:half].mean(), 1e-12)
    unbiased_growth = unbiased[half:].mean() / max(
        unbiased[:half].mean(), 1e-12
    )
    assert unbiased_growth > biased_growth
    # By the end of the stream, biased wins.
    assert biased[-1] < unbiased[-1]
