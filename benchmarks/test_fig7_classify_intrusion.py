"""Benchmark: Figure 7 — 1-NN classification accuracy vs progression
(intrusion stream)."""

import numpy as np

from repro.experiments import fig7_classify_intrusion


def test_fig7_classification_intrusion(run_once, save_result):
    result = run_once(
        lambda: fig7_classify_intrusion.run(length=150_000, window=10_000)
    )
    save_result(result)

    gaps = np.array([r["gap"] for r in result.rows])
    half = len(gaps) // 2
    # Similar at the start, biased pulls ahead with progression (the
    # trend is non-monotonic per the paper, so compare half-means).
    assert gaps[half:].mean() > gaps[:half].mean()
    assert gaps[half:].mean() > 0.0
    # Both classifiers are genuinely learning (way above 1/14 chance).
    assert all(r["biased_accuracy"] > 0.5 for r in result.rows)
