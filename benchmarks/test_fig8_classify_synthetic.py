"""Benchmark: Figure 8 — 1-NN classification accuracy vs progression
(synthetic evolving clusters)."""

import numpy as np

from repro.experiments import fig8_classify_synthetic


def test_fig8_classification_synthetic(run_once, save_result):
    result = run_once(
        lambda: fig8_classify_synthetic.run(length=150_000, window=10_000)
    )
    save_result(result)

    biased = np.array([r["biased_accuracy"] for r in result.rows])
    unbiased = np.array([r["unbiased_accuracy"] for r in result.rows])
    gaps = biased - unbiased
    # Paper: biased accuracy rises as drifting clusters separate.
    assert biased[-1] > biased[0] + 0.05
    # Paper: the biased reservoir wins most windows and the gap grows.
    assert (gaps > 0).sum() >= len(gaps) * 0.6
    half = len(gaps) // 2
    assert gaps[half:].mean() > gaps[:half].mean()
