"""Benchmark: Figure 9 — reservoir evolution snapshots (mixing metrics).

The scatter panels become quantitative claims: at every checkpoint the
biased reservoir is fresher, purer, and better separated than the unbiased
one; the raw 2-D projections are dumped to benchmarks/results/ for
plotting.
"""

from pathlib import Path

from repro.experiments import fig9_scatter

DUMP_DIR = Path(__file__).parent / "results" / "fig9_projections"


def test_fig9_reservoir_evolution(run_once, save_result):
    result = run_once(
        lambda: fig9_scatter.run(length=150_000, dump_dir=str(DUMP_DIR))
    )
    save_result(result)

    by_checkpoint = {}
    for row in result.rows:
        by_checkpoint.setdefault(row["t"], {})[row["reservoir"]] = row
    for t, pair in by_checkpoint.items():
        b, u = pair["biased"], pair["unbiased"]
        assert b["staleness"] < u["staleness"]
        assert b["purity"] >= u["purity"] - 0.02
        assert b["separation"] >= u["separation"]
    # Biased separation grows with progression (clusters drift apart).
    biased_rows = [r for r in result.rows if r["reservoir"] == "biased"]
    assert biased_rows[-1]["separation"] > biased_rows[0]["separation"]
    # Projection CSVs exist for all six panels (3 checkpoints x 2).
    assert len(list(DUMP_DIR.glob("fig9_*.csv"))) == 6
