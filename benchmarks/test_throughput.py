"""Throughput microbenchmarks: per-point cost of every sampler.

These are true pytest-benchmark microbenchmarks (multiple rounds). They
quantify the paper's efficiency arguments:

* Algorithm 2.1 / 3.1 cost O(1) per point — same order as Algorithm R.
* Algorithm X (skip-based) beats per-point coin flipping once full.
* The general redistribution sampler costs Omega(|S|) per point — orders
  of magnitude slower, which is exactly why the memory-less special case
  matters.
"""

import pytest

from repro.core import (
    ChainSampler,
    ExponentialReservoir,
    GeneralBiasSampler,
    SkipUnbiasedReservoir,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    VariableReservoir,
)
from repro.core.bias import ExponentialBias

N_POINTS = 20_000
CAPACITY = 1000


def drive(sampler, n=N_POINTS):
    sampler.extend(range(n))
    return sampler.size


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_unbiased_algorithm_r(benchmark):
    result = benchmark(lambda: drive(UnbiasedReservoir(CAPACITY, rng=0)))
    assert result == CAPACITY


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_unbiased_skip(benchmark):
    result = benchmark(lambda: drive(SkipUnbiasedReservoir(CAPACITY, rng=0)))
    assert result == CAPACITY


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_biased_algorithm_2_1(benchmark):
    result = benchmark(
        lambda: drive(ExponentialReservoir(capacity=CAPACITY, rng=0))
    )
    assert result == CAPACITY


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_space_constrained_algorithm_3_1(benchmark):
    result = benchmark(
        lambda: drive(
            SpaceConstrainedReservoir(lam=1e-4, capacity=CAPACITY, rng=0)
        )
    )
    assert result > 0


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_variable_reservoir(benchmark):
    result = benchmark(
        lambda: drive(VariableReservoir(lam=1e-4, capacity=CAPACITY, rng=0))
    )
    assert result >= CAPACITY - 1


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_chain_sampler(benchmark):
    # 100 chains over a 5k window; cost scales with chain count.
    result = benchmark(
        lambda: drive(ChainSampler(100, window=5_000, rng=0))
    )
    assert result > 0


@pytest.mark.benchmark(group="sampler-throughput")
def test_throughput_general_redistribution(benchmark):
    """The Omega(|S|)-per-point baseline — run on 10x fewer points and a
    10x smaller sample; still expected to be the slowest group member."""
    result = benchmark(
        lambda: drive(
            GeneralBiasSampler(ExponentialBias(1e-2), 100, rng=0),
            n=2_000,
        )
    )
    assert result > 0
