"""Batch-ingestion throughput: ``offer_many`` vs per-item ``offer``.

Measures points/sec on both paths for every fast-path sampler via the
shared harness in :mod:`repro.experiments.throughput` and records the
numbers to ``BENCH_throughput.json`` at the repo root (the same payload
``repro bench -o BENCH_throughput.json`` writes).

The acceptance bar: batched ingestion into an ``ExponentialReservoir`` of
``n = 10_000`` over a 200k-point stream must run at >= 5x the per-item
points/sec. In practice the virtual-slot closed form lands well above
that; the margin absorbs CI-runner noise.
"""

import pytest
from _bench_io import record_section

from repro.experiments.throughput import throughput_report


@pytest.fixture(scope="module")
def report():
    """One timed run of the full matrix, shared by all assertions."""
    return throughput_report()


def _case(report, name):
    for result in report["results"]:
        if result["name"] == name:
            return result
    raise KeyError(name)


@pytest.mark.benchmark(group="batch-ingestion")
def test_exponential_batch_speedup_meets_bar(report):
    result = _case(report, "exponential_n10000")
    assert result["stream_length"] == 200_000
    assert result["speedup"] >= 5.0, (
        f"offer_many only {result['speedup']:.2f}x over per-item "
        f"({result['batched_points_per_sec']:,.0f} vs "
        f"{result['per_item_points_per_sec']:,.0f} pts/s)"
    )


@pytest.mark.benchmark(group="batch-ingestion")
def test_unbiased_batch_not_slower(report):
    """Algorithm R's bulk accept-coin path should comfortably win too."""
    assert _case(report, "unbiased_n10000")["speedup"] >= 2.0


@pytest.mark.benchmark(group="batch-ingestion")
def test_skip_batch_not_slower(report):
    """Skip sampling is already O(accepted); batching must not regress it."""
    assert _case(report, "skip_unbiased_n10000")["speedup"] >= 0.8


@pytest.mark.benchmark(group="batch-ingestion")
def test_record_bench_json(report):
    """Persist the measurements where the acceptance harness reads them."""
    payload = record_section(report)
    assert payload["results"]
    print()
    for result in payload["results"]:
        print(
            f"{result['name']}: per-item "
            f"{result['per_item_points_per_sec']:,.0f} pts/s, batched "
            f"{result['batched_points_per_sec']:,.0f} pts/s "
            f"({result['speedup']:.1f}x)"
        )
