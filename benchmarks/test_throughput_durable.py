"""Durable-engine throughput: ``DurableReservoir`` vs plain ``offer_many``.

Measures the cost of journalling every ingestion block through the
write-ahead log (:mod:`repro.persist`) under each fsync policy, via the
shared harness in :mod:`repro.experiments.throughput`, and records the
numbers under the ``"durable"`` key of ``BENCH_throughput.json``.

The acceptance bar is deliberately loose: with ``wal_sync="never"``
(journal to the page cache, let the OS flush) durability must cost less
than 20x the plain batched path — the WAL write is one pickle + one
buffered append per block, so in practice the overhead lands well under
5x. ``"always"`` fsyncs every block and is expected to be much slower;
it is recorded but not gated, since its cost is the disk's, not ours.
"""

import pytest
from _bench_io import record_section

from repro.experiments.throughput import durable_throughput_report


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One timed run per fsync policy over the acceptance stream."""
    return durable_throughput_report(
        tmp_path_factory.mktemp("durable-bench"),
        capacity=10_000,
        stream_length=200_000,
    )


@pytest.mark.benchmark(group="durable-ingestion")
def test_durable_nosync_overhead_bounded(report):
    ratio = report["sync_policies"]["never"]["overhead_ratio"]
    assert ratio < 20.0, (
        f"durable ingestion (wal_sync=never) {ratio:.1f}x slower than "
        f"plain offer_many "
        f"({report['sync_policies']['never']['durable_points_per_sec']:,.0f}"
        f" vs {report['plain_offer_many_points_per_sec']:,.0f} pts/s)"
    )


@pytest.mark.benchmark(group="durable-ingestion")
def test_durable_reports_all_policies(report):
    assert set(report["sync_policies"]) == {"never", "batch", "always"}
    for policy in report["sync_policies"].values():
        assert policy["durable_points_per_sec"] > 0
        assert policy["overhead_ratio"] > 0


@pytest.mark.benchmark(group="durable-ingestion")
def test_record_bench_json(report):
    """Merge the durable section into the shared benchmark record."""
    payload = record_section(report, key="durable")
    assert payload["durable"]["sync_policies"]
    print()
    plain = report["plain_offer_many_points_per_sec"]
    for sync, row in report["sync_policies"].items():
        print(
            f"durable wal_sync={sync}: {row['durable_points_per_sec']:,.0f} "
            f"pts/s ({row['overhead_ratio']:.1f}x overhead vs plain "
            f"{plain:,.0f} pts/s)"
        )
