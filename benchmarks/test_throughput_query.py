"""Columnar query-engine throughput: vectorized estimators vs per-point.

Measures the full builder-query suite through the columnar
:class:`~repro.queries.estimator.QueryEstimator` against its per-point
reference path, plus the incremental :class:`~repro.queries.exact.StreamHistory`
oracle against its horizon scan, via the shared harness in
:mod:`repro.experiments.throughput`. Numbers land under the ``"query"``
key of ``BENCH_throughput.json``.

Acceptance bars (full mode):

* columnar estimation >= 5x the per-point estimates/sec, with bitwise
  identical estimates — the speedup is pure engine, not approximation;
* the oracle's incremental checkpoint cost stays flat (sub-linear in the
  horizon) while the scan's tracks the 4x horizon growth.

Under ``pytest --quick`` the suite runs at smoke-test size: the
equivalence and shape assertions still hold, the timing bars are skipped
(shared CI runners make them meaningless), and nothing is recorded.
"""

import pytest
from _bench_io import record_section

from repro.experiments.throughput import query_throughput_report


@pytest.fixture(scope="module")
def report(request):
    """One timed run; ``--quick`` shrinks it to smoke-test size."""
    quick = bool(request.config.getoption("--quick"))
    return query_throughput_report(quick=quick)


@pytest.mark.benchmark(group="query-engine")
def test_columnar_estimates_bitwise_identical(report):
    """The speedup must be free: both paths produce the same bits."""
    assert report["estimator"]["estimates_identical"], (
        "columnar estimates diverged from the per-point reference path"
    )


@pytest.mark.benchmark(group="query-engine")
def test_columnar_speedup_meets_bar(report):
    est = report["estimator"]
    if report["quick"]:
        pytest.skip("timing bars are full-mode only (--quick run)")
    assert est["speedup"] >= 5.0, (
        f"columnar engine only {est['speedup']:.2f}x over per-point "
        f"({est['columnar_estimates_per_sec']:,.0f} vs "
        f"{est['per_point_estimates_per_sec']:,.0f} estimates/s)"
    )


@pytest.mark.benchmark(group="query-engine")
def test_oracle_checkpoint_cost_flat(report):
    """Incremental truth must not scale with the horizon; the scan does."""
    oracle = report["oracle"]
    if report["quick"]:
        pytest.skip("timing bars are full-mode only (--quick run)")
    # The horizon grows 4x between checkpoints: the scan's cost should
    # reflect that (>= 2x, allowing noise) while the incremental path
    # stays essentially flat (< 2x).
    assert oracle["incremental_cost_growth"] < 2.0, (
        f"incremental oracle cost grew "
        f"{oracle['incremental_cost_growth']:.2f}x over a 4x horizon"
    )
    assert oracle["scan_cost_growth"] > 2.0, (
        f"scan oracle cost grew only {oracle['scan_cost_growth']:.2f}x "
        f"over a 4x horizon — the baseline is not O(horizon)?"
    )
    assert oracle["speedup_at_full_stream"] > 1.0


@pytest.mark.benchmark(group="query-engine")
def test_record_bench_json(report):
    """Merge the query section into the shared benchmark record."""
    if report["quick"]:
        pytest.skip("quick runs are not recorded")
    payload = record_section(report, key="query")
    assert (
        payload["query"]["estimator"]["speedup"]
        == report["estimator"]["speedup"]
    )
    est, oracle = report["estimator"], report["oracle"]
    print()
    print(
        f"query engine: columnar {est['columnar_estimates_per_sec']:,.0f} "
        f"est/s vs per-point {est['per_point_estimates_per_sec']:,.0f} "
        f"est/s ({est['speedup']:.1f}x, bitwise identical)"
    )
    print(
        f"exact oracle: checkpoint cost grew "
        f"{oracle['incremental_cost_growth']:.2f}x incremental vs "
        f"{oracle['scan_cost_growth']:.2f}x scan over a 4x horizon"
    )
