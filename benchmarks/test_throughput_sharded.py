"""Sharded-engine throughput: ``ShardedReservoir`` vs serial ``offer_many``.

Measures points/sec through the sharded ingestion engine
(:mod:`repro.shard`) against the serial ``ExponentialReservoir``
``offer_many`` path via the shared harness in
:mod:`repro.experiments.throughput`, and records the numbers under the
``"sharded"`` key of ``BENCH_throughput.json`` (the write merges with the
batch-ingestion section instead of clobbering it).

The acceptance bar: at ``W = 4`` the sharded engine must ingest at
>= 2x the serial batched points/sec. The container pins us to one core,
so the margin comes from the worker's O(b + n) fancy-index scatter
kernel, not from process parallelism — in practice it lands around 4x.
"""

import pytest
from _bench_io import record_section

from repro.experiments.throughput import sharded_throughput_report


@pytest.fixture(scope="module")
def report():
    """One timed run at the acceptance configuration (W=4, n=10k, 200k pts)."""
    return sharded_throughput_report(
        capacity=10_000, workers=4, stream_length=200_000
    )


@pytest.mark.benchmark(group="sharded-ingestion")
def test_sharded_w4_speedup_meets_bar(report):
    assert report["workers"] == 4
    assert report["stream_length"] == 200_000
    assert report["speedup_vs_serial"] >= 2.0, (
        f"sharded W=4 only {report['speedup_vs_serial']:.2f}x over serial "
        f"offer_many ({report['sharded_points_per_sec']:,.0f} vs "
        f"{report['serial_offer_many_points_per_sec']:,.0f} pts/s)"
    )


@pytest.mark.benchmark(group="sharded-ingestion")
def test_sharded_w1_not_slower_than_serial(report):
    """Even one shard should win: same RNG schedule, faster data movement."""
    w1 = report["sharded_w1_points_per_sec"]
    serial = report["serial_offer_many_points_per_sec"]
    assert w1 >= serial, (
        f"W=1 shard slower than serial offer_many "
        f"({w1:,.0f} vs {serial:,.0f} pts/s)"
    )


@pytest.mark.benchmark(group="sharded-ingestion")
def test_record_bench_json(report):
    """Merge the sharded section into the shared benchmark record."""
    payload = record_section(report, key="sharded")
    assert payload["sharded"]["speedup_vs_serial"] == report["speedup_vs_serial"]
    print()
    print(
        f"sharded W={report['workers']}: "
        f"{report['sharded_points_per_sec']:,.0f} pts/s vs serial "
        f"{report['serial_offer_many_points_per_sec']:,.0f} pts/s "
        f"({report['speedup_vs_serial']:.1f}x)"
    )
