#!/usr/bin/env python
"""Anomaly detection against *recent* traffic, from a biased reservoir.

A distance-based intrusion detector scores each flow against a reference
sample. The reference should represent recent behaviour — after a regime
change, yesterday's exotic traffic is today's baseline. This example runs
the same k-NN scorer over a biased and an unbiased reservoir on a bursty
intrusion stream with injected point anomalies, and reports:

* detection: how highly the injected anomalies score (both should flag
  them), and
* adaptation: how quickly each detector stops flagging a *new regime*
  (the biased reservoir re-baselines; the unbiased one keeps alarming on
  traffic that is by now perfectly normal — alert fatigue, quantified).

Run:
    python examples/anomaly_detection.py
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir, UnbiasedReservoir
from repro.mining import ReservoirAnomalyScorer
from repro.streams import IntrusionStream, StreamPoint


def main() -> None:
    length, capacity, k = 60_000, 200, 10
    rng = np.random.default_rng(21)
    scorers = {
        "biased": ReservoirAnomalyScorer(
            SpaceConstrainedReservoir(lam=1e-3, capacity=capacity, rng=1),
            k=k,
        ),
        "unbiased": ReservoirAnomalyScorer(
            UnbiasedReservoir(capacity, rng=2), k=k
        ),
    }

    print(f"warming both detectors on {length:,} intrusion flows ...")
    for point in IntrusionStream(length=length, rng=7):
        for scorer in scorers.values():
            scorer.score_then_observe(point)
    # Freeze the alarm thresholds at deployment time (99th percentile of
    # warm-up scores) so the comparison isolates the *reference set*.
    thresholds = {
        name: scorer.calibrate_threshold(0.99)
        for name, scorer in scorers.items()
    }

    # 1. Detection: inject obvious point anomalies.
    print("\ninjected point anomalies (feature values far outside traffic):")
    print(f"{'detector':<10} {'anomaly score':>14} {'threshold(99%)':>15}")
    for name, scorer in scorers.items():
        probe = StreamPoint(10**7, np.full(34, 25.0))
        print(
            f"{name:<10} {scorer.score(probe):>14.2f} "
            f"{thresholds[name]:>15.2f}"
        )

    # 2. Adaptation: a new regime appears and keeps flowing.
    print(
        "\nnew regime appears (shifted centroid) and persists; per batch "
        "of 1,000 flows, mean score and fraction over the frozen "
        "threshold:"
    )
    regime_center = rng.normal(4.0, 0.5, size=34)
    header = " ".join(
        f"{name + ' score':>15} {name + ' flag%':>15}" for name in scorers
    )
    print(f"{'flows seen':>10} {header}")
    index = length
    for batch in range(5):
        scores = {name: [] for name in scorers}
        flagged = {name: 0 for name in scorers}
        for _ in range(1_000):
            index += 1
            values = regime_center + rng.normal(0, 0.5, size=34)
            point = StreamPoint(index, values, 0)
            for name, scorer in scorers.items():
                value = scorer.score(point)
                scores[name].append(value)
                if value > thresholds[name]:
                    flagged[name] += 1
                scorer.score_then_observe(point)
        cells = " ".join(
            f"{np.mean(scores[name]):>15.2f} {flagged[name] / 1_000:>15.3f}"
            for name in scorers
        )
        print(f"{(batch + 1) * 1_000:>10,} {cells}")

    print(
        "\nThe biased detector re-baselines within the first batch (its "
        "reservoir absorbs the new regime at p_in = 0.2); the unbiased "
        "one keeps scoring the now-routine traffic high because its "
        "reference sample turns over at only n/t per arrival — "
        "alert fatigue, quantified."
    )


if __name__ == "__main__":
    main()
