#!/usr/bin/env python
"""Distributed stream sampling: per-partition reservoirs, merged on demand.

Two "nodes" each see half of a sharded intrusion stream and maintain their
own biased reservoir. A coordinator merges them (Theorem 3.3-style
thinning) into a single reservoir that answers recent-horizon queries over
the *combined* traffic — and stays live, so the coordinator can keep
feeding it.

Run:
    python examples/distributed_merge.py
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir, merge_exponential_reservoirs
from repro.queries import (
    GroupByEstimator,
    QueryEstimator,
    count_query,
    class_distribution_query,
)
from repro.streams import INTRUSION_CLASSES, IntrusionStream


def main() -> None:
    length, capacity, lam = 80_000, 800, 1e-4
    # Each node sees its own partition (different seeds = different shards;
    # a real deployment would hash-partition one stream).
    node_a = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=1)
    node_b = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=2)
    stream_a = IntrusionStream(length=length, rng=100)
    stream_b = IntrusionStream(length=length, rng=200)

    print(f"node A and node B each sample {length:,} flows locally ...")
    for pa, pb in zip(stream_a, stream_b):
        node_a.offer(pa)
        node_b.offer(pb)

    merged = merge_exponential_reservoirs(node_a, node_b, rng=3)
    print(
        f"\nmerged reservoir: {merged.size}/{merged.capacity} residents, "
        f"p_in = {merged.p_in:.3f}, lambda = {merged.lam:g}"
    )

    # Combined-traffic class mix over the recent horizon.
    horizon = 5_000
    names = [name for name, _, _ in INTRUSION_CLASSES]
    query = class_distribution_query(horizon, len(names))
    est = QueryEstimator(merged).estimate(query)
    order = np.argsort(est.estimate)[::-1][:4]
    print(
        f"\nestimated class mix of combined traffic over the last "
        f"{horizon:,} arrivals per node:"
    )
    for c in order:
        print(f"  {names[c]:<14} {est.estimate[c]:.3f}")
    print(f"  (merged relevant support: {est.sample_support} points)")

    # Per-class recent volume via GROUP BY.
    groups = GroupByEstimator(merged).estimate(count_query(horizon))
    print("\nper-class weight share (GROUP BY over the merged reservoir):")
    for key in sorted(
        groups, key=lambda k: -groups[k].weight_share
    )[:4]:
        g = groups[key]
        print(
            f"  {names[key]:<14} share {g.weight_share:.3f} "
            f"(support {g.support})"
        )

    # The merged reservoir is live: keep sampling post-merge traffic.
    post = IntrusionStream(length=10_000, rng=300)
    merged.extend(post)
    print(
        f"\nafter 10,000 post-merge flows the reservoir holds "
        f"{merged.size} residents and is still estimable "
        f"(t = {merged.t:,})."
    )


if __name__ == "__main__":
    main()
