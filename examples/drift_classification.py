#!/usr/bin/env python
"""Stream classification under concept drift (the Figure 7/8 scenario).

A 1-nearest-neighbor classifier cannot keep the whole stream, so it keeps
a reservoir. This example runs the same classifier over three different
reservoirs — biased, unbiased, and sliding-window — on an evolving-cluster
stream and prints the windowed-accuracy trajectories.

Expected outcome: the biased reservoir tracks the drifting clusters and
pulls ahead of the unbiased one over time; the sliding window is
competitive on accuracy but forgets all history (a query about last
month's clusters would find nothing), which is the trade-off the paper's
introduction warns about.

Run:
    python examples/drift_classification.py
"""

from repro.core import (
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    WindowBuffer,
)
from repro.mining import ReservoirKnnClassifier, run_prequential, snapshot
from repro.streams import EvolvingClusterStream


def main() -> None:
    length, capacity = 80_000, 1000
    stream = EvolvingClusterStream(
        length=length, radius=1.8, drift_every=100, rng=13
    )
    classifiers = {
        "biased": ReservoirKnnClassifier(
            SpaceConstrainedReservoir(lam=1e-4, capacity=capacity, rng=1)
        ),
        "unbiased": ReservoirKnnClassifier(
            UnbiasedReservoir(capacity, rng=2)
        ),
        "window": ReservoirKnnClassifier(WindowBuffer(capacity, rng=3)),
    }

    print(
        f"prequential 1-NN over {length:,} drifting-cluster points "
        f"(reservoirs of {capacity}) ..."
    )
    results = run_prequential(stream, classifiers, window=10_000)

    checkpoints = results["biased"].checkpoints
    print(f"\n{'t':>8} " + " ".join(f"{n:>9}" for n in classifiers))
    for i, t in enumerate(checkpoints):
        cells = " ".join(
            f"{results[name].window_accuracy[i]:>9.4f}"
            for name in classifiers
        )
        print(f"{t:>8,} {cells}")
    print("\nlifetime accuracy:")
    for name, result in results.items():
        print(f"  {name:<9} {result.final_accuracy:.4f}")

    print("\nreservoir freshness at stream end (mean age / t):")
    for name, clf in classifiers.items():
        snap = snapshot(clf.sampler)
        print(
            f"  {name:<9} staleness {snap.staleness:.3f}, "
            f"neighborhood purity {snap.purity:.3f}"
        )
    print(
        "\nThe window is fresh but amnesiac; the unbiased reservoir "
        "remembers everything but mostly stale history; the biased "
        "reservoir holds a tunable compromise (lambda picks the decay)."
    )


if __name__ == "__main__":
    main()
