#!/usr/bin/env python
"""Drift monitoring from a single biased reservoir.

A biased reservoir is not just a query synopsis — because its inclusion
probabilities are known, its own contents support a weighted two-sample
test between the recent and the historical strata. One synopsis, two jobs:
answer horizon queries *and* raise a drift alarm.

The script streams a mostly stationary cluster stream, injects an abrupt
distribution shift two thirds of the way in, and plots (as text) the
energy-distance drift score over time: flat baseline, sharp spike at the
shift.

Run:
    python examples/drift_monitoring.py
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir
from repro.mining import ReservoirDriftDetector
from repro.streams import EvolvingClusterStream, StreamPoint, take


def shifted_stream(length, shift_at, shift, seed):
    """A slowly evolving stream with one abrupt mean shift injected."""
    base = EvolvingClusterStream(
        length=length, drift=0.005, drift_every=200, rng=seed
    )
    for point in base:
        if point.index > shift_at:
            yield StreamPoint(
                point.index, point.values + shift, point.label
            )
        else:
            yield point


def bar(value, scale=40.0, cap=2.0):
    filled = int(min(value, cap) / cap * scale)
    return "#" * filled


def main() -> None:
    length, shift_at = 60_000, 40_000
    reservoir = SpaceConstrainedReservoir(lam=1e-4, capacity=800, rng=3)
    detector = ReservoirDriftDetector(reservoir, threshold_age=3_000)

    print(
        f"streaming {length:,} points; abrupt +1.5 mean shift injected at "
        f"t = {shift_at:,}\n"
    )
    print(f"{'t':>8} {'mean_shift':>11} {'energy':>8}  energy")
    alarms = []
    for i, point in enumerate(
        shifted_stream(length, shift_at, shift=1.5, seed=11), start=1
    ):
        reservoir.offer(point)
        if i % 5_000 == 0:
            score = detector.score()
            if score is None:
                continue
            marker = bar(score.energy)
            print(
                f"{i:>8,} {score.mean_shift:>11.3f} {score.energy:>8.3f}  "
                f"{marker}"
            )
            if score.energy > 0.5:
                alarms.append(i)

    if alarms:
        print(
            f"\nfirst alarm at t = {alarms[0]:,} "
            f"({alarms[0] - shift_at:+,} points after the injected shift)"
        )
    else:
        print("\nno alarm raised — increase the shift or lower the threshold")


if __name__ == "__main__":
    main()
