#!/usr/bin/env python
"""Network monitoring scenario: horizon-constrained analytics on a bursty,
skewed intrusion stream under a hard memory budget.

The memory budget (1,000 points) is far below the natural reservoir size
for the desired bias rate (lambda = 1e-4 -> 10,000 points), so this uses:

* **Algorithm 3.1** (space-constrained, p_in = 0.1) for steady state, and
* **variable reservoir sampling** (Theorem 3.3) so the reservoir is usable
  from the first minutes of deployment instead of after ~70k flows.

It then answers the two queries an operator actually asks:
1. "What is the class mix of the last N flows?" (attack dashboards)
2. "What fraction of recent flows hit this feature range?" (selectivity)

Run:
    python examples/network_monitoring.py
"""

import numpy as np

from repro.core import SpaceConstrainedReservoir, VariableReservoir
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    class_distribution_query,
    nan_penalized_error,
    range_selectivity_query,
)
from repro.streams import INTRUSION_CLASSES, IntrusionStream


def main() -> None:
    length, capacity, lam = 120_000, 1000, 1e-4
    stream = IntrusionStream(length=length, rng=7)
    history = StreamHistory(dimensions=34)
    fixed = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=8)
    variable = VariableReservoir(lam=lam, capacity=capacity, rng=9)

    # Early-deployment checkpoint: how usable is each reservoir at 5k flows?
    early_check = 5_000
    print(f"streaming {length:,} flows (34 features, 14 classes) ...")
    for i, point in enumerate(stream, start=1):
        history.observe(point)
        fixed.offer(point)
        variable.offer(point)
        if i == early_check:
            print(
                f"\nafter {early_check:,} flows (early deployment):\n"
                f"  fixed    (Alg 3.1) reservoir: {fixed.size:4d}/{capacity}"
                f" slots used\n"
                f"  variable (Thm 3.3) reservoir: {variable.size:4d}/"
                f"{capacity} slots used"
            )

    n_classes = len(INTRUSION_CLASSES)
    horizon = 5_000
    class_query = class_distribution_query(horizon, n_classes)
    truth = history.evaluate(class_query)
    print(f"\nclass mix over the last {horizon:,} flows (top classes):")
    est = QueryEstimator(variable).estimate(class_query)
    order = np.argsort(truth)[::-1][:4]
    names = [name for name, _, _ in INTRUSION_CLASSES]
    print(f"  {'class':<14} {'true':>8} {'estimated':>10}")
    for c in order:
        print(f"  {names[c]:<14} {truth[c]:>8.3f} {est.estimate[c]:>10.3f}")
    print(
        f"  average absolute error: "
        f"{nan_penalized_error(truth, est.estimate):.4f}"
    )

    # Range selectivity: flows whose first two features are "large".
    sel_query = range_selectivity_query(
        horizon, dims=(0, 1), low=(0.5, 0.5), high=(50.0, 50.0)
    )
    sel_truth = history.evaluate(sel_query)[0]
    sel_est = QueryEstimator(variable).estimate(sel_query).estimate[0]
    print(
        f"\nselectivity of feature range over the last {horizon:,} flows: "
        f"true {sel_truth:.3f}, estimated {sel_est:.3f}"
    )

    from repro.core.theory import expected_points_to_fill

    expected_fill = expected_points_to_fill(capacity, capacity * lam)
    print(
        "\nsteady state after "
        f"{length:,} flows: variable reservoir {variable.size}/{capacity} "
        f"(p_in converged to {variable.p_in:.3f}); fixed reservoir "
        f"{fixed.size}/{capacity}. The fixed scheme needed "
        f"~{expected_fill:,.0f} flows to fill (Theorem 3.2); the variable "
        f"scheme was full after ~{capacity:,}."
    )


if __name__ == "__main__":
    main()
