#!/usr/bin/env python
"""Quickstart: maintain a biased reservoir over an evolving stream and
answer a recent-horizon query from it.

This is the paper's pitch in ~60 lines: an unbiased (Vitter) reservoir and
an exponentially biased one (Algorithm 2.1) watch the same evolving
stream; asked about the last 2,000 points, the biased sample has hundreds
of relevant points while the unbiased one has a handful — and the estimate
quality follows.

Run:
    python examples/quickstart.py
"""

from repro import (
    ExponentialReservoir,
    QueryEstimator,
    StreamHistory,
    UnbiasedReservoir,
    average_query,
)
from repro.queries import nan_penalized_error
from repro.streams import EvolvingClusterStream


def main() -> None:
    length, capacity, horizon = 100_000, 1000, 2_000
    stream = EvolvingClusterStream(length=length, rng=42)

    # The exact oracle is only here to score the estimates; a real
    # deployment keeps just the reservoirs.
    history = StreamHistory(dimensions=10)
    biased = ExponentialReservoir(capacity=capacity, rng=1)
    unbiased = UnbiasedReservoir(capacity, rng=2)

    print(f"streaming {length:,} evolving-cluster points ...")
    for point in stream:
        history.observe(point)
        biased.offer(point)
        unbiased.offer(point)

    query = average_query(horizon, dims=range(10))
    truth = history.evaluate(query)

    print(f"\nquery: per-dimension average over the last {horizon:,} points")
    print(f"{'reservoir':<10} {'relevant points':>16} {'avg abs error':>14}")
    for name, sampler in (("biased", biased), ("unbiased", unbiased)):
        estimator = QueryEstimator(sampler)
        result = estimator.estimate(query)
        error = nan_penalized_error(truth, result.estimate)
        print(f"{name:<10} {result.sample_support:>16} {error:>14.4f}")

    print(
        "\nBoth reservoirs hold exactly "
        f"{capacity} points; the biased one simply keeps the *relevant* "
        "ones.\nIts bias rate is set by its size alone "
        f"(lambda = 1/{capacity}, Observation 2.1)."
    )


if __name__ == "__main__":
    main()
