#!/usr/bin/env python
"""Capacity planning with the paper's theory (no streaming needed).

Section 2's results turn reservoir sizing into arithmetic. Given an
application's bias rate lambda, this example prints:

* the maximum reservoir requirement (Lemma 2.1 / Corollary 2.1) — the
  space that holds the *entire* relevant sample forever;
* what a memory budget below that requirement implies: insertion
  probability p_in, expected fill times (Theorem 3.2 / Corollary 3.1),
  and the startup speedup from variable reservoir sampling;
* the same quantities for a non-memory-less (polynomial) bias, where the
  requirement may grow without bound — the reason the exponential family
  is the practical choice.

Run:
    python examples/reservoir_sizing.py
"""

from repro.core.bias import ExponentialBias, PolynomialBias
from repro.core.theory import (
    expected_points_to_fill,
    expected_points_to_fraction,
)


def plan_exponential(lam: float, budget: int) -> None:
    bias = ExponentialBias(lam)
    requirement = bias.reservoir_capacity_bound()
    print(f"\nlambda = {lam:g}  (weight halves every {bias.half_life():,.0f} points)")
    print(f"  max reservoir requirement (Cor 2.1): {requirement:,.1f} points")
    print(f"  ~1/lambda approximation (Appr 2.1):  {bias.approximate_capacity():,.0f}")
    if budget >= requirement:
        print(
            f"  budget {budget:,} covers the full requirement -> "
            "Algorithm 2.1, deterministic insertion, fills in "
            f"~{expected_points_to_fill(int(requirement)):,.0f} points"
        )
        return
    p_in = budget * lam
    print(
        f"  budget {budget:,} < requirement -> Algorithm 3.1 with "
        f"p_in = {p_in:.3f}"
    )
    full = expected_points_to_fill(budget, p_in)
    almost = expected_points_to_fraction(budget, 0.95, p_in)
    print(f"    expected points to fill (Thm 3.2):      {full:,.0f}")
    print(f"    expected points to reach 95% (Cor 3.1): {almost:,.0f}")
    print(
        "    variable sampling (Thm 3.3) fills in       "
        f"~{budget:,} points instead — a "
        f"{full / budget:,.0f}x startup speedup"
    )


def main() -> None:
    print("=== Exponential (memory-less) bias: constant-space guarantee ===")
    for lam in (1e-3, 1e-4, 1e-5):
        plan_exponential(lam, budget=1000)

    print("\n=== Polynomial bias: the requirement need not converge ===")
    for alpha in (0.5, 1.5):
        bias = PolynomialBias(alpha)
        print(f"\nf(r,t) = (t-r+1)^-{alpha}")
        for t in (10_000, 100_000, 1_000_000):
            req = bias.max_reservoir_requirement(t)
            print(f"  R(t={t:>9,}) = {req:,.1f}")
        trend = (
            "grows without bound -> no constant-space reservoir exists"
            if alpha <= 1.0
            else "converges, but one-pass maintenance is an open problem "
            "(Section 2); use GeneralBiasSampler at Omega(n)/point"
        )
        print(f"  {trend}")


if __name__ == "__main__":
    main()
