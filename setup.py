"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (legacy ``setup.py develop`` editable install).
"""

from setuptools import setup

setup()
