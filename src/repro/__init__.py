"""biased-reservoir: a reproduction of Aggarwal (VLDB 2006),
"On Biased Reservoir Sampling in the Presence of Stream Evolution".

Quickstart
----------
>>> from repro import ExponentialReservoir, UnbiasedReservoir
>>> res = ExponentialReservoir(lam=1e-3, rng=0)   # capacity 1/lambda = 1000
>>> res.extend(range(100_000))
100000
>>> res.size
1000
>>> float(res.ages().mean()) < 5000               # recent-history biased
True

Package map
-----------
* :mod:`repro.core` — the samplers and bias-function theory (the paper's
  contribution: Algorithms 2.1 and 3.1, variable reservoir sampling,
  baselines).
* :mod:`repro.streams` — stream substrates (evolving clusters, synthetic
  intrusion data, transforms, CSV I/O).
* :mod:`repro.queries` — Section 4's query estimation engine
  (Horvitz-Thompson / Hajek over reservoirs, exact oracle, error metrics).
* :mod:`repro.mining` — Section 5.3's applications (reservoir kNN,
  prequential evaluation, evolution analysis).
* :mod:`repro.experiments` — one module per paper figure.
"""

from repro.core import (
    BiasFunction,
    ChainSampler,
    ExponentialBias,
    ExponentialReservoir,
    GeneralBiasSampler,
    PolynomialBias,
    ReservoirSampler,
    SampleEntry,
    SkipUnbiasedReservoir,
    SpaceConstrainedReservoir,
    TimeDecayReservoir,
    TimestampedExponentialReservoir,
    UnbiasedBias,
    UnbiasedReservoir,
    VariableReservoir,
    WindowBuffer,
    merge_exponential_reservoirs,
)
from repro.mining import ReservoirKnnClassifier, run_prequential, snapshot
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    average_query,
    class_distribution_query,
    count_query,
    range_selectivity_query,
    sum_query,
)
from repro.streams import (
    EvolvingClusterStream,
    IntrusionStream,
    StreamPoint,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BiasFunction",
    "ExponentialBias",
    "UnbiasedBias",
    "PolynomialBias",
    "ReservoirSampler",
    "SampleEntry",
    "UnbiasedReservoir",
    "SkipUnbiasedReservoir",
    "ExponentialReservoir",
    "SpaceConstrainedReservoir",
    "VariableReservoir",
    "WindowBuffer",
    "ChainSampler",
    "GeneralBiasSampler",
    "TimestampedExponentialReservoir",
    "TimeDecayReservoir",
    "merge_exponential_reservoirs",
    # streams
    "StreamPoint",
    "EvolvingClusterStream",
    "IntrusionStream",
    # queries
    "QueryEstimator",
    "StreamHistory",
    "count_query",
    "sum_query",
    "average_query",
    "range_selectivity_query",
    "class_distribution_query",
    # mining
    "ReservoirKnnClassifier",
    "run_prequential",
    "snapshot",
]
