"""Command-line interface.

Four subcommands cover the library's workflows without writing Python:

* ``repro generate`` — synthesize a stream to CSV (evolving clusters or
  the intrusion substitute).
* ``repro sample`` — run a reservoir sampler over a stream CSV and write
  the resident sample to CSV.
* ``repro experiment`` — run one paper-figure reproduction (or ``all``)
  and print/persist its series table.
* ``repro theory`` — reservoir sizing numbers from the paper's theorems.
* ``repro bench`` — measure batched vs per-item ingestion throughput
  (``--suite batch``) and/or the columnar query engine vs its per-point
  reference path (``--suite query``), recorded to
  ``BENCH_throughput.json``.
* ``repro verify`` — run the statistical conformance specs (sampler vs
  paper model, Monte-Carlo with a process fan-out) plus adversarial
  invariant checks, and write ``VERIFY_report.json``.
* ``repro recover`` — rebuild a crashed durable sampling run from its
  journal directory (checkpoint + WAL tail replay), optionally resume
  ingestion, and write the recovered sample.

Examples
--------
::

    repro generate --kind intrusion --length 50000 --seed 7 -o stream.csv
    repro sample -i stream.csv --algorithm biased --capacity 1000 -o sample.csv
    repro sample -i stream.csv --algorithm biased --capacity 1000 --workers 4 -o sample.csv
    repro sample -i stream.csv --capacity 1000 --checkpoint-dir journal --wal-sync batch -o sample.csv
    repro recover --checkpoint-dir journal -o sample.csv
    repro experiment fig6 --length 100000
    repro experiment fig2 --jobs 4
    repro theory --lam 1e-4 --budget 1000
    repro bench -o BENCH_throughput.json
    repro bench --suite query -o BENCH_throughput.json
    repro verify --replicates 200 --jobs 4 --json
    repro verify exponential-age merge-age --replicates 50
    repro verify --spec sharded_exponential_inclusion recovery_equivalence
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import (
    ExponentialReservoir,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    VariableReservoir,
)
from repro.core.bias import ExponentialBias
from repro.core.theory import (
    expected_points_to_fill,
    expected_points_to_fraction,
)
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.paper_scale import paper_scale_kwargs
from repro.streams import (
    EvolvingClusterStream,
    IntrusionStream,
    chunked,
    load_stream_csv,
    save_stream_csv,
)

__all__ = ["main", "build_parser"]

SAMPLERS = ("unbiased", "biased", "space-constrained", "variable")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Biased reservoir sampling (Aggarwal, VLDB 2006) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a stream to CSV")
    gen.add_argument(
        "--kind", choices=("clusters", "intrusion"), default="clusters"
    )
    gen.add_argument("--length", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)

    smp = sub.add_parser("sample", help="reservoir-sample a stream file")
    smp.add_argument("-i", "--input", required=True)
    smp.add_argument(
        "--format",
        choices=("csv", "kdd99"),
        default="csv",
        help="input format: this library's stream CSV, or the raw UCI "
        "KDD CUP 1999 file (42 comma-separated fields, optionally .gz)",
    )
    smp.add_argument("--algorithm", choices=SAMPLERS, default="biased")
    smp.add_argument("--capacity", type=int, default=1000)
    smp.add_argument(
        "--lam",
        type=float,
        default=None,
        help="bias rate lambda (required for space-constrained/variable; "
        "defaults to 1/capacity for 'biased')",
    )
    smp.add_argument("--seed", type=int, default=0)
    smp.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        help="ingestion block size for offer_many (1 = per-item offers)",
    )
    smp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the stream across N workers via repro.shard "
        "(capacity must divide evenly; 'biased' and 'space-constrained' "
        "only)",
    )
    smp.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal directory for durable ingestion (WAL + checkpoints "
        "via repro.persist); the run becomes crash-recoverable with "
        "`repro recover`",
    )
    smp.add_argument(
        "--wal-sync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL fsync policy when --checkpoint-dir is set: every record, "
        "at checkpoints only, or never (default: batch)",
    )
    smp.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="auto-checkpoint (and roll the WAL) every N journal records "
        "when --checkpoint-dir is set",
    )
    smp.add_argument("-o", "--output", required=True)

    rcv = sub.add_parser(
        "recover",
        help="rebuild a durable sampling run from its journal directory",
    )
    rcv.add_argument(
        "--checkpoint-dir",
        required=True,
        help="journal directory of the crashed `sample --checkpoint-dir` run",
    )
    rcv.add_argument(
        "-i",
        "--input",
        default=None,
        help="optional stream CSV to resume ingesting after recovery",
    )
    rcv.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        help="ingestion block size when resuming with --input",
    )
    rcv.add_argument(
        "--wal-sync",
        choices=("always", "batch", "never"),
        default="batch",
        help="WAL fsync policy for the resumed run",
    )
    rcv.add_argument("-o", "--output", required=True)

    exp = sub.add_parser("experiment", help="run a paper-figure experiment")
    exp.add_argument(
        "figure",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which figure to reproduce",
    )
    exp.add_argument(
        "--length", type=int, default=None, help="stream length override"
    )
    exp.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the original figures' stream lengths and horizon sweeps "
        "(half a million points — takes minutes per figure)",
    )
    exp.add_argument(
        "--markdown", action="store_true", help="emit Markdown instead of ASCII"
    )
    exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-seed trial fan-out (figures "
        "that support it; results are identical for any value)",
    )
    exp.add_argument("-o", "--output", default=None, help="write to file")

    thy = sub.add_parser("theory", help="reservoir sizing calculations")
    thy.add_argument("--lam", type=float, required=True)
    thy.add_argument("--budget", type=int, default=None)

    bch = sub.add_parser(
        "bench",
        help="measure batch vs per-item ingestion throughput",
    )
    bch.add_argument(
        "--suite",
        choices=("batch", "query", "all"),
        default="batch",
        help="which benchmark suite to run: ingestion batching, the "
        "columnar query engine, or both",
    )
    bch.add_argument(
        "--quick",
        action="store_true",
        help="shrink the query suite to smoke-test size",
    )
    bch.add_argument(
        "--batch-size", type=int, default=8192, help="offer_many block size"
    )
    bch.add_argument(
        "--repeats", type=int, default=3, help="timed runs per case (best-of)"
    )
    bch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also benchmark the sharded engine at this worker count "
        "(recorded under the report's 'sharded' key)",
    )
    bch.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the JSON report here (e.g. BENCH_throughput.json)",
    )

    ver = sub.add_parser(
        "verify",
        help="statistical conformance verification (specs + invariants)",
    )
    ver.add_argument(
        "specs",
        nargs="*",
        metavar="SPEC",
        help="spec names to run (default: all built-in specs)",
    )
    ver.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="SPEC",
        dest="spec_flags",
        help="spec name to run (repeatable; combined with positional "
        "SPEC arguments)",
    )
    ver.add_argument(
        "--list", action="store_true", help="list available specs and exit"
    )
    ver.add_argument(
        "--replicates",
        type=int,
        default=None,
        help="Monte-Carlo replicates per spec (default: per-spec budget)",
    )
    ver.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the replicate fan-out (1 = inline)",
    )
    ver.add_argument("--seed", type=int, default=0, help="base seed")
    ver.add_argument(
        "--skip-invariants",
        action="store_true",
        help="run only the statistical specs, not the adversarial checks",
    )
    ver.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report JSON instead of the table",
    )
    ver.add_argument(
        "-o",
        "--output",
        default="VERIFY_report.json",
        help="report path ('-' to skip writing)",
    )

    rep = sub.add_parser(
        "report",
        help="assemble saved benchmark results into one report",
    )
    rep.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding the per-experiment .txt tables",
    )
    rep.add_argument("-o", "--output", default=None, help="write to file")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "clusters":
        stream = EvolvingClusterStream(length=args.length, rng=args.seed)
    else:
        stream = IntrusionStream(length=args.length, rng=args.seed)
    count = save_stream_csv(stream, args.output)
    print(f"wrote {count} points ({args.kind}) to {args.output}")
    return 0


def _build_sharded_sampler(args: argparse.Namespace):
    from repro.shard import ShardedReservoir

    families = {"biased": "exponential", "space-constrained": "space_constrained"}
    if args.algorithm not in families:
        raise SystemExit(
            f"--workers > 1 supports only --algorithm "
            f"{'/'.join(sorted(families))}, got {args.algorithm!r}"
        )
    try:
        return ShardedReservoir(
            capacity=args.capacity,
            workers=args.workers,
            lam=args.lam,
            family=families[args.algorithm],
            rng=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _build_sampler(args: argparse.Namespace):
    if getattr(args, "workers", 1) > 1:
        return _build_sharded_sampler(args)
    if args.algorithm == "unbiased":
        return UnbiasedReservoir(args.capacity, rng=args.seed)
    if args.algorithm == "biased":
        return ExponentialReservoir(
            lam=args.lam, capacity=args.capacity, rng=args.seed
        )
    if args.lam is None:
        raise SystemExit(
            f"--lam is required for --algorithm {args.algorithm}"
        )
    if args.algorithm == "space-constrained":
        return SpaceConstrainedReservoir(
            lam=args.lam, capacity=args.capacity, rng=args.seed
        )
    return VariableReservoir(
        lam=args.lam, capacity=args.capacity, rng=args.seed
    )


def _cmd_sample(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.checkpoint_every < 1:
        raise SystemExit(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    sampler = _build_sampler(args)
    engine = None
    if args.checkpoint_dir is not None:
        from repro.persist import DurableReservoir

        try:
            engine = DurableReservoir(
                sampler,
                args.checkpoint_dir,
                wal_sync=args.wal_sync,
                checkpoint_every_records=args.checkpoint_every,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        sampler = engine
    if args.format == "kdd99":
        from repro.streams.kdd99 import load_kdd99

        stream = load_kdd99(args.input)
    else:
        stream = load_stream_csv(args.input)
    count = 0
    if args.batch_size == 1:
        for point in stream:
            sampler.offer(point)
            count += 1
    else:
        for block in chunked(stream, args.batch_size):
            sampler.offer_many(block)
            count += len(block)
    if engine is not None:
        engine.close()  # final checkpoint + fsync
    written = save_stream_csv(sampler.payloads(), args.output)
    durable = (
        f"; journal at {args.checkpoint_dir}" if engine is not None else ""
    )
    print(
        f"streamed {count} points through {args.algorithm} reservoir "
        f"(capacity {sampler.capacity}); wrote {written} residents to "
        f"{args.output}{durable}"
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    from repro.persist import DurableReservoir

    try:
        engine = DurableReservoir.recover(
            args.checkpoint_dir, wal_sync=args.wal_sync
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    info = engine.last_recovery
    print(
        f"recovered from checkpoint seq {info.checkpoint_seq} "
        f"(+{info.records_replayed} WAL records replayed, "
        f"{info.duplicates_dropped} duplicates dropped)"
    )
    for path, reason in info.truncated_tails:
        print(f"truncated damaged tail of {path} ({reason})")
    count = 0
    if args.input is not None:
        for block in chunked(load_stream_csv(args.input), args.batch_size):
            engine.offer_many(block)
            count += len(block)
    engine.close()
    written = save_stream_csv(engine.payloads(), args.output)
    resumed = f", resumed {count} points" if args.input is not None else ""
    print(
        f"recovered reservoir at t={engine.t}{resumed}; wrote {written} "
        f"residents to {args.output}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    figures = sorted(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    chunks = []
    for figure in figures:
        run = ALL_EXPERIMENTS[figure]
        kwargs = {}
        if args.paper_scale:
            kwargs.update(paper_scale_kwargs(figure))
        if args.length is not None:
            kwargs["length"] = args.length
        if args.jobs > 1 and "jobs" in inspect.signature(run).parameters:
            kwargs["jobs"] = args.jobs
        result = run(**kwargs)
        chunks.append(
            result.to_markdown() if args.markdown else result.render()
        )
    text = "\n\n".join(chunks)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {len(figures)} experiment table(s) to {args.output}")
    else:
        print(text)
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    bias = ExponentialBias(args.lam)
    requirement = bias.reservoir_capacity_bound()
    print(f"lambda = {args.lam:g}")
    print(f"  half-life:                {bias.half_life():,.0f} points")
    print(f"  max reservoir requirement (Cor 2.1): {requirement:,.1f}")
    print(f"  1/lambda approximation (Appr 2.1):   {bias.approximate_capacity():,.0f}")
    if args.budget is None:
        return 0
    if args.budget >= requirement:
        print(
            f"  budget {args.budget:,} covers the requirement: use "
            "Algorithm 2.1 (deterministic insertion)"
        )
        return 0
    p_in = args.budget * args.lam
    print(f"  budget {args.budget:,}: Algorithm 3.1 with p_in = {p_in:.4f}")
    print(
        f"    expected points to fill (Thm 3.2):      "
        f"{expected_points_to_fill(args.budget, p_in):,.0f}"
    )
    print(
        f"    expected points to reach 95% (Cor 3.1): "
        f"{expected_points_to_fraction(args.budget, 0.95, p_in):,.0f}"
    )
    print(
        f"    variable sampling (Thm 3.3) fills in:   ~{args.budget:,}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")
    if args.workers is not None and args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    from repro.experiments.throughput import (
        query_throughput_report,
        sharded_throughput_report,
        throughput_report,
        write_throughput_json,
    )

    report: dict = {}
    if args.suite in ("batch", "all"):
        report = throughput_report(
            batch_size=args.batch_size, repeats=args.repeats
        )
        for result in report["results"]:
            print(
                f"{result['name']}: per-item "
                f"{result['per_item_points_per_sec']:,.0f} pts/s, batched "
                f"{result['batched_points_per_sec']:,.0f} pts/s "
                f"({result['speedup']:.1f}x)"
            )
        if args.workers is not None:
            sharded = sharded_throughput_report(
                workers=args.workers,
                batch_size=args.batch_size,
                repeats=args.repeats,
            )
            report["sharded"] = sharded
            print(
                f"sharded W={sharded['workers']}: "
                f"{sharded['sharded_points_per_sec']:,.0f} pts/s vs serial "
                f"offer_many "
                f"{sharded['serial_offer_many_points_per_sec']:,.0f} "
                f"pts/s ({sharded['speedup_vs_serial']:.1f}x)"
            )
    if args.suite in ("query", "all"):
        query = query_throughput_report(
            repeats=args.repeats, quick=args.quick
        )
        report["query"] = query
        est, oracle = query["estimator"], query["oracle"]
        identical = "identical" if est["estimates_identical"] else "DIVERGED"
        print(
            f"query engine: columnar "
            f"{est['columnar_estimates_per_sec']:,.0f} est/s vs per-point "
            f"{est['per_point_estimates_per_sec']:,.0f} est/s "
            f"({est['speedup']:.1f}x, estimates {identical})"
        )
        print(
            f"exact oracle: checkpoint cost grew "
            f"{oracle['incremental_cost_growth']:.2f}x incremental vs "
            f"{oracle['scan_cost_growth']:.2f}x scan over a 4x horizon "
            f"({oracle['speedup_at_full_stream']:.1f}x faster at full "
            f"stream)"
        )
    if args.output:
        write_throughput_json(args.output, report=report)
        print(f"wrote throughput report to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.verify import (
        build_report,
        render_report,
        run_all_invariants,
        run_specs,
        specs_for,
        write_report,
    )

    if args.list:
        for spec in specs_for([]):
            meta = spec.describe()
            print(
                f"{meta['name']:32s} [{meta['family']}] {meta['theory']} — "
                f"{meta['description']}"
            )
        return 0
    if args.replicates is not None and args.replicates < 1:
        raise SystemExit(f"--replicates must be >= 1, got {args.replicates}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    requested = list(args.specs) + list(args.spec_flags or [])
    try:
        selection = specs_for(requested)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    start = time.perf_counter()
    spec_results = run_specs(
        selection, replicates=args.replicates, jobs=args.jobs, seed=args.seed
    )
    invariants = run_all_invariants(seed=args.seed) if not args.skip_invariants else []
    report = build_report(
        spec_results,
        invariants,
        seed=args.seed,
        jobs=args.jobs,
        elapsed_seconds=time.perf_counter() - start,
    )
    if args.output != "-":
        path = write_report(report, args.output)
        if not args.json:
            print(f"wrote report to {path}")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    return 0 if report["passed"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results at {results_dir} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    figures = sorted(results_dir.glob("fig*.txt"))
    ablations = sorted(results_dir.glob("ablation*.txt"))
    if not figures and not ablations:
        print(f"no result tables in {results_dir}", file=sys.stderr)
        return 1
    sections = ["# Benchmark report", ""]
    for group, paths in (("Figures", figures), ("Ablations", ablations)):
        if not paths:
            continue
        sections.append(f"## {group}")
        sections.append("")
        for path in paths:
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
            sections.append("")
    text = "\n".join(sections)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(
            f"wrote report covering {len(figures)} figures and "
            f"{len(ablations)} ablations to {args.output}"
        )
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "sample": _cmd_sample,
        "recover": _cmd_recover,
        "experiment": _cmd_experiment,
        "theory": _cmd_theory,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
