"""The paper's primary contribution: biased reservoir sampling.

Public surface:

* Bias functions and their reservoir-requirement math (Section 2 theory):
  :class:`BiasFunction`, :class:`ExponentialBias`, :class:`UnbiasedBias`,
  :class:`PolynomialBias`.
* Samplers:
  :class:`UnbiasedReservoir` / :class:`SkipUnbiasedReservoir` (baseline,
  Vitter), :class:`ExponentialReservoir` (Algorithm 2.1),
  :class:`SpaceConstrainedReservoir` (Algorithm 3.1),
  :class:`VariableReservoir` (Theorem 3.3),
  :class:`WindowBuffer` / :class:`ChainSampler` (sliding-window baselines),
  :class:`GeneralBiasSampler` (arbitrary-bias redistribution baseline).
* Closed forms in :mod:`repro.core.theory`.
"""

from repro.core.bias import (
    BiasFunction,
    ExponentialBias,
    PolynomialBias,
    UnbiasedBias,
)
from repro.core.biased import ExponentialReservoir
from repro.core.columns import ResidentColumns, build_resident_columns
from repro.core.merge import (
    fold_exponential_reservoirs,
    merge_exponential_reservoirs,
    proportionality_constant,
)
from repro.core.redistribution import GeneralBiasSampler
from repro.core.time_proportional import TimeDecayReservoir
from repro.core.timestamped import TimestampedExponentialReservoir
from repro.core.reservoir import (
    SNAPSHOT_VERSION,
    ReservoirSampler,
    SampleEntry,
    from_state_dict,
)
from repro.core.sliding_window import ChainSampler, WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import SkipUnbiasedReservoir, UnbiasedReservoir
from repro.core.variable import VariableReservoir

__all__ = [
    "BiasFunction",
    "ExponentialBias",
    "UnbiasedBias",
    "PolynomialBias",
    "ReservoirSampler",
    "SampleEntry",
    "ResidentColumns",
    "build_resident_columns",
    "UnbiasedReservoir",
    "SkipUnbiasedReservoir",
    "ExponentialReservoir",
    "SpaceConstrainedReservoir",
    "VariableReservoir",
    "WindowBuffer",
    "ChainSampler",
    "GeneralBiasSampler",
    "TimestampedExponentialReservoir",
    "TimeDecayReservoir",
    "merge_exponential_reservoirs",
    "fold_exponential_reservoirs",
    "proportionality_constant",
    "from_state_dict",
    "SNAPSHOT_VERSION",
]
