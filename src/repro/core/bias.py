"""Temporal bias functions and maximum reservoir requirements.

A *bias function* ``f(r, t)`` (Definition 2.1 of the paper) gives the
relative probability that the ``r``-th stream point belongs to the sample at
the time the ``t``-th point arrives (``1 <= r <= t``). It must be
monotonically non-increasing in ``t`` for fixed ``r`` and monotonically
non-decreasing in ``r`` for fixed ``t``, so recent points are favored.

The key structural results reproduced here:

* **Theorem 2.1** — any fixed-size sample proportional to ``f`` needs at most
  ``R(t) = sum_{i=1..t} f(i, t) / f(t, t)`` slots
  (:meth:`BiasFunction.max_reservoir_requirement`).
* **Lemma 2.1 / Corollary 2.1** — for the exponential (memory-less) bias
  ``f(r, t) = exp(-lambda * (t - r))`` the requirement is
  ``(1 - e^{-lambda t}) / (1 - e^{-lambda})``, bounded by the constant
  ``1 / (1 - e^{-lambda})`` for any stream length
  (:meth:`ExponentialBias.max_reservoir_requirement`,
  :meth:`ExponentialBias.reservoir_capacity_bound`).
* **Approximation 2.1** — for small ``lambda`` the bound is approximately
  ``1 / lambda`` (:meth:`ExponentialBias.approximate_capacity`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "BiasFunction",
    "ExponentialBias",
    "UnbiasedBias",
    "PolynomialBias",
]


class BiasFunction(ABC):
    """Interface for temporal bias functions ``f(r, t)``.

    Subclasses implement :meth:`weight`; vectorized evaluation, the
    Theorem 2.1 reservoir requirement, and monotonicity validation come for
    free. Indices are 1-based, matching the paper (``r = 1`` is the first
    stream point).
    """

    @abstractmethod
    def weight(self, r: int, t: int) -> float:
        """Return ``f(r, t)`` for a single arrival index pair.

        Parameters
        ----------
        r:
            1-based arrival index of the point being weighted.
        t:
            1-based index of the most recent arrival; requires ``r <= t``.
        """

    def weights(self, r: np.ndarray, t: int) -> np.ndarray:
        """Vectorized ``f(r, t)`` over an array of arrival indices.

        The default implementation loops over :meth:`weight`; subclasses
        override with closed forms where available.
        """
        r = np.asarray(r)
        return np.array([self.weight(int(ri), t) for ri in r.ravel()]).reshape(
            r.shape
        )

    def max_reservoir_requirement(self, t: int) -> float:
        """Theorem 2.1: ``R(t) = sum_{i=1..t} f(i, t) / f(t, t)``.

        This is the largest sample size any policy proportional to ``f`` can
        sustain after ``t`` arrivals; for strongly decaying ``f`` it is far
        below ``t``. The default implementation sums the vectorized weights;
        subclasses with closed forms override it.
        """
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        indices = np.arange(1, t + 1)
        total = float(self.weights(indices, t).sum())
        newest = self.weight(t, t)
        if newest <= 0.0:
            raise ValueError("bias function must be positive at r = t")
        return total / newest

    def incremental_weight_sum(self, prev_sum: float, t_next: int) -> float:
        """Advance ``S(t) = sum_{i<=t} f(i, t)`` by one arrival in O(1).

        Given ``prev_sum = S(t_next - 1)``, return ``S(t_next)``.
        Subclasses with closed-form recurrences override this; the base
        implementation raises :class:`NotImplementedError`, signalling that
        callers must recompute the sum directly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no incremental weight-sum recurrence"
        )

    def validate_monotonicity(self, t: int) -> bool:
        """Check Definition 2.1's monotonicity requirements up to time ``t``.

        Returns ``True`` when ``f(., t)`` is non-decreasing in ``r`` and
        ``f(r, .)`` is non-increasing in ``t`` over ``1..t``. Used by
        property tests and to sanity-check user-supplied bias functions.
        """
        indices = np.arange(1, t + 1)
        along_r = self.weights(indices, t)
        if np.any(np.diff(along_r) < -1e-12):
            return False
        for r in (1, max(1, t // 2), t):
            along_t = np.array([self.weight(r, u) for u in range(r, t + 1)])
            if np.any(np.diff(along_t) > 1e-12):
                return False
        return True

    def __call__(self, r: int, t: int) -> float:
        return self.weight(r, t)


class ExponentialBias(BiasFunction):
    """Memory-less exponential bias ``f(r, t) = exp(-lambda * (t - r))``.

    This is the class of bias functions for which the paper shows one-pass
    maintenance is possible (Algorithms 2.1 and 3.1). ``lam`` is the bias
    rate: inclusion probability decays by ``1/e`` every ``1/lam`` arrivals.
    ``lam = 0`` degenerates to the unbiased case.

    Parameters
    ----------
    lam:
        Bias rate ``lambda >= 0``. Typical values are small
        (``1e-5 .. 1e-3``), so the capacity bound ``~1/lam`` is in the
        thousands.
    """

    def __init__(self, lam: float) -> None:
        lam = float(lam)
        if lam < 0.0:
            raise ValueError(f"lambda must be >= 0, got {lam}")
        self.lam = lam

    def weight(self, r: int, t: int) -> float:
        """``exp(-lambda (t - r))``."""
        if r > t:
            raise ValueError(f"require r <= t, got r={r}, t={t}")
        return math.exp(-self.lam * (t - r))

    def weights(self, r: np.ndarray, t: int) -> np.ndarray:
        """Vectorized closed form."""
        r = np.asarray(r, dtype=np.float64)
        return np.exp(-self.lam * (t - r))

    def max_reservoir_requirement(self, t: int) -> float:
        """Lemma 2.1: ``R(t) = (1 - e^{-lambda t}) / (1 - e^{-lambda})``.

        For ``lambda = 0`` this is the unbiased requirement ``t``.
        """
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        if self.lam == 0.0:
            return float(t)
        decay = math.exp(-self.lam)
        return (1.0 - math.exp(-self.lam * t)) / (1.0 - decay)

    def incremental_weight_sum(self, prev_sum: float, t_next: int) -> float:
        """``S(t+1) = S(t) * e^{-lambda} + 1`` (every old term decays, the
        newcomer contributes weight 1)."""
        if t_next < 1:
            raise ValueError(f"t_next must be >= 1, got {t_next}")
        return prev_sum * math.exp(-self.lam) + 1.0

    def reservoir_capacity_bound(self) -> float:
        """Corollary 2.1: the constant bound ``1 / (1 - e^{-lambda})``.

        Independent of stream length: the whole *relevant* sample fits in
        constant space. Infinite when ``lambda = 0`` (unbiased sampling has
        no constant bound).
        """
        if self.lam == 0.0:
            return math.inf
        return 1.0 / (1.0 - math.exp(-self.lam))

    def approximate_capacity(self) -> float:
        """Approximation 2.1: ``1 / lambda`` for small ``lambda``."""
        if self.lam == 0.0:
            return math.inf
        return 1.0 / self.lam

    def natural_reservoir_size(self) -> int:
        """The integer capacity ``n = ceil(1/lambda)`` used by Algorithm 2.1."""
        if self.lam == 0.0:
            raise ValueError(
                "lambda = 0 (unbiased) has no finite natural reservoir size"
            )
        return max(1, math.ceil(1.0 / self.lam))

    def half_life(self) -> float:
        """Number of arrivals after which a point's weight halves."""
        if self.lam == 0.0:
            return math.inf
        return math.log(2.0) / self.lam

    def __repr__(self) -> str:
        return f"ExponentialBias(lam={self.lam!r})"


class UnbiasedBias(ExponentialBias):
    """The unbiased case ``f(r, t) = 1`` (``lambda = 0``).

    Provided as an explicit type so code can dispatch on "no bias" without
    comparing floats.
    """

    def __init__(self) -> None:
        super().__init__(0.0)

    def __repr__(self) -> str:
        return "UnbiasedBias()"


class PolynomialBias(BiasFunction):
    """Polynomial bias ``f(r, t) = 1 / (t - r + 1) ** alpha``.

    Polynomial decay is *not* memory-less, so the paper's one-pass
    maintenance theorems do not apply; one-pass maintenance for this family
    is the open problem noted in Section 2. We include it to exercise the
    general-purpose (periodic-redistribution) sampler and the Theorem 2.1
    requirement machinery on a non-exponential instance.

    Parameters
    ----------
    alpha:
        Decay exponent ``> 0``. ``alpha <= 1`` gives an unbounded (in ``t``)
        reservoir requirement; ``alpha > 1`` gives a convergent one.
    """

    def __init__(self, alpha: float) -> None:
        alpha = float(alpha)
        if alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self.alpha = alpha

    def weight(self, r: int, t: int) -> float:
        """``(t - r + 1) ** -alpha``."""
        if r > t:
            raise ValueError(f"require r <= t, got r={r}, t={t}")
        return 1.0 / float(t - r + 1) ** self.alpha

    def weights(self, r: np.ndarray, t: int) -> np.ndarray:
        """Vectorized closed form."""
        r = np.asarray(r, dtype=np.float64)
        return 1.0 / (t - r + 1.0) ** self.alpha

    def max_reservoir_requirement(self, t: int) -> float:
        """Theorem 2.1 instantiated: ``sum_{k=1..t} k^{-alpha}``.

        (``f(t, t) = 1`` so the normalization drops out.)
        """
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        k = np.arange(1, t + 1, dtype=np.float64)
        return float(np.sum(k**-self.alpha))

    def incremental_weight_sum(self, prev_sum: float, t_next: int) -> float:
        """``S(t) = sum_{k=1..t} k^{-alpha}``, so ``S(t+1) = S(t) +
        (t+1)^{-alpha}`` (the lag structure shifts but the multiset of lags
        only gains one new term)."""
        if t_next < 1:
            raise ValueError(f"t_next must be >= 1, got {t_next}")
        return prev_sum + float(t_next) ** -self.alpha

    def __repr__(self) -> str:
        return f"PolynomialBias(alpha={self.alpha!r})"
