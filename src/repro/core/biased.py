"""Algorithm 2.1 — exponentially biased reservoir sampling.

The paper's core maintenance policy for the memory-less bias
``f(r, t) = exp(-lambda (t - r))`` when the available space covers the full
requirement ``n = ceil(1/lambda)`` (Approximation 2.1):

1. The arriving point is inserted *deterministically*.
2. With probability ``F(t)`` (the current fill fraction) a uniformly random
   resident is ejected to make room; otherwise the reservoir grows by one.

The per-resident ejection hazard per arrival is
``F(t) * 1/(n F(t)) = 1/n``, so a point that arrived at ``r`` survives to
time ``t`` with probability ``(1 - 1/n)^(t-r) ≈ exp(-(t-r)/n)``
(Theorem 2.2) — exactly the exponential bias with ``lambda = 1/n``.

Observation 2.1: the insertion/ejection policy is parameter-free; the bias
rate is *set by the reservoir size alone*. Choose the size from the
application's ``lambda``, not the other way around.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

import numpy as np

from repro.core.bias import ExponentialBias
from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike

__all__ = ["ExponentialReservoir"]


class ExponentialReservoir(ReservoirSampler):
    """Biased reservoir sampler implementing Algorithm 2.1.

    Parameters
    ----------
    lam:
        Target bias rate ``lambda``. The reservoir capacity defaults to the
        natural size ``ceil(1/lambda)``; if ``capacity`` is also given it
        overrides the size and the *effective* bias rate becomes
        ``1/capacity`` (Observation 2.1). Exactly one of ``lam`` /
        ``capacity`` is required.
    capacity:
        Explicit reservoir size ``n``.
    rng:
        Seed or generator.

    Examples
    --------
    >>> res = ExponentialReservoir(lam=0.01, rng=7)
    >>> res.capacity
    100
    >>> res.extend(range(1000)) == 1000  # every offer is inserted
    True
    >>> res.is_full
    True
    """

    exponential_design = True

    def __init__(
        self,
        lam: Optional[float] = None,
        capacity: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        if lam is None and capacity is None:
            raise ValueError("provide lam and/or capacity")
        if capacity is None:
            capacity = ExponentialBias(lam).natural_reservoir_size()
        super().__init__(capacity, rng)
        # Observation 2.1: the realized bias rate is determined by the size.
        self.lam = 1.0 / self.capacity
        self.requested_lam = float(lam) if lam is not None else self.lam
        self.bias = ExponentialBias(self.lam)

    def offer(self, payload: Any) -> bool:
        """Algorithm 2.1 step: deterministic insert, ``F(t)``-biased eject."""
        fill = self.fill_fraction  # F(t), evaluated before this arrival
        self.t += 1
        self.offers += 1
        if self.is_full or self.rng.random() < fill:
            self._replace_random(payload)
        else:
            self._append(payload)
        return True

    def _offer_block(self, block: List[Any]) -> int:
        """Closed-form Algorithm 2.1 over a block (same distribution).

        Uses the *virtual-slot* formulation of the policy: each arrival is
        thrown into one of ``n`` virtual slots uniformly at random. Hitting
        an occupied slot evicts its resident (probability ``F(t)``, victim
        uniform among residents — exactly the paper's eject step); hitting
        an empty slot occupies it (probability ``1 - F(t)`` — the append
        step). The two processes are the same Markov chain on reservoir
        contents, but the virtual form has no sequential dependence, so an
        entire block reduces to one bulk draw of slot indices in which only
        each slot's *last* writer is materialized (intermediate occupants
        are unobservable). Newly occupied virtual slots are compacted onto
        the storage tail in first-hit order, matching the per-item append
        order.
        """
        n = self.capacity
        b = len(block)
        t0 = self.t
        s0 = len(self._payloads)
        victims = self.rng.integers(0, n, size=b)
        uniq, first_pos = np.unique(victims, return_index=True)
        last_pos = b - 1 - np.unique(victims[::-1], return_index=True)[1]
        existing = uniq < s0
        for slot, w in zip(
            uniq[existing].tolist(), last_pos[existing].tolist()
        ):
            self._payloads[slot] = block[w]
            self._arrivals[slot] = t0 + w + 1
            self._ops.append(("replace", slot))
        new_mask = ~existing
        order = np.argsort(first_pos[new_mask], kind="stable")
        for w in last_pos[new_mask][order].tolist():
            self._ops.append(("append", len(self._payloads)))
            self._payloads.append(block[w])
            self._arrivals.append(t0 + w + 1)
        self.t = t0 + b
        self.offers += b
        self.insertions += b
        self.ejections += b - int(new_mask.sum())
        return b

    def _extra_state(self) -> dict:
        return {"requested_lam": self.requested_lam}

    def _restore_extra(self, state: dict) -> None:
        self.requested_lam = float(state["requested_lam"])

    @classmethod
    def _construct_from_state(cls, state: dict) -> "ExponentialReservoir":
        # The first positional parameter is ``lam``; capacity must be named.
        return cls(capacity=state["capacity"])

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Theorem 2.2: ``p(r, t) ≈ exp(-(t - r)/n) = exp(-lambda (t - r))``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return math.exp(-self.lam * (t - r))

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Theorem 2.2 model."""
        t = self.t if t is None else int(t)
        r = np.asarray(r, dtype=np.float64)
        if np.any(r < 1) or np.any(r > t):
            raise ValueError("require 1 <= r <= t")
        return np.exp(-self.lam * (t - r))

    def survival_probability(self, age: int) -> float:
        """Exact per-policy survival ``(1 - 1/n)^age`` (pre-approximation).

        Theorem 2.2 approximates this by ``exp(-age/n)``; tests compare the
        two to quantify the approximation error.
        """
        if age < 0:
            raise ValueError(f"age must be >= 0, got {age}")
        return (1.0 - 1.0 / self.capacity) ** age
