"""Struct-of-arrays view of a reservoir's residents.

Query evaluation (:mod:`repro.queries`) is array-native: every estimate is
a handful of numpy reductions over the residents' feature values, labels,
and arrival indices. Materializing those three contiguous columns from the
reservoir's payload list costs one Python pass over the residents — which
is exactly the per-point work the columnar engine exists to avoid paying
*per query*. :class:`ResidentColumns` is that one materialization;
:meth:`~repro.core.reservoir.ReservoirSampler.resident_columns` caches it
against a mutation key so every estimate between two reservoir mutations
reuses the same arrays.

The view requires :class:`~repro.streams.point.StreamPoint` payloads (the
same contract the estimators already impose); offering any other payload
type makes :func:`build_resident_columns` raise ``AttributeError``, the
same error the per-point path raises on ``payload.values``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.streams.point import StreamPoint

__all__ = ["ResidentColumns", "build_resident_columns"]


@dataclass(frozen=True)
class ResidentColumns:
    """Contiguous columns over a reservoir's residents (storage order).

    Attributes
    ----------
    values:
        Feature matrix, shape ``(size, dimensions)``, float64, read-only.
    labels:
        Class labels, shape ``(size,)``, int64; ``-1`` encodes an
        unlabeled point (``StreamPoint.label is None``).
    arrivals:
        1-based arrival indices, shape ``(size,)``, int64.

    All three arrays are marked read-only: they are shared by every
    consumer of the cached view, so nobody may scribble on them.
    """

    values: np.ndarray
    labels: np.ndarray
    arrivals: np.ndarray

    @property
    def size(self) -> int:
        """Number of residents in the view."""
        return int(self.arrivals.shape[0])


def build_resident_columns(
    payloads: List[StreamPoint], arrivals: np.ndarray
) -> ResidentColumns:
    """Materialize :class:`ResidentColumns` from parallel resident storage.

    ``payloads`` must be :class:`StreamPoint` objects; ``arrivals`` their
    1-based arrival indices (same order). Empty storage yields
    ``(0, 0)``-shaped values.
    """
    arrivals = np.asarray(arrivals, dtype=np.int64)
    if not payloads:
        values = np.empty((0, 0))
        labels = np.empty(0, dtype=np.int64)
    else:
        first = payloads[0]
        if not isinstance(first, StreamPoint):
            # Same failure the per-point path hits on `payload.values` —
            # callers (and tests) catch AttributeError for wrong payloads.
            raise AttributeError(
                "resident columns require StreamPoint payloads, got "
                f"{type(first).__name__}"
            )
        values = np.array([p.values for p in payloads], dtype=np.float64)
        labels = np.fromiter(
            (-1 if p.label is None else p.label for p in payloads),
            dtype=np.int64,
            count=len(payloads),
        )
    values.setflags(write=False)
    labels.setflags(write=False)
    arrivals = arrivals.copy()
    arrivals.setflags(write=False)
    return ResidentColumns(values=values, labels=labels, arrivals=arrivals)
