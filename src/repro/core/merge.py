"""Merging biased reservoirs from distributed streams — an extension.

Setting: two nodes each maintain an exponentially biased reservoir (same
bias rate ``lambda``) over their own partition of a stream, and a
coordinator wants one reservoir representing the *union*, still
proportional to ``exp(-lambda * age)``, in bounded space.

The tool is the same one Theorem 3.3 uses for variable reservoir sampling:
*uniform thinning rescales every inclusion probability by the same factor
and therefore preserves proportionality.* Each input reservoir's design is
``p_i(x) = c_i * exp(-lambda * age(x))`` with a known proportionality
constant ``c_i`` (``1`` for Algorithm 2.1, ``p_in`` for Algorithm 3.1 and
variable sampling). The merge:

1. picks the target constant ``c* = lambda * capacity`` of the output
   reservoir (an Algorithm 3.1 design at the merged capacity);
2. thins each input independently with probability ``c* / c_i``
   (requiring ``c* <= c_i``, i.e. merged capacity at most the smaller
   input capacity — you cannot up-sample information you never kept);
3. unions the survivors on a common *age* axis (each input's own arrival
   counter is translated to ``merged_t - age``);
4. in the rare case the union still overflows, takes a simple random
   subset of exactly ``capacity`` (a conditionally uniform factor, again
   proportionality-preserving).

The result is a live :class:`~repro.core.space_constrained.SpaceConstrainedReservoir`
— continuing to ``offer()`` subsequent stream points maintains the merged
bias, because its insertion constant equals ``c*`` by construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "proportionality_constant",
    "merge_exponential_reservoirs",
    "fold_exponential_reservoirs",
]


def proportionality_constant(sampler: ReservoirSampler) -> float:
    """The ``c`` in ``p(x) = c * exp(-lambda * age)`` for a sampler.

    ``1.0`` for Algorithm 2.1 (deterministic insertion); the current
    ``p_in`` for Algorithm 3.1 and variable reservoir sampling.

    Eligibility is decided by the ``exponential_design`` class marker, not
    by the presence of a ``lam`` attribute: samplers such as
    :class:`~repro.core.time_proportional.TimeDecayReservoir` carry decay
    rates (and even recorded per-resident insertion probabilities) without
    maintaining the count-axis design ``p(x) = c * exp(-lambda * age)``,
    and silently returning their ``p_in`` would corrupt a merge.
    """
    if not getattr(sampler, "exponential_design", False):
        if hasattr(sampler, "lam"):
            detail = (
                "carries a 'lam' attribute but does not maintain the "
                "exponential inclusion design on the arrival-count axis"
            )
        else:
            detail = "no 'lam'"
        raise TypeError(
            f"{type(sampler).__name__} is not an exponentially biased "
            f"reservoir ({detail})"
        )
    return float(getattr(sampler, "p_in", 1.0))


def _aged_entries(sampler: ReservoirSampler) -> List[Tuple[int, object]]:
    """Residents as (age, payload) pairs on the sampler's own clock."""
    t = sampler.t
    return [(t - e.arrival, e.payload) for e in sampler.entries()]


def merge_exponential_reservoirs(
    a: ReservoirSampler,
    b: ReservoirSampler,
    capacity: Optional[int] = None,
    rng: RngLike = None,
) -> SpaceConstrainedReservoir:
    """Merge two exponentially biased reservoirs over disjoint streams.

    Parameters
    ----------
    a, b:
        Input reservoirs. Must share the same bias rate ``lam``; their
        streams are treated as aligned at "now" (age 0 == most recent
        arrival on either node).
    capacity:
        Output reservoir size; defaults to (and must not exceed) the
        smaller input capacity, and must not push the target constant
        ``lambda * capacity`` above either input's constant.
    rng:
        Seed or generator for the thinning coins.

    Returns
    -------
    SpaceConstrainedReservoir
        Live sampler with the merged residents, ``p_in = lambda *
        capacity``, and ``t = max(a.t, b.t)``. Offer new points to keep
        sampling the combined stream.
    """
    return fold_exponential_reservoirs((a, b), capacity=capacity, rng=rng)


def fold_exponential_reservoirs(
    samplers: Iterable[ReservoirSampler],
    capacity: Optional[int] = None,
    rng: RngLike = None,
) -> SpaceConstrainedReservoir:
    """N-way generalization of :func:`merge_exponential_reservoirs`.

    Folds any number of exponentially biased reservoirs (common ``lam``)
    into one live :class:`SpaceConstrainedReservoir` by Theorem 3.3
    uniform thinning on a common age axis. This is the primitive the
    sharded ingestion coordinator (:mod:`repro.shard`) uses to collapse
    ``W`` worker reservoirs into the global sample in a single pass — a
    pairwise merge cascade would thin intermediates ``W - 1`` times and
    discard survivors it did not have to.

    When an input's constant already equals the target (``keep_prob = 1``)
    its residents are kept outright without spending thinning coins —
    mirroring Algorithm 3.1's ``p_in = 1`` degeneracy — so a no-thinning
    fold is deterministic given the inputs.
    """
    samplers = list(samplers)
    if not samplers:
        raise ValueError("need at least one input reservoir to fold")
    constants = [proportionality_constant(s) for s in samplers]
    lam = float(samplers[0].lam)
    for other in samplers[1:]:
        if not np.isclose(lam, other.lam, rtol=1e-9):
            raise ValueError(
                f"bias rates differ: {lam} vs {other.lam}; merging "
                "requires a common lambda"
            )
    if capacity is None:
        capacity = min(s.capacity for s in samplers)
    capacity = int(capacity)
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")

    generator = as_generator(rng)
    target_c = min(1.0, lam * capacity)
    survivors: List[Tuple[int, object]] = []
    for sampler, c_i in zip(samplers, constants):
        if target_c > c_i + 1e-12:
            raise ValueError(
                f"target constant {target_c:.6g} exceeds input constant "
                f"{c_i:.6g}; lower the merged capacity (cannot up-sample)"
            )
        keep_prob = target_c / c_i
        # Snap to the no-thinning degeneracy within float tolerance so a
        # fold at the inputs' own constant stays coin-free even when
        # target_c = lam * capacity rounds one ulp below c_i.
        if keep_prob >= 1.0 - 1e-12:
            survivors.extend(_aged_entries(sampler))
        else:
            for age, payload in _aged_entries(sampler):
                if generator.random() < keep_prob:
                    survivors.append((age, payload))

    if len(survivors) > capacity:
        # Conditionally uniform down-sample to exactly `capacity`.
        chosen = generator.choice(
            len(survivors), size=capacity, replace=False
        )
        survivors = [survivors[i] for i in chosen]

    merged_t = max(s.t for s in samplers)
    out = SpaceConstrainedReservoir(
        lam=lam, capacity=capacity, p_in=target_c, rng=generator
    )
    out.t = merged_t
    out.offers = merged_t
    for age, payload in sorted(survivors, key=lambda pair: -pair[0]):
        out._payloads.append(payload)
        out._arrivals.append(max(1, merged_t - age))
        out.insertions += 1
    return out
