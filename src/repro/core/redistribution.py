"""General-bias sampling by per-arrival redistribution (the costly path).

Section 2 of the paper argues that for *arbitrary* bias functions
``f(r, t)`` no efficient one-pass maintenance is known: because every
resident's target probability changes with each arrival, the whole sample
"may need to be re-distributed ... ``Omega(|S(t)|)`` operations for every
point in the stream", and the reservoir size cannot be held constant.

:class:`GeneralBiasSampler` implements exactly that costly-but-general
strategy, so the library can (a) sample under non-memory-less biases such as
:class:`~repro.core.bias.PolynomialBias`, and (b) demonstrate the efficiency
argument empirically in the ablation benchmarks.

Mechanism (independent / Poisson sampling): maintain for each resident its
current inclusion probability ``p(r, t) = min(1, C(t) f(r, t))`` with
``C(t) = n_target / sum_{i<=t} f(i, t)``. On each arrival, every resident is
independently retained with probability ``p(r, t+1)/p(r, t)`` (a valid
thinning because ``p`` is non-increasing in ``t`` for monotone bias
functions), and the newcomer enters with probability ``p(t+1, t+1)``. The
sample is therefore *exactly* proportional to ``f`` at all times, with
``E[|S(t)|] = n_target`` once the stream is long enough — but the size
fluctuates and each arrival costs ``Theta(|S(t)|)`` work, as the paper
predicts.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core.bias import (
    BiasFunction,
    ExponentialBias,
    PolynomialBias,
    UnbiasedBias,
)
from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike

__all__ = ["GeneralBiasSampler"]


def _bias_state(bias: BiasFunction) -> dict:
    """Serialize a built-in bias function for snapshots."""
    # UnbiasedBias subclasses ExponentialBias, so it must be checked first.
    if isinstance(bias, UnbiasedBias):
        return {"class": "UnbiasedBias"}
    if isinstance(bias, ExponentialBias):
        return {"class": "ExponentialBias", "lam": bias.lam}
    if isinstance(bias, PolynomialBias):
        return {"class": "PolynomialBias", "alpha": bias.alpha}
    raise TypeError(
        f"cannot snapshot a GeneralBiasSampler with custom bias "
        f"{type(bias).__name__}"
    )


def _bias_from_state(state: dict) -> BiasFunction:
    """Rebuild a bias function serialized by :func:`_bias_state`."""
    name = state["class"]
    if name == "UnbiasedBias":
        return UnbiasedBias()
    if name == "ExponentialBias":
        return ExponentialBias(state["lam"])
    if name == "PolynomialBias":
        return PolynomialBias(state["alpha"])
    raise ValueError(f"unknown bias class {name!r}")


class GeneralBiasSampler(ReservoirSampler):
    """Exact proportional sampler for arbitrary monotone bias functions.

    Parameters
    ----------
    bias:
        Any :class:`~repro.core.bias.BiasFunction`.
    target_size:
        Desired expected sample size ``n``. The realized size is random
        (binomial-like fluctuation around the target); ``capacity`` is
        sized with headroom to absorb it.

        Theorem 2.1 caveat: if ``target_size`` exceeds the bias function's
        maximum reservoir requirement ``R(t)``, exact proportionality is
        impossible — per-point probabilities are clamped at 1 and the
        realized expected size is ``sum_r min(1, C(t) f(r, t)) < n``. This
        is the paper's point that bias *upper-bounds* the useful sample
        size; pick ``target_size <= bias.max_reservoir_requirement(t)``.
    rng:
        Seed or generator.
    capacity_slack:
        Multiplier for the physical capacity over ``target_size``
        (default 3x) — purely a guard rail; the sampler never *needs* the
        slack in expectation.
    """

    supports_mutation_log = False  # storage is rebuilt wholesale per offer

    def __init__(
        self,
        bias: BiasFunction,
        target_size: int,
        rng: RngLike = None,
        capacity_slack: float = 3.0,
    ) -> None:
        target_size = int(target_size)
        if target_size < 1:
            raise ValueError(f"target_size must be >= 1, got {target_size}")
        super().__init__(max(1, int(target_size * capacity_slack)), rng)
        self.bias = bias
        self.target_size = target_size
        self._weight_sum = 0.0  # sum_{i<=t} f(i, t)
        self._probs: List[float] = []  # current p(r, t) per resident

    def _constant(self) -> float:
        """Normalizer ``C(t) = n / sum f(i, t)`` from Equation (6)."""
        return self.target_size / self._weight_sum

    def _extra_state(self) -> dict:
        return {
            "bias": _bias_state(self.bias),
            "target_size": self.target_size,
            "weight_sum": self._weight_sum,
            "probs": [float(p) for p in self._probs],
        }

    def _restore_extra(self, state: dict) -> None:
        self._weight_sum = float(state["weight_sum"])
        self._probs = [float(p) for p in state["probs"]]

    @classmethod
    def _construct_from_state(cls, state: dict) -> "GeneralBiasSampler":
        obj = cls(_bias_from_state(state["bias"]), state["target_size"])
        # Reapply the snapshotted physical capacity directly rather than
        # reverse-engineering the slack multiplier (float-exactly).
        obj.capacity = int(state["capacity"])
        return obj

    def offer(self, payload: Any) -> bool:
        """Redistribute every resident to its new probability, then admit
        the newcomer with its own (Theta(|S|) work per arrival)."""
        t_next = self.t + 1
        # Update the weight sum to time t+1: every old term decays from
        # f(i, t) to f(i, t+1) and the newcomer contributes f(t+1, t+1).
        try:
            self._weight_sum = self.bias.incremental_weight_sum(
                self._weight_sum, t_next
            )
        except NotImplementedError:
            indices = np.arange(1, t_next + 1)
            self._weight_sum = float(self.bias.weights(indices, t_next).sum())
        self.t = t_next
        self.offers += 1

        const = self._constant()
        # Redistribute: thin every resident to its new target probability.
        survivors_p: List[Any] = []
        survivors_a: List[int] = []
        survivors_prob: List[float] = []
        for pay, arr, p_old in zip(self._payloads, self._arrivals, self._probs):
            p_new = min(1.0, const * self.bias.weight(arr, self.t))
            keep_prob = 1.0 if p_old <= 0.0 else min(1.0, p_new / p_old)
            if self.rng.random() < keep_prob:
                survivors_p.append(pay)
                survivors_a.append(arr)
                survivors_prob.append(p_new)
            else:
                self.ejections += 1
        self._payloads = survivors_p
        self._arrivals = survivors_a
        self._probs = survivors_prob

        # Admit the newcomer with its own target probability.
        p_new_point = min(1.0, const * self.bias.weight(self.t, self.t))
        if self.rng.random() < p_new_point and self.size < self.capacity:
            self._payloads.append(payload)
            self._arrivals.append(self.t)
            self._probs.append(p_new_point)
            self.insertions += 1
            return True
        return False

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Exact maintained probability ``min(1, C(t) f(r, t))``.

        Only the current time is supported (the normalizer for past times
        is not retained).
        """
        t = self.t if t is None else int(t)
        if t != self.t:
            raise ValueError(
                "GeneralBiasSampler only models p(r, t) at the current time"
            )
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return min(1.0, self._constant() * self.bias.weight(r, t))

    def work_per_arrival(self) -> float:
        """Average redistribution work (resident touches) per arrival so far.

        This is the ``Omega(|S(t)|)`` cost the paper's Section 2 warns
        about; compare with the O(1) cost of Algorithm 2.1 in the
        throughput ablation.
        """
        if self.offers == 0:
            return 0.0
        # Every offer touches every resident once; approximate by the
        # current size (residents count is roughly stationary at target).
        return float(self.size)
