"""Base machinery shared by all reservoir samplers.

A reservoir sampler consumes a stream one item at a time through
:meth:`ReservoirSampler.offer` and maintains a bounded in-memory sample.
Subclasses implement the paper's specific insertion/ejection policies; this
module provides the storage, counters, and inspection API common to all of
them.

Storage layout: two parallel Python lists, ``_payloads`` (arbitrary user
objects) and ``_arrivals`` (1-based arrival indices). Parallel lists keep
per-offer overhead minimal for multi-hundred-thousand-point streams while
still letting callers attach any payload type.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.columns import ResidentColumns, build_resident_columns
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "ReservoirSampler",
    "SampleEntry",
    "from_state_dict",
    "SNAPSHOT_VERSION",
]

#: Schema version stamped into every ``state_dict()`` payload. Bump it
#: whenever the snapshot layout changes incompatibly; ``from_state_dict``
#: rejects any other version up front instead of failing deep inside a
#: family's ``_restore_extra``.
SNAPSHOT_VERSION = 1

#: Concrete sampler classes by name, for snapshot restoration
#: (:func:`from_state_dict`). Populated by ``__init_subclass__``.
_SAMPLER_CLASSES: Dict[str, type] = {}


@dataclass(frozen=True)
class SampleEntry:
    """One resident of a reservoir: the payload plus its arrival index."""

    arrival: int
    payload: Any


class ReservoirSampler(ABC):
    """Abstract bounded stream sampler.

    Parameters
    ----------
    capacity:
        Maximum number of residents (``n`` in the paper).
    rng:
        Seed or :class:`numpy.random.Generator` driving all randomness.

    Attributes
    ----------
    t:
        Number of stream points offered so far (the paper's ``t``).
    offers, insertions, ejections:
        Lifetime counters, useful for verifying policy behaviour in tests.
    """

    def __init__(self, capacity: int, rng: RngLike = None) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = as_generator(rng)
        self.t = 0
        self.offers = 0
        self.insertions = 0
        self.ejections = 0
        self._payloads: List[Any] = []
        self._arrivals: List[int] = []
        # Per-offer mutation log (see `last_ops`): lets consumers such as
        # the kNN classifier mirror the reservoir incrementally instead of
        # re-snapshotting it on every prediction. During an `offer_many`
        # batch the log accumulates across the whole batch instead of
        # resetting per arrival (`_batch_depth` > 0).
        self._ops: List[Tuple] = []
        self._ops_t = -1
        self._batch_depth = 0
        # Cached struct-of-arrays resident view (see `resident_columns`):
        # (mutation key, ResidentColumns) or None.
        self._columns_cache: Optional[Tuple[Tuple, ResidentColumns]] = None

    #: Whether `last_ops` faithfully describes every storage change. Samplers
    #: with bespoke storage (chains, wholesale rebuilds) set this to False and
    #: consumers fall back to full re-snapshots.
    supports_mutation_log: bool = True

    #: Whether the sampler maintains an exponential inclusion design
    #: ``p(x) = c * exp(-lambda * age)`` on its arrival-count axis. Only
    #: these samplers are valid merge inputs (:mod:`repro.core.merge`);
    #: having a ``lam`` attribute alone is not sufficient.
    exponential_design: bool = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _SAMPLER_CLASSES[cls.__name__] = cls

    # ------------------------------------------------------------------ #
    # Policy interface
    # ------------------------------------------------------------------ #

    @abstractmethod
    def offer(self, payload: Any) -> bool:
        """Process the next stream point; return ``True`` if it was stored."""

    @abstractmethod
    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Model probability that arrival ``r`` is resident at time ``t``.

        This is the analytical ``p(r, t)`` for the sampler's policy (e.g.
        Theorem 2.2 for Algorithm 2.1). It is the quantity Horvitz-Thompson
        estimation divides by; it is a *model*, not a per-run empirical
        frequency. ``t`` defaults to the current stream position.
        """

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized :meth:`inclusion_probability` over arrival indices.

        The base implementation loops; subclasses override with closed
        forms. Estimation code should always call this form.
        """
        t = self.t if t is None else int(t)
        r = np.asarray(r)
        return np.array(
            [self.inclusion_probability(int(ri), t) for ri in r.ravel()]
        ).reshape(r.shape)

    # ------------------------------------------------------------------ #
    # Shared storage operations
    # ------------------------------------------------------------------ #

    def extend(self, payloads: Iterable[Any]) -> int:
        """Offer every item of ``payloads`` in order; return the stored count.

        The return value counts offers that were *stored* (``offer``
        returned ``True``) — it is **not** the reservoir's net growth,
        because storing an arrival may eject a resident to make room (for
        :class:`~repro.core.biased.ExponentialReservoir` every offer is
        stored, so the count always equals ``len(payloads)`` even once the
        reservoir is full). Net growth is ``insertions - ejections``.

        This path always processes points one at a time, consuming the
        exact same random sequence as a loop of :meth:`offer` calls; use
        :meth:`offer_many` for the vectorized block path.
        """
        inserted = 0
        for payload in payloads:
            if self.offer(payload):
                inserted += 1
        return inserted

    def offer_many(self, payloads: Iterable[Any]) -> int:
        """Process a block of stream points; return the stored count.

        Statistically equivalent to calling :meth:`offer` in a loop —
        counters (``t``, ``offers``, ``insertions``, ``ejections``) and the
        sampling distribution match the per-item path — but subclasses with
        closed-form policies override the hooks below with vectorized numpy
        fast paths that pre-draw the block's randomness in bulk. The exact
        random *sequence* consumed may therefore differ from the per-item
        path; only the distribution is guaranteed.

        After a batch, :attr:`last_ops` describes the storage mutations of
        the whole batch (in order) rather than of the final arrival only.
        The return value follows the :meth:`extend` contract: offers stored,
        not net growth.
        """
        block = (
            payloads
            if isinstance(payloads, (list, tuple))
            else list(payloads)
        )
        if not block:
            return 0
        self._begin_batch_log()
        try:
            stored = self._offer_block(block)
        finally:
            self._end_batch_log()
        return stored

    def _offer_block(self, block: List[Any]) -> int:
        """Batch-ingestion hook: process ``block`` and return stored count.

        The base implementation is the per-item loop; subclasses override
        it with vectorized fast paths. Called with the batch log already
        open, so mutation records accumulate across the block.
        """
        stored = 0
        for payload in block:
            if self.offer(payload):
                stored += 1
        return stored

    def _begin_batch_log(self) -> None:
        """Open a batch scope: `last_ops` accumulates until the scope ends."""
        if self._batch_depth == 0:
            self._ops = []
            self._ops_t = self.t
        self._batch_depth += 1

    def _end_batch_log(self) -> None:
        """Close a batch scope, pinning `last_ops` to the final position."""
        self._batch_depth -= 1
        if self._batch_depth == 0:
            self._ops_t = self.t

    def _record_op(self, op: Tuple) -> None:
        """Append a mutation record for the current offer (or open batch)."""
        if self._batch_depth == 0 and self._ops_t != self.t:
            self._ops = []
            self._ops_t = self.t
        self._ops.append(op)

    @property
    def last_ops(self) -> List[Tuple]:
        """Storage mutations performed by the most recent ``offer`` (or, in
        order, by the most recent ``offer_many`` batch).

        Records are ``("append", slot)``, ``("replace", slot)``, or
        ``("compact",)`` (slots were removed and remaining residents
        re-indexed — consumers should re-snapshot). Empty when the last
        offer changed nothing.
        """
        return list(self._ops) if self._ops_t == self.t else []

    def _append(self, payload: Any) -> None:
        """Store a new resident (reservoir grows by one)."""
        if len(self._payloads) >= self.capacity:
            raise RuntimeError("reservoir already at capacity; replace instead")
        self._payloads.append(payload)
        self._arrivals.append(self.t)
        self.insertions += 1
        self._record_op(("append", len(self._payloads) - 1))

    def _replace_random(self, payload: Any) -> SampleEntry:
        """Overwrite a uniformly random resident; return the evicted entry."""
        if not self._payloads:
            raise RuntimeError("cannot replace in an empty reservoir")
        victim = int(self.rng.integers(len(self._payloads)))
        return self._replace_at(victim, payload)

    def _replace_at(self, slot: int, payload: Any) -> SampleEntry:
        """Overwrite the resident in ``slot``; return the evicted entry."""
        evicted = SampleEntry(self._arrivals[slot], self._payloads[slot])
        self._payloads[slot] = payload
        self._arrivals[slot] = self.t
        self.insertions += 1
        self.ejections += 1
        self._record_op(("replace", slot))
        return evicted

    def _eject_random(self, count: int) -> List[SampleEntry]:
        """Remove ``count`` uniformly random residents (without replacement)."""
        size = len(self._payloads)
        count = min(int(count), size)
        if count <= 0:
            return []
        if count == 1:
            # Swap-remove fast path: the variable-reservoir scheme ejects
            # exactly one point per phase, thousands of times per stream.
            victim = int(self.rng.integers(size))
            evicted_entry = SampleEntry(
                self._arrivals[victim], self._payloads[victim]
            )
            self._payloads[victim] = self._payloads[-1]
            self._arrivals[victim] = self._arrivals[-1]
            self._payloads.pop()
            self._arrivals.pop()
            self.ejections += 1
            self._record_op(("compact",))
            return [evicted_entry]
        victims = self.rng.choice(size, size=count, replace=False)
        evicted = [
            SampleEntry(self._arrivals[v], self._payloads[v]) for v in victims
        ]
        keep = np.ones(size, dtype=bool)
        keep[victims] = False
        self._payloads = [p for p, k in zip(self._payloads, keep) if k]
        self._arrivals = [a for a, k in zip(self._arrivals, keep) if k]
        self.ejections += count
        self._record_op(("compact",))
        return evicted

    # ------------------------------------------------------------------ #
    # Snapshots (checkpoint/restore and cross-process transport)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, Any]:
        """Complete observable state as a plain picklable dict.

        Round-tripping through :func:`from_state_dict` yields a sampler
        that is indistinguishable from the original: same residents (in
        storage order), same counters, and the *same generator state*, so
        ``snapshot -> restore -> offer`` consumes the exact random
        sequence an uninterrupted run would. This is the contract the
        sharded ingestion engine (:mod:`repro.shard`) relies on to move
        samplers across process boundaries and to survive coordinator
        restarts; it also serves as a standalone checkpoint format.

        Payload objects are carried by reference (not copied); the
        container lists are fresh, so continuing to offer into the live
        sampler never mutates an already-taken snapshot.
        """
        state: Dict[str, Any] = {
            "version": SNAPSHOT_VERSION,
            "class": type(self).__name__,
            "module": type(self).__module__,
            "capacity": int(self.capacity),
            "t": int(self.t),
            "offers": int(self.offers),
            "insertions": int(self.insertions),
            "ejections": int(self.ejections),
            "rng_state": self.rng.bit_generator.state,
        }
        state.update(self._storage_state())
        state.update(self._extra_state())
        return state

    def _storage_state(self) -> Dict[str, Any]:
        """Resident storage as snapshot fields (hook for bespoke storage)."""
        return {
            "payloads": list(self._payloads),
            "arrivals": [int(a) for a in self._arrivals],
        }

    def _restore_storage(self, state: Dict[str, Any]) -> None:
        """Rebuild resident storage from snapshot fields."""
        self._payloads = list(state["payloads"])
        self._arrivals = [int(a) for a in state["arrivals"]]

    def _extra_state(self) -> Dict[str, Any]:
        """Family-specific snapshot fields (override in subclasses)."""
        return {}

    def _restore_extra(self, state: Dict[str, Any]) -> None:
        """Restore family-specific snapshot fields."""

    @classmethod
    def _construct_from_state(cls, state: Dict[str, Any]) -> "ReservoirSampler":
        """Build a blank instance with the snapshot's constructor params.

        The base implementation covers single-argument families
        (``cls(capacity)``); families with extra constructor parameters
        override it. Counters, storage, and RNG state are restored by
        :func:`from_state_dict` afterwards.
        """
        return cls(state["capacity"])

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Current number of residents."""
        return len(self._payloads)

    @property
    def fill_fraction(self) -> float:
        """The paper's ``F(t)``: current size over capacity, in ``[0, 1]``.

        Routes through :attr:`size` so samplers with bespoke storage
        (e.g. :class:`~repro.core.sliding_window.ChainSampler`) report
        correctly.
        """
        return self.size / self.capacity

    @property
    def is_full(self) -> bool:
        """Whether the reservoir holds ``capacity`` residents."""
        return self.size >= self.capacity

    def payloads(self) -> List[Any]:
        """Copy of the resident payloads (order is storage order)."""
        return list(self._payloads)

    def arrival_indices(self) -> np.ndarray:
        """1-based arrival indices of the residents, as an int64 array."""
        return np.asarray(self._arrivals, dtype=np.int64)

    def ages(self) -> np.ndarray:
        """Per-resident age ``t - r`` (0 for a point that just arrived)."""
        return self.t - self.arrival_indices()

    def entries(self) -> List[SampleEntry]:
        """Copy of the residents as :class:`SampleEntry` records."""
        return [
            SampleEntry(a, p) for a, p in zip(self._arrivals, self._payloads)
        ]

    def _columns_key(self) -> Tuple:
        """Cache key for :meth:`resident_columns`.

        Resident storage can only change through paths that bump
        ``insertions`` or ``ejections`` (``_append``, ``_replace_at``,
        ``_eject_random``, and every vectorized ``offer_many`` fast path
        bumps them in bulk), so those counters — plus the size, as a
        belt-and-braces guard for bespoke subclasses — identify a storage
        epoch exactly. Families whose storage mutates outside the counter
        paths (e.g. :class:`~repro.core.sliding_window.ChainSampler`)
        override this with a key that changes on every storage change.
        """
        return (self.insertions, self.ejections, self.size)

    def resident_columns(self) -> ResidentColumns:
        """Struct-of-arrays view of the residents, cached between mutations.

        Returns contiguous ``values``/``labels``/``arrivals`` arrays (see
        :class:`~repro.core.columns.ResidentColumns`) in storage order.
        The materialization is cached against :meth:`_columns_key`, so
        repeated query estimates between two reservoir mutations reuse one
        pass over the payloads instead of paying it per query. Requires
        :class:`~repro.streams.point.StreamPoint` payloads.
        """
        key = self._columns_key()
        cached = self._columns_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        columns = build_resident_columns(
            self.payloads(), self.arrival_indices()
        )
        self._columns_cache = (key, columns)
        return columns

    def __len__(self) -> int:
        return len(self._payloads)

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._payloads))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"size={self.size}, t={self.t})"
        )


def from_state_dict(state: Dict[str, Any]) -> ReservoirSampler:
    """Rebuild a sampler from a :meth:`ReservoirSampler.state_dict` snapshot.

    Resolves the concrete class by the recorded module/class pair (importing
    the module if needed), reconstructs it with the snapshot's constructor
    parameters, then restores storage, counters, family-specific state, and
    the exact RNG state. The result behaves identically to the snapshotted
    sampler from its next ``offer`` onward.

    Snapshots missing a ``version`` field are treated as version 1 (the
    layout predating the field); any other version is rejected here with
    a clear error rather than failing deep inside family extras.
    """
    version = state.get("version", 1)
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {version!r} is not supported by this "
            f"library (expected {SNAPSHOT_VERSION}); it was probably "
            "written by a newer release"
        )
    importlib.import_module(state["module"])
    try:
        cls = _SAMPLER_CLASSES[state["class"]]
    except KeyError:
        raise ValueError(
            f"unknown sampler class {state['class']!r}; its module "
            f"{state['module']!r} did not register it"
        ) from None
    obj = cls._construct_from_state(state)
    if obj.capacity != int(state["capacity"]):
        raise ValueError(
            f"{cls.__name__}._construct_from_state rebuilt capacity "
            f"{obj.capacity}, snapshot says {state['capacity']}"
        )
    obj.t = int(state["t"])
    obj.offers = int(state["offers"])
    obj.insertions = int(state["insertions"])
    obj.ejections = int(state["ejections"])
    obj._restore_storage(state)
    obj._restore_extra(state)
    obj.rng.bit_generator.state = state["rng_state"]
    # The mutation log describes live offers, not a restore; start clean.
    obj._ops = []
    obj._ops_t = -1
    obj._batch_depth = 0
    return obj
