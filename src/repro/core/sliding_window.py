"""Sliding-window sampling — the "other extreme" baseline.

The paper's introduction contrasts biased sampling against restricting the
sample to a pure sliding window: the window forgets *all* history beyond the
horizon, which is unstable when older behaviour is still queried
periodically. We implement two window samplers so that examples, tests, and
ablation benchmarks can quantify that trade-off:

* :class:`WindowBuffer` — stores the entire last-``W`` window exactly.
  Memory is ``O(W)``; estimates inside the window are exact, outside it
  impossible. This is the ground-truth end of the spectrum.
* :class:`ChainSampler` — Babcock, Datar & Motwani's chain-sampling: ``k``
  independent chains, each maintaining a uniform random member of the
  current window in expected ``O(1)`` memory per chain. This is the
  memory-bounded end of the spectrum.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

import numpy as np

from repro.core.reservoir import ReservoirSampler, SampleEntry
from repro.utils.rng import RngLike

__all__ = ["WindowBuffer", "ChainSampler"]


class WindowBuffer(ReservoirSampler):
    """Exact buffer of the last ``capacity`` stream points.

    Conforms to the :class:`~repro.core.reservoir.ReservoirSampler`
    interface so it can be dropped into any experiment as a baseline: every
    offer is stored and the oldest resident is evicted once the window is
    full.
    """

    def offer(self, payload: Any) -> bool:
        """Store the arrival; evict the oldest resident once full (FIFO)."""
        self.t += 1
        self.offers += 1
        if len(self._payloads) >= self.capacity:
            # Because fills are sequential and replacements preserve
            # position, the oldest resident is always at slot
            # ``(t - 1) % capacity``.
            self._replace_at((self.t - 1) % self.capacity, payload)
        else:
            self._append(payload)
        return True

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Deterministic membership: 1 inside the window, 0 outside."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return 1.0 if t - r < self.capacity else 0.0


class _Chain:
    """One chain-sampling slot: a uniform member of the sliding window.

    Follows Babcock et al.: arrival ``i`` becomes the sample with
    probability ``1/min(i, W)``; when an element joins the chain, the index
    of its replacement is pre-drawn uniformly from the ``W`` arrivals after
    it, so expiry never leaves the slot empty.
    """

    __slots__ = ("window", "rng", "chain", "successor")

    def __init__(self, window: int, rng: np.random.Generator) -> None:
        self.window = window
        self.rng = rng
        self.chain: Deque[Tuple[int, Any]] = deque()
        self.successor = -1

    def offer(self, index: int, payload: Any) -> None:
        picked = self.rng.random() < 1.0 / min(index, self.window)
        if picked:
            # Restart the chain from this element.
            self.chain.clear()
            self.chain.append((index, payload))
            self.successor = index + 1 + int(self.rng.integers(self.window))
        elif index == self.successor:
            self.chain.append((index, payload))
            self.successor = index + 1 + int(self.rng.integers(self.window))
        # Expire the head if it fell out of the window.
        while self.chain and self.chain[0][0] <= index - self.window:
            self.chain.popleft()

    def current(self) -> Optional[Tuple[int, Any]]:
        return self.chain[0] if self.chain else None


class ChainSampler(ReservoirSampler):
    """``capacity`` independent chain samples over a sliding window.

    Parameters
    ----------
    capacity:
        Number of sample slots (chains). Slots are independent, so the
        overall sample is uniform-with-replacement over the window.
    window:
        Sliding-window length ``W`` in arrivals.
    rng:
        Seed or generator.
    """

    supports_mutation_log = False  # storage lives inside the chains

    def _columns_key(self) -> Tuple:
        """Chains mutate on every offer without touching the base-storage
        counters, so the columnar-view cache keys on the stream position."""
        return (self.t,)

    def __init__(self, capacity: int, window: int, rng: RngLike = None) -> None:
        super().__init__(capacity, rng)
        window = int(window)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._chains = [_Chain(window, self.rng) for _ in range(self.capacity)]

    def offer(self, payload: Any) -> bool:
        """Advance every chain with the new arrival."""
        self.t += 1
        self.offers += 1
        for chain in self._chains:
            chain.offer(self.t, payload)
        return True

    def _extra_state(self) -> dict:
        return {
            "window": self.window,
            "chains": [
                {
                    "chain": [[int(i), p] for i, p in chain.chain],
                    "successor": int(chain.successor),
                }
                for chain in self._chains
            ],
        }

    def _restore_extra(self, state: dict) -> None:
        self._chains = []
        for rec in state["chains"]:
            chain = _Chain(self.window, self.rng)
            chain.chain.extend((int(i), p) for i, p in rec["chain"])
            chain.successor = int(rec["successor"])
            self._chains.append(chain)

    @classmethod
    def _construct_from_state(cls, state: dict) -> "ChainSampler":
        return cls(capacity=state["capacity"], window=state["window"])

    # Chain state lives inside the chains, so override the storage views. #

    def entries(self) -> List[SampleEntry]:
        """Current samples (one per non-empty chain)."""
        out = []
        for chain in self._chains:
            cur = chain.current()
            if cur is not None:
                out.append(SampleEntry(cur[0], cur[1]))
        return out

    def payloads(self) -> List[Any]:
        """Current sample payloads (one per non-empty chain)."""
        return [e.payload for e in self.entries()]

    def arrival_indices(self) -> np.ndarray:
        """Arrival indices of the current samples."""
        return np.asarray([e.arrival for e in self.entries()], dtype=np.int64)

    @property
    def size(self) -> int:
        return sum(1 for c in self._chains if c.chain)

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self.payloads())

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Per-slot membership probability ``1/min(t, W)`` inside the
        window, 0 outside.

        Each chain holds a uniform member of the window, so for
        Horvitz-Thompson style estimation over the pooled slots the expected
        multiplicity of arrival ``r`` is ``capacity / min(t, W)``; dividing
        per-slot keeps the estimator consistent under pooling.
        """
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        if t - r >= self.window:
            return 0.0
        return 1.0 / min(t, self.window)

    def memory_footprint(self) -> int:
        """Total chain links currently stored (expected ``O(capacity)``)."""
        return sum(len(c.chain) for c in self._chains)
