"""Algorithm 3.1 — biased sampling under strong space constraints.

When available memory ``n`` is *below* the natural requirement ``1/lambda``,
Algorithm 2.1's deterministic insertion would realize the wrong bias rate.
Algorithm 3.1 restores the target rate by admitting arrivals only with an
*insertion probability* ``p_in = n * lambda``:

1. With probability ``p_in`` the arriving point enters the reservoir
   (otherwise it is dropped outright).
2. On entry, a coin with success probability ``F(t)`` decides whether a
   uniformly random resident is ejected (replacement) or the reservoir
   grows by one.

Theorem 3.1: the inclusion probability is
``p(r, t) ≈ p_in * exp(-lambda (t - r))`` — the same exponential *shape*,
scaled down by ``p_in`` because space forbids holding every recent point.

Theorem 3.2 / Corollary 3.1 (implemented in :mod:`repro.core.theory`): the
reservoir takes ``O(n log n / p_in)`` expected arrivals to fill, which for
small ``p_in`` is painfully long — the motivation for variable reservoir
sampling (:mod:`repro.core.variable`).
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.core.bias import ExponentialBias
from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike, require_probability

__all__ = ["SpaceConstrainedReservoir"]


class SpaceConstrainedReservoir(ReservoirSampler):
    """Biased reservoir sampler implementing Algorithm 3.1 (fixed ``p_in``).

    Parameters
    ----------
    lam:
        Target bias rate ``lambda``.
    capacity:
        Available reservoir size ``n``. The insertion probability is derived
        as ``p_in = n * lambda`` unless given explicitly.
    p_in:
        Insertion probability override (must satisfy ``0 < p_in <= 1``).
        When provided together with ``capacity``, ``lam`` may be omitted and
        is derived as ``p_in / n``.
    rng:
        Seed or generator.

    Notes
    -----
    ``p_in = 1`` recovers Algorithm 2.1 exactly; tests rely on this.
    """

    exponential_design = True

    def __init__(
        self,
        lam: Optional[float] = None,
        capacity: Optional[int] = None,
        p_in: Optional[float] = None,
        rng: RngLike = None,
    ) -> None:
        if capacity is None:
            if lam is None or p_in is None:
                raise ValueError(
                    "provide capacity, or both lam and p_in to derive it"
                )
            capacity = max(1, round(p_in / lam))
        super().__init__(capacity, rng)
        if p_in is None:
            if lam is None:
                raise ValueError("provide lam or p_in")
            p_in = self.capacity * float(lam)
            if p_in > 1.0 + 1e-12:
                raise ValueError(
                    f"capacity {self.capacity} exceeds the natural size "
                    f"1/lambda = {1.0 / lam:.6g}; use ExponentialReservoir "
                    "or lower the capacity"
                )
            p_in = min(1.0, p_in)
        self.p_in = require_probability(p_in, "p_in")
        if self.p_in == 0.0:
            raise ValueError("p_in must be positive")
        self.lam = self.p_in / self.capacity
        self.bias = ExponentialBias(self.lam)

    def offer(self, payload: Any) -> bool:
        """Algorithm 3.1 step: ``p_in``-gated insert, ``F(t)``-biased eject."""
        fill = self.fill_fraction  # F(t) before this arrival
        self.t += 1
        self.offers += 1
        # Skip the insertion coin when p_in == 1 so the policy consumes the
        # same random sequence as Algorithm 2.1 (exact degeneracy).
        if self.p_in < 1.0 and self.rng.random() >= self.p_in:
            return False
        if self.is_full or self.rng.random() < fill:
            self._replace_random(payload)
        else:
            self._append(payload)
        return True

    def _extra_state(self) -> dict:
        return {"p_in": self.p_in}

    @classmethod
    def _construct_from_state(cls, state: dict) -> "SpaceConstrainedReservoir":
        return cls(capacity=state["capacity"], p_in=state["p_in"])

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Theorem 3.1: ``p(r, t) ≈ p_in * exp(-lambda (t - r))``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return self.p_in * math.exp(-self.lam * (t - r))

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Theorem 3.1 model."""
        t = self.t if t is None else int(t)
        r = np.asarray(r, dtype=np.float64)
        if np.any(r < 1) or np.any(r > t):
            raise ValueError("require 1 <= r <= t")
        return self.p_in * np.exp(-self.lam * (t - r))

    def survival_probability(self, age: int) -> float:
        """Exact retention ``(1 - p_in/n)^age`` from the Theorem 3.1 proof.

        A resident survives one arrival if no insertion happens
        (``1 - p_in``) or an insertion happens but it is not the victim
        (``p_in (1 - 1/n)``); the sum is ``1 - p_in/n``.
        """
        if age < 0:
            raise ValueError(f"age must be >= 0, got {age}")
        return (1.0 - self.p_in / self.capacity) ** age
