"""Closed-form results from the paper, as executable functions.

These are the analytical companions to the samplers: tests check the
samplers against them, and the experiment harness overlays them on measured
curves.

Implemented results
-------------------
* ``max_reservoir_requirement`` — Theorem 2.1 for any bias function
  (delegates to :meth:`repro.core.bias.BiasFunction.max_reservoir_requirement`).
* ``expected_points_to_fill`` — Theorem 3.2: expected arrivals before a
  ``p_in``-gated reservoir of size ``n`` is completely full,
  ``(n / p_in) * H_n`` (exact harmonic form; the paper states the
  ``O(n log n / p_in)`` asymptotic).
* ``expected_points_to_fraction`` — Corollary 3.1: expected arrivals to
  reach fill fraction ``f``; linear in ``n`` for fixed ``f``.
* ``expected_fill_trajectory`` — the expected fill count after ``t``
  arrivals for Algorithm 3.1, ``n (1 - (1 - p_in/n)^t)`` (solution of the
  coupon-collector-style recurrence used in the Theorem 3.2 proof).
* ``expected_inclusion_*`` — the ``p(r, t)`` models of Property 2.1,
  Theorem 2.2, and Theorem 3.1, in vectorized form.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.core.bias import BiasFunction

__all__ = [
    "harmonic_number",
    "max_reservoir_requirement",
    "expected_points_to_fill",
    "expected_points_to_fraction",
    "expected_fill_trajectory",
    "expected_inclusion_unbiased",
    "expected_inclusion_exponential",
    "expected_inclusion_space_constrained",
]

ArrayLike = Union[int, float, np.ndarray]


def harmonic_number(n: int) -> float:
    """``H_n = sum_{k=1..n} 1/k`` (exact for small n, asymptotic for large).

    The asymptotic expansion ``ln n + gamma + 1/(2n) - 1/(12 n^2)`` is used
    above ``n = 10^6`` where it is accurate to ~1e-14.
    """
    n = int(n)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return 0.0
    if n <= 1_000_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    gamma = 0.5772156649015328606
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def max_reservoir_requirement(bias: BiasFunction, t: int) -> float:
    """Theorem 2.1: maximum sample size supportable by ``bias`` at time ``t``."""
    return bias.max_reservoir_requirement(t)


def expected_points_to_fill(n: int, p_in: float = 1.0) -> float:
    """Theorem 3.2: expected arrivals before the reservoir is full.

    With ``q`` residents, the next slot fills with per-arrival probability
    ``p_in (n - q)/n``, so the total expectation is
    ``sum_{q=0..n-1} n / (p_in (n - q)) = (n / p_in) H_n``.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p_in <= 1.0:
        raise ValueError(f"p_in must lie in (0, 1], got {p_in}")
    return (n / p_in) * harmonic_number(n)


def expected_points_to_fraction(n: int, fraction: float, p_in: float = 1.0) -> float:
    """Corollary 3.1: expected arrivals to reach fill fraction ``fraction``.

    Truncating the Theorem 3.2 sum at ``m = ceil(fraction * n)`` slots gives
    ``(n / p_in) (H_n - H_{n-m})`` — linear in ``n`` for fixed fraction,
    which is why filling *almost* full is cheap and only the last few slots
    are slow.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    if not 0.0 < p_in <= 1.0:
        raise ValueError(f"p_in must lie in (0, 1], got {p_in}")
    m = math.ceil(fraction * n)
    return (n / p_in) * (harmonic_number(n) - harmonic_number(n - m))


def expected_fill_trajectory(n: int, p_in: float, t: ArrayLike) -> np.ndarray:
    """Expected resident count after ``t`` arrivals under Algorithm 3.1.

    The fill recurrence ``E[q_{t+1}] = E[q_t] + p_in (1 - E[q_t]/n)``
    solves to ``n (1 - (1 - p_in/n)^t)``. (For Algorithm 2.1 pass
    ``p_in = 1``.) Vectorized over ``t``.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p_in <= 1.0:
        raise ValueError(f"p_in must lie in (0, 1], got {p_in}")
    t_arr = np.asarray(t, dtype=np.float64)
    return n * (1.0 - (1.0 - p_in / n) ** t_arr)


def expected_inclusion_unbiased(n: int, r: ArrayLike, t: int) -> np.ndarray:
    """Property 2.1: ``p(r, t) = min(1, n/t)`` for every ``r <= t``."""
    r_arr = np.asarray(r, dtype=np.float64)
    if np.any(r_arr < 1) or np.any(r_arr > t):
        raise ValueError("require 1 <= r <= t")
    return np.full_like(r_arr, min(1.0, n / t))


def expected_inclusion_exponential(n: int, r: ArrayLike, t: int) -> np.ndarray:
    """Theorem 2.2: ``p(r, t) = exp(-(t - r)/n)``."""
    r_arr = np.asarray(r, dtype=np.float64)
    if np.any(r_arr < 1) or np.any(r_arr > t):
        raise ValueError("require 1 <= r <= t")
    return np.exp(-(t - r_arr) / n)


def expected_inclusion_space_constrained(
    n: int, p_in: float, r: ArrayLike, t: int
) -> np.ndarray:
    """Theorem 3.1: ``p(r, t) = p_in exp(-p_in (t - r)/n)``."""
    r_arr = np.asarray(r, dtype=np.float64)
    if np.any(r_arr < 1) or np.any(r_arr > t):
        raise ValueError("require 1 <= r <= t")
    return p_in * np.exp(-p_in * (t - r_arr) / n)
