"""Rate-adaptive time-decay sampling — an extension.

:mod:`repro.core.timestamped` keeps wall-clock decay but inherits a
count-based memory-pressure floor: a burst of ``k >> n`` arrivals evicts
``~k`` residents because insertion is deterministic. The fix is the same
one Algorithm 3.1 applies to space constraints — *gate insertion* — with
the gate adapted to the arrival rate:

* maintain an online estimate ``rho_hat`` of the arrival rate (EWMA of
  interarrival gaps);
* insert each arrival with probability ``p_in = min(1, n * lam_time /
  rho_hat)`` — during a 100x burst only ~1/100 of points enter, so the
  burst contributes (in expectation) the same *mass per unit time* as
  quiet traffic;
* on insertion, run the usual ``F(t)``-gated uniform ejection. The
  per-unit-time ejection hazard is then ``rho * p_in / n ~ lam_time``
  regardless of the rate, so retention decays as ``exp(-lam_time *
  elapsed)`` — pure wall-clock decay.

Because ``rho_hat`` moves, the insertion probability varies over time; the
sampler therefore records each resident's *actual* insertion probability
and exposes the exact per-resident inclusion model

    p(x) = p_in(s_x) * exp(-lam_time * (now - s_x))

so Horvitz-Thompson estimation stays exact even across rate changes (the
same bookkeeping trick that makes variable reservoir sampling estimable).

Trade-off vs the hybrid sampler: during a burst this design *rejects* most
burst points (keeping the time-decay contract), whereas the hybrid design
keeps them all (trading away old points). Which is right depends on
whether the application's horizon is in seconds or in arrivals — the
``ablation_timestamped`` benchmark measures both.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike

__all__ = ["TimeDecayReservoir"]


class TimeDecayReservoir(ReservoirSampler):
    """Pure wall-clock-decay reservoir with rate-adaptive insertion.

    Parameters
    ----------
    lam_time:
        Decay rate per unit time.
    capacity:
        Reservoir size ``n``; also the target steady-state sample size
        when the arrival rate satisfies ``rho >= n * lam_time``.
    rate_memory:
        EWMA factor (0, 1] for the interarrival-gap estimate; smaller
        adapts slower. Default 0.05 (~20-gap memory).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        lam_time: float,
        capacity: int,
        rate_memory: float = 0.05,
        rng: RngLike = None,
    ) -> None:
        super().__init__(capacity, rng)
        lam_time = float(lam_time)
        if lam_time <= 0.0:
            raise ValueError(f"lam_time must be > 0, got {lam_time}")
        if not 0.0 < rate_memory <= 1.0:
            raise ValueError(
                f"rate_memory must lie in (0, 1], got {rate_memory}"
            )
        self.lam_time = lam_time
        self.rate_memory = float(rate_memory)
        self.now: float = 0.0
        self._mean_gap: Optional[float] = None  # EWMA of interarrival gaps
        self._timestamps: List[float] = []
        self._insert_probs: List[float] = []

    def _extra_state(self) -> dict:
        return {
            "lam_time": self.lam_time,
            "rate_memory": self.rate_memory,
            "now": self.now,
            "mean_gap": self._mean_gap,
            "timestamps": [float(s) for s in self._timestamps],
            "insert_probs": [float(p) for p in self._insert_probs],
        }

    def _restore_extra(self, state: dict) -> None:
        self.now = float(state["now"])
        gap = state["mean_gap"]
        self._mean_gap = None if gap is None else float(gap)
        self._timestamps = [float(s) for s in state["timestamps"]]
        self._insert_probs = [float(p) for p in state["insert_probs"]]

    @classmethod
    def _construct_from_state(cls, state: dict) -> "TimeDecayReservoir":
        return cls(
            lam_time=state["lam_time"],
            capacity=state["capacity"],
            rate_memory=state["rate_memory"],
        )

    # ------------------------------------------------------------------ #
    # Rate estimation
    # ------------------------------------------------------------------ #

    @property
    def estimated_rate(self) -> float:
        """Current arrival-rate estimate (inf before two arrivals)."""
        if self._mean_gap is None or self._mean_gap <= 0.0:
            return math.inf
        return 1.0 / self._mean_gap

    def current_insertion_probability(self) -> float:
        """``min(1, n * lam_time / rho_hat)`` with the current estimate."""
        rate = self.estimated_rate
        if not math.isfinite(rate) or rate <= 0.0:
            return 1.0
        return min(1.0, self.capacity * self.lam_time / rate)

    def _update_rate(self, gap: float) -> None:
        if self._mean_gap is None:
            self._mean_gap = gap if gap > 0 else None
        else:
            self._mean_gap += self.rate_memory * (gap - self._mean_gap)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _run_decay(self, delta: float) -> None:
        """Time-decay ejections for the elapsed gap (as in the hybrid
        sampler): K ~ Poisson(lam * delta * n) F-gated rounds."""
        mean = self.lam_time * delta * self.capacity
        if mean <= 0.0:
            return
        for _ in range(int(self.rng.poisson(mean))):
            size = len(self._payloads)
            if size == 0:
                break
            if self.rng.random() < size / self.capacity:
                victim = int(self.rng.integers(size))
                self._payloads[victim] = self._payloads[-1]
                self._arrivals[victim] = self._arrivals[-1]
                self._timestamps[victim] = self._timestamps[-1]
                self._insert_probs[victim] = self._insert_probs[-1]
                self._payloads.pop()
                self._arrivals.pop()
                self._timestamps.pop()
                self._insert_probs.pop()
                self.ejections += 1
                self._record_op(("compact",))

    def offer_at(self, payload: Any, timestamp: float) -> bool:
        """Process an arrival stamped ``timestamp`` (non-decreasing)."""
        timestamp = float(timestamp)
        if timestamp < self.now:
            raise ValueError(
                f"timestamps must be non-decreasing: {timestamp} < {self.now}"
            )
        delta = timestamp - self.now
        if self.t > 0:
            self._update_rate(delta)
        self.now = timestamp
        self.t += 1
        self.offers += 1
        self._run_decay(delta)
        p_in = self.current_insertion_probability()
        if self.rng.random() >= p_in:
            return False
        if self.is_full:
            victim = int(self.rng.integers(len(self._payloads)))
            self._replace_at(victim, payload)
            self._timestamps[victim] = timestamp
            self._insert_probs[victim] = p_in
        else:
            self._append(payload)
            self._timestamps.append(timestamp)
            self._insert_probs.append(p_in)
        return True

    def offer(self, payload: Any) -> bool:
        """Unit-spaced arrivals."""
        return self.offer_at(payload, self.now + 1.0)

    # ------------------------------------------------------------------ #
    # Views / models
    # ------------------------------------------------------------------ #

    def timestamps(self) -> np.ndarray:
        """Wall-clock timestamps of the residents."""
        return np.asarray(self._timestamps, dtype=np.float64)

    def time_ages(self) -> np.ndarray:
        """Per-resident elapsed time ``now - timestamp``."""
        return self.now - self.timestamps()

    def resident_weights(self) -> np.ndarray:
        """Exact per-resident HT weights ``1 / p(x)`` with
        ``p(x) = p_in(s_x) * exp(-lam_time * (now - s_x))``.

        The insertion probability of *this very resident* was recorded at
        insertion time, so the weights are exact across rate changes."""
        probs = np.asarray(self._insert_probs, dtype=np.float64)
        decay = np.exp(-self.lam_time * self.time_ages())
        return 1.0 / (probs * decay)

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Arrival-index models do not apply; use :meth:`resident_weights`
        (per-resident, exact) for estimation."""
        raise NotImplementedError(
            "TimeDecayReservoir records exact per-resident inclusion "
            "probabilities; use resident_weights()"
        )
