"""Wall-clock (timestamp-driven) exponential bias — an extension.

The paper measures age in *arrival counts*: ``f(r, t) = exp(-lambda (t-r))``
with ``t - r`` the number of points since ``r`` arrived. Real deployments
often want decay in *time* instead — "weight halves every 10 minutes"
regardless of how bursty the arrival process is. This module extends
Algorithm 2.1 toward that setting.

Mechanism. In the count-based algorithm, each arrival applies a
per-resident ejection hazard of exactly ``1/n``. Here, an elapsed
wall-clock gap ``delta`` additionally triggers ``K ~ Poisson(lam_time *
delta * n)`` single-ejection rounds; conditioned on the gap each resident
survives those rounds with probability

    E[(1 - 1/n)^K] = exp(-lam_time * delta)

exactly (Poisson mgf — no large-``n`` approximation for this step).

**Exact semantics (read this).** Insertion stays deterministic, and
inserting into a *full* bounded reservoir must evict someone — that
replacement contributes an unavoidable count-based hazard of ``1/n`` per
arrival on top of the time decay. The realized retention of a resident
inserted at wall-clock time ``s`` / arrival index ``r`` is therefore the
*hybrid*

    p ~ exp(-lam_time * (now - s)) * (1 - 1/n)^(t - r)            (*)

with both factors tracked and modelled exactly by
:meth:`TimestampedExponentialReservoir.inclusion_probability_at`. Two
regimes follow:

* arrival rate ``rho << n * lam_time`` — the time term dominates; the
  sampler behaves as pure wall-clock decay;
* ``rho >> n * lam_time`` — memory pressure dominates and the sampler
  gracefully degrades to the count-based Algorithm 2.1 (a bounded
  reservoir simply cannot retain a burst longer than ``n`` slots allow).

This "time decay, but never slower than memory forces" contract is
well-defined, estimable (the Horvitz-Thompson machinery just divides by
(*)), and O(1) expected work per arrival when ``lam_time * mean_gap * n``
is O(1).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike

__all__ = ["TimestampedExponentialReservoir"]


class TimestampedExponentialReservoir(ReservoirSampler):
    """Exponentially time-biased reservoir (hybrid decay, see module doc).

    Parameters
    ----------
    lam_time:
        Decay rate per unit time: the time component of a resident's
        retention decays by ``1/e`` every ``1/lam_time`` time units.
    capacity:
        Reservoir size ``n``. The time-based analogue of the maximum
        requirement depends on the arrival rate ``rho``: the relevant
        sample holds ~``rho / lam_time`` points
        (:meth:`suggested_capacity`).
    rng:
        Seed or generator.

    Usage
    -----
    Call :meth:`offer_at(payload, timestamp)` with non-decreasing
    timestamps. Plain :meth:`offer` assumes unit spacing.
    """

    def __init__(
        self, lam_time: float, capacity: int, rng: RngLike = None
    ) -> None:
        super().__init__(capacity, rng)
        lam_time = float(lam_time)
        if lam_time <= 0.0:
            raise ValueError(f"lam_time must be > 0, got {lam_time}")
        self.lam_time = lam_time
        self.now: float = 0.0
        self._timestamps: List[float] = []  # parallel to payload slots

    def _extra_state(self) -> dict:
        return {
            "lam_time": self.lam_time,
            "now": self.now,
            "timestamps": [float(s) for s in self._timestamps],
        }

    def _restore_extra(self, state: dict) -> None:
        self.now = float(state["now"])
        self._timestamps = [float(s) for s in state["timestamps"]]

    @classmethod
    def _construct_from_state(
        cls, state: dict
    ) -> "TimestampedExponentialReservoir":
        return cls(lam_time=state["lam_time"], capacity=state["capacity"])

    @staticmethod
    def suggested_capacity(arrival_rate: float, lam_time: float) -> int:
        """Time-based analogue of Approximation 2.1.

        Over the past, the expected relevant mass is
        ``integral rho * exp(-lam_time * a) da = rho / lam_time``; that is
        the constant space that holds the whole relevant sample.
        """
        if arrival_rate <= 0.0 or lam_time <= 0.0:
            raise ValueError("arrival_rate and lam_time must be > 0")
        return max(1, math.ceil(arrival_rate / lam_time))

    def _run_decay(self, delta: float) -> None:
        """Apply K ~ Poisson(lam * delta * n) F(t)-gated ejection rounds.

        The F-gate (eject only with probability size/capacity) mirrors
        Algorithm 2.1's pre-fill behaviour; once full it is a certainty.
        """
        mean = self.lam_time * delta * self.capacity
        if mean <= 0.0:
            return
        rounds = int(self.rng.poisson(mean))
        for _ in range(rounds):
            size = len(self._payloads)
            if size == 0:
                break
            if self.rng.random() < size / self.capacity:
                victim = int(self.rng.integers(size))
                self._payloads[victim] = self._payloads[-1]
                self._arrivals[victim] = self._arrivals[-1]
                self._timestamps[victim] = self._timestamps[-1]
                self._payloads.pop()
                self._arrivals.pop()
                self._timestamps.pop()
                self.ejections += 1
                self._record_op(("compact",))

    def offer_at(self, payload: Any, timestamp: float) -> bool:
        """Process an arrival stamped ``timestamp`` (non-decreasing)."""
        timestamp = float(timestamp)
        if timestamp < self.now:
            raise ValueError(
                f"timestamps must be non-decreasing: {timestamp} < {self.now}"
            )
        delta = timestamp - self.now
        self.now = timestamp
        self.t += 1
        self.offers += 1
        self._run_decay(delta)
        if self.is_full:
            victim = int(self.rng.integers(len(self._payloads)))
            self._replace_at(victim, payload)
            self._timestamps[victim] = timestamp
        else:
            self._append(payload)
            self._timestamps.append(timestamp)
        return True

    def offer(self, payload: Any) -> bool:
        """Unit-spaced arrivals (timestamp advances by 1 per offer)."""
        return self.offer_at(payload, self.now + 1.0)

    def offer_many_at(
        self, payloads: Iterable[Any], timestamps: Iterable[float]
    ) -> int:
        """Batched :meth:`offer_at`: one block, one bulk randomness draw.

        Statistically equivalent to offering point by point — the Poisson
        decay-round counts for every inter-arrival gap, the ejection-gate
        coins, and the victim positions are all pre-drawn in bulk, and the
        per-point work collapses to plain list operations. Timestamps must
        be non-decreasing and start at or after :attr:`now`. Returns the
        stored count (every arrival is stored; see :meth:`extend`).
        """
        block = (
            payloads
            if isinstance(payloads, (list, tuple))
            else list(payloads)
        )
        if not block:
            return 0
        stamps = np.asarray(list(timestamps), dtype=np.float64)
        if stamps.shape != (len(block),):
            raise ValueError(
                f"need one timestamp per payload: {len(block)} payloads, "
                f"{stamps.size} timestamps"
            )
        if stamps[0] < self.now or np.any(np.diff(stamps) < 0.0):
            raise ValueError("timestamps must be non-decreasing")
        self._begin_batch_log()
        try:
            self._offer_block_at(block, stamps)
        finally:
            self._end_batch_log()
        return len(block)

    def _offer_block(self, block: List[Any]) -> int:
        """Unit-spaced batch ingestion (timestamp advances by 1 per point)."""
        stamps = self.now + np.arange(1, len(block) + 1, dtype=np.float64)
        self._offer_block_at(block, stamps)
        return len(block)

    def _offer_block_at(self, block: List[Any], stamps: np.ndarray) -> None:
        """Shared batched core: pre-drawn randomness, per-point list ops."""
        deltas = np.diff(stamps, prepend=self.now)
        rounds = self.rng.poisson(self.lam_time * deltas * self.capacity)
        total_rounds = int(rounds.sum())
        gate_u = self.rng.random(total_rounds)
        round_victim_u = self.rng.random(total_rounds)
        insert_victim_u = self.rng.random(len(block))
        payloads = self._payloads
        arrivals = self._arrivals
        timestamps = self._timestamps
        ops = self._ops
        n = self.capacity
        t = self.t
        insertions = self.insertions
        ejections = self.ejections
        cursor = 0  # position in the pre-drawn per-round arrays
        compacted = False
        for k, payload in enumerate(block):
            t += 1
            remaining = int(rounds[k])
            while remaining:
                size = len(payloads)
                if size == 0:
                    cursor += remaining  # unused draws are discarded
                    break
                if gate_u[cursor] < size / n:
                    victim = int(round_victim_u[cursor] * size)
                    payloads[victim] = payloads[-1]
                    arrivals[victim] = arrivals[-1]
                    timestamps[victim] = timestamps[-1]
                    payloads.pop()
                    arrivals.pop()
                    timestamps.pop()
                    ejections += 1
                    if not compacted:
                        ops.append(("compact",))
                        compacted = True
                cursor += 1
                remaining -= 1
            size = len(payloads)
            if size >= n:
                victim = int(insert_victim_u[k] * size)
                arrivals[victim] = t
                payloads[victim] = payload
                timestamps[victim] = float(stamps[k])
                insertions += 1
                ejections += 1
                ops.append(("replace", victim))
            else:
                payloads.append(payload)
                arrivals.append(t)
                timestamps.append(float(stamps[k]))
                insertions += 1
                ops.append(("append", size))
        self.t = t
        self.offers += len(block)
        self.insertions = insertions
        self.ejections = ejections
        self.now = float(stamps[-1])

    def timestamps(self) -> np.ndarray:
        """Wall-clock timestamps of the residents."""
        return np.asarray(self._timestamps, dtype=np.float64)

    def time_ages(self) -> np.ndarray:
        """Per-resident elapsed time ``now - timestamp``."""
        return self.now - self.timestamps()

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Arrival-index-only models are insufficient here (the design is
        timestamp-driven); use :meth:`inclusion_probability_at` with both
        coordinates."""
        raise NotImplementedError(
            "TimestampedExponentialReservoir models inclusion by "
            "(timestamp, arrival index); use inclusion_probability_at"
        )

    def inclusion_probability_at(
        self, timestamp: float, arrival_index: Optional[int] = None
    ) -> float:
        """The hybrid model (*) from the module docstring.

        ``exp(-lam_time (now - timestamp))`` times, when ``arrival_index``
        is given, the count factor ``(1 - 1/n)^(t - arrival_index)`` from
        replacement pressure. Omitting ``arrival_index`` returns the pure
        time component (valid when arrivals are sparse,
        ``rho << n * lam_time``).
        """
        timestamp = float(timestamp)
        if timestamp > self.now:
            raise ValueError(
                f"timestamp {timestamp} is in the future (now={self.now})"
            )
        p = math.exp(-self.lam_time * (self.now - timestamp))
        if arrival_index is not None:
            if not 1 <= arrival_index <= self.t:
                raise ValueError(
                    f"require 1 <= arrival_index <= {self.t}, got "
                    f"{arrival_index}"
                )
            p *= (1.0 - 1.0 / self.capacity) ** (self.t - arrival_index)
        return p

    def inclusion_probabilities_at(
        self,
        timestamps: np.ndarray,
        arrival_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`inclusion_probability_at`."""
        stamps = np.asarray(timestamps, dtype=np.float64)
        if np.any(stamps > self.now):
            raise ValueError("timestamps must not exceed now")
        p = np.exp(-self.lam_time * (self.now - stamps))
        if arrival_indices is not None:
            r = np.asarray(arrival_indices, dtype=np.float64)
            if np.any(r < 1) or np.any(r > self.t):
                raise ValueError("require 1 <= arrival_index <= t")
            p = p * (1.0 - 1.0 / self.capacity) ** (self.t - r)
        return p
