"""Unbiased reservoir sampling — the paper's baseline (reference [16]).

Two implementations of classic uniform reservoir maintenance:

* :class:`UnbiasedReservoir` — Vitter's Algorithm R exactly as described in
  Section 2 of the paper: the first ``n`` points initialize the reservoir;
  the ``(t+1)``-th point is inserted with probability ``n/(t+1)``, replacing
  a uniformly random resident. Property 2.1: after ``t`` points every stream
  point is resident with probability ``n/t``.
* :class:`SkipUnbiasedReservoir` — the same sampling distribution with
  Vitter's Algorithm X skip optimization: instead of one random draw per
  arrival, it draws the *gap* until the next accepted record, making the
  per-point cost on long streams close to an integer compare. Used in the
  throughput ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike


def _uniform_inclusion(capacity: int, r: np.ndarray, t: int) -> np.ndarray:
    """Vectorized ``min(1, n/t)`` shared by both unbiased samplers."""
    r = np.asarray(r, dtype=np.float64)
    if np.any(r < 1) or np.any(r > t):
        raise ValueError("require 1 <= r <= t")
    return np.full(r.shape, min(1.0, capacity / t))

__all__ = ["UnbiasedReservoir", "SkipUnbiasedReservoir"]


class UnbiasedReservoir(ReservoirSampler):
    """Vitter's Algorithm R: a uniform sample of the whole stream."""

    def offer(self, payload: Any) -> bool:
        """Algorithm R step: accept with probability ``n/t``, uniform victim."""
        self.t += 1
        self.offers += 1
        if len(self._payloads) < self.capacity:
            self._append(payload)
            return True
        if self.rng.random() < self.capacity / self.t:
            self._replace_random(payload)
            return True
        return False

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Property 2.1: ``p(r, t) = min(1, n / t)`` — independent of ``r``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return min(1.0, self.capacity / t)

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Property 2.1 model."""
        t = self.t if t is None else int(t)
        return _uniform_inclusion(self.capacity, r, t)


class SkipUnbiasedReservoir(ReservoirSampler):
    """Algorithm R distribution with Algorithm X geometric-skip acceptance.

    Once the reservoir is full, the number of stream points to *skip* before
    the next replacement is drawn directly (by sequential inversion of the
    skip distribution, Vitter 1985, Algorithm X), so rejected points cost no
    random draws at all. The resident-replacement choice is unchanged, so
    the resulting sample distribution is identical to Algorithm R.
    """

    def __init__(self, capacity: int, rng: RngLike = None) -> None:
        super().__init__(capacity, rng)
        self._skip = -1  # <0 means "not yet computed"

    def _draw_skip(self) -> int:
        """Draw the gap until the next accepted record (Algorithm X).

        Sequential search: find the smallest ``s >= 0`` with
        ``prod_{j=1..s} (t + j - n) / (t + j) <= u`` for uniform ``u``; the
        product is the probability that the next ``s`` records are all
        rejected.
        """
        n = self.capacity
        t = self.t
        u = self.rng.random()
        s = 0
        quot = (t + 1 - n) / (t + 1)
        while quot > u:
            s += 1
            t += 1
            quot *= (t + 1 - n) / (t + 1)
        return s

    def offer(self, payload: Any) -> bool:
        """Algorithm R distribution via pre-drawn geometric skips."""
        self.t += 1
        self.offers += 1
        if len(self._payloads) < self.capacity:
            self._append(payload)
            return True
        if self._skip < 0:
            self._skip = self._draw_skip()
        if self._skip == 0:
            self._replace_random(payload)
            self._skip = -1
            return True
        self._skip -= 1
        return False

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Identical to Algorithm R: ``min(1, n / t)``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return min(1.0, self.capacity / t)

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Property 2.1 model."""
        t = self.t if t is None else int(t)
        return _uniform_inclusion(self.capacity, r, t)
