"""Unbiased reservoir sampling — the paper's baseline (reference [16]).

Two implementations of classic uniform reservoir maintenance:

* :class:`UnbiasedReservoir` — Vitter's Algorithm R exactly as described in
  Section 2 of the paper: the first ``n`` points initialize the reservoir;
  the ``(t+1)``-th point is inserted with probability ``n/(t+1)``, replacing
  a uniformly random resident. Property 2.1: after ``t`` points every stream
  point is resident with probability ``n/t``.
* :class:`SkipUnbiasedReservoir` — the same sampling distribution with
  Vitter's Algorithm X skip optimization: instead of one random draw per
  arrival, it draws the *gap* until the next accepted record, making the
  per-point cost on long streams close to an integer compare. Used in the
  throughput ablation benchmark.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike


def _uniform_inclusion(capacity: int, r: np.ndarray, t: int) -> np.ndarray:
    """Vectorized ``min(1, n/t)`` shared by both unbiased samplers."""
    r = np.asarray(r, dtype=np.float64)
    if np.any(r < 1) or np.any(r > t):
        raise ValueError("require 1 <= r <= t")
    if t <= 0:
        # Nothing has been offered yet: only the empty query is valid (any
        # concrete r would have failed the range check above), and its
        # answer is the empty vector — not a division by t = 0.
        return np.zeros(r.shape)
    return np.full(r.shape, min(1.0, capacity / t))

__all__ = ["UnbiasedReservoir", "SkipUnbiasedReservoir"]


class UnbiasedReservoir(ReservoirSampler):
    """Vitter's Algorithm R: a uniform sample of the whole stream."""

    def offer(self, payload: Any) -> bool:
        """Algorithm R step: accept with probability ``n/t``, uniform victim."""
        self.t += 1
        self.offers += 1
        if len(self._payloads) < self.capacity:
            self._append(payload)
            return True
        if self.rng.random() < self.capacity / self.t:
            self._replace_random(payload)
            return True
        return False

    def _offer_block(self, block: List[Any]) -> int:
        """Vectorized Algorithm R over a block (same distribution).

        The first ``n`` points append deterministically; for the rest the
        block's acceptance coins (``u < n/t``) and victim slots are drawn
        in bulk, and per slot only the last accepted writer is
        materialized.
        """
        total = len(block)
        idx = 0
        while idx < total and len(self._payloads) < self.capacity:
            self.t += 1
            self.offers += 1
            self._append(block[idx])
            idx += 1
        stored = idx
        b = total - idx
        if b == 0:
            return stored
        n = self.capacity
        t0 = self.t
        u = self.rng.random(b)
        accepted = np.nonzero(u * (t0 + np.arange(1, b + 1)) < n)[0]
        m = len(accepted)
        if m:
            victims = self.rng.integers(0, n, size=m)
            slots, rev_pos = np.unique(victims[::-1], return_index=True)
            writers = accepted[m - 1 - rev_pos]
            for slot, w in zip(slots.tolist(), writers.tolist()):
                self._payloads[slot] = block[idx + w]
                self._arrivals[slot] = t0 + w + 1
                self._ops.append(("replace", slot))
            self.insertions += m
            self.ejections += m
        self.t = t0 + b
        self.offers += b
        return stored + m

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Property 2.1: ``p(r, t) = min(1, n / t)`` — independent of ``r``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return min(1.0, self.capacity / t)

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Property 2.1 model."""
        t = self.t if t is None else int(t)
        return _uniform_inclusion(self.capacity, r, t)


class SkipUnbiasedReservoir(ReservoirSampler):
    """Algorithm R distribution with Algorithm X geometric-skip acceptance.

    Once the reservoir is full, the number of stream points to *skip* before
    the next replacement is drawn directly (by sequential inversion of the
    skip distribution, Vitter 1985, Algorithm X), so rejected points cost no
    random draws at all. The resident-replacement choice is unchanged, so
    the resulting sample distribution is identical to Algorithm R.
    """

    def __init__(self, capacity: int, rng: RngLike = None) -> None:
        super().__init__(capacity, rng)
        self._skip = -1  # <0 means "not yet computed"

    def _extra_state(self) -> dict:
        return {"skip": self._skip}

    def _restore_extra(self, state: dict) -> None:
        self._skip = int(state["skip"])

    def _draw_skip(self, t: Optional[int] = None) -> int:
        """Draw the gap until the next accepted record (Algorithm X).

        ``t`` is the arrival index of the *current* (not yet decided)
        record, defaulting to ``self.t`` — which ``offer`` has already
        incremented to name this arrival. Sequential search: find the
        smallest ``s >= 0`` with
        ``prod_{j=0..s} (t + j - n) / (t + j) <= u`` for uniform ``u``; the
        product is the probability that records ``t .. t+s`` are all
        rejected, so the returned gap accepts record ``t + s`` (``s = 0``
        accepts the current one with the correct probability ``n/t``).
        """
        n = self.capacity
        t = self.t if t is None else int(t)
        u = self.rng.random()
        s = 0
        quot = (t - n) / t
        while quot > u:
            s += 1
            t += 1
            quot *= (t - n) / t
        return s

    def offer(self, payload: Any) -> bool:
        """Algorithm R distribution via pre-drawn geometric skips."""
        self.t += 1
        self.offers += 1
        if len(self._payloads) < self.capacity:
            self._append(payload)
            return True
        if self._skip < 0:
            self._skip = self._draw_skip()
        if self._skip == 0:
            self._replace_random(payload)
            self._skip = -1
            return True
        self._skip -= 1
        return False

    def _offer_block(self, block: List[Any]) -> int:
        """Block skip-sampling: jump straight between accepted records.

        Instead of examining every arrival, repeatedly draw the gap to the
        next acceptance and land on it directly; a gap extending past the
        block end is carried over in ``self._skip`` so interleaving
        per-item and batched ingestion stays distribution-exact. Work is
        O(accepted) ≈ ``n ln((t+B)/t)`` per block, not O(B).
        """
        total = len(block)
        idx = 0
        while idx < total and len(self._payloads) < self.capacity:
            self.t += 1
            self.offers += 1
            self._append(block[idx])
            idx += 1
        stored = idx
        t0 = self.t  # arrivals fully processed before the sub-block
        b = total - idx
        pos = 0  # next unexamined sub-block position (arrival t0 + pos + 1)
        while pos < b:
            if self._skip < 0:
                self._skip = self._draw_skip(t0 + pos + 1)
            if pos + self._skip < b:
                pos += self._skip
                slot = int(self.rng.integers(len(self._payloads)))
                self._payloads[slot] = block[idx + pos]
                self._arrivals[slot] = t0 + pos + 1
                self._ops.append(("replace", slot))
                self.insertions += 1
                self.ejections += 1
                stored += 1
                self._skip = -1
                pos += 1
            else:
                self._skip -= b - pos
                pos = b
        self.t = t0 + b
        self.offers += b
        return stored

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Identical to Algorithm R: ``min(1, n / t)``."""
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return min(1.0, self.capacity / t)

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Property 2.1 model."""
        t = self.t if t is None else int(t)
        return _uniform_inclusion(self.capacity, r, t)
