"""Variable reservoir sampling — fast fill under space constraints.

Algorithm 3.1 with a small ``p_in`` takes ``O(n log n / p_in)`` arrivals to
fill (Theorem 3.2): for the paper's Figure 1 parameters the reservoir is
still not full after the *entire* half-million-point stream. Variable
reservoir sampling fixes the startup without changing the sampled
distribution:

* Start with ``p_in = 1`` and a *fictitious* reservoir of size
  ``p_in / lambda`` (only ``n_max`` slots physically exist). The ejection
  coin ``F(t)`` is evaluated against the fictitious size, so early on almost
  every arrival simply appends and the true reservoir fills after roughly
  ``n_max`` points.
* Whenever the physical limit ``n_max`` is reached (and ``p_in`` is still
  above the target ``n_max * lambda``), multiply ``p_in`` by a factor ``q``
  and eject a uniformly random ``(1 - q)`` fraction of residents.
  Theorem 3.3 guarantees the mixed population still satisfies the bias
  proportionality ``p(r, t) ∝ p_in * exp(-lambda (t - r))``.
* The recommended schedule ``q = 1 - 1/n_max`` ejects exactly one point per
  phase, keeping the reservoir within one point of full at all times.

Why the distribution is preserved: in every phase the per-resident ejection
hazard per arrival is ``p_in * F(t) / size = p_in / (p_in/lambda) =
lambda`` — *independent of the phase* — and each phase transition is a
uniform thinning that rescales every resident's inclusion probability by the
same ``q``. Hence retention always decays at rate ``lambda`` and the
proportionality constant tracks the current ``p_in``.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.bias import ExponentialBias
from repro.core.reservoir import ReservoirSampler
from repro.utils.rng import RngLike

__all__ = ["VariableReservoir"]


class VariableReservoir(ReservoirSampler):
    """Theorem 3.3 variable-``p_in`` biased sampler.

    Parameters
    ----------
    lam:
        Target bias rate ``lambda``.
    capacity:
        True (physical) reservoir size ``n_max``; must not exceed the
        natural size ``1/lambda`` (otherwise use
        :class:`~repro.core.biased.ExponentialReservoir`).
    q:
        Per-phase ``p_in`` reduction factor in ``(0, 1)``. Defaults to the
        paper's recommendation ``1 - 1/n_max`` (eject exactly one point per
        phase).
    rng:
        Seed or generator.

    Attributes
    ----------
    p_in:
        Current insertion probability; decays from 1.0 to the target
        ``n_max * lambda`` over the startup phases, then stays fixed.
    phase_history:
        ``(t, p_in)`` pairs recorded at each phase transition, for
        diagnostics and the Figure 1 experiment.
    """

    exponential_design = True

    def __init__(
        self,
        lam: float,
        capacity: int,
        q: Optional[float] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(capacity, rng)
        lam = float(lam)
        if lam <= 0.0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        target = self.capacity * lam
        if target > 1.0 + 1e-12:
            raise ValueError(
                f"capacity {self.capacity} exceeds the natural size "
                f"1/lambda = {1.0 / lam:.6g}; space is not constrained"
            )
        if q is None:
            # Paper default: eject exactly one point per phase. Degenerate
            # at capacity 1 (q would be 0), where halving is the only
            # sensible schedule.
            q = 1.0 - 1.0 / self.capacity if self.capacity > 1 else 0.5
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        self.lam = lam
        self.q = float(q)
        self.target_p_in = min(1.0, target)
        self.p_in = 1.0
        self.bias = ExponentialBias(lam)
        self.phase_history: List[Tuple[int, float]] = [(0, 1.0)]

    @property
    def fictitious_capacity(self) -> float:
        """Size of the pretend reservoir, ``p_in / lambda``."""
        return self.p_in / self.lam

    @property
    def fictitious_fill_fraction(self) -> float:
        """``F(t)`` evaluated against the fictitious capacity."""
        return min(1.0, self.size / self.fictitious_capacity)

    def offer(self, payload: Any) -> bool:
        """One arrival: Algorithm 3.1 step against the fictitious reservoir,
        then a phase transition if the physical limit was hit."""
        fill = self.fictitious_fill_fraction  # F(t) before this arrival
        self.t += 1
        self.offers += 1
        accepted = self.rng.random() < self.p_in
        if accepted:
            if self.is_full or self.rng.random() < fill:
                self._replace_random(payload)
            else:
                self._append(payload)
        if self.is_full and self.p_in > self.target_p_in:
            self._reduce_phase()
        return accepted

    def _reduce_phase(self) -> None:
        """Shrink ``p_in`` by ``q`` (clamped at the target) and thin the
        residents by the same fraction, per Theorem 3.3."""
        new_p = max(self.target_p_in, self.q * self.p_in)
        fraction_out = 1.0 - new_p / self.p_in
        self._eject_random(round(self.size * fraction_out))
        self.p_in = new_p
        self.phase_history.append((self.t, self.p_in))

    def _extra_state(self) -> dict:
        return {
            "lam": self.lam,
            "q": self.q,
            "p_in": self.p_in,
            "phase_history": [list(pair) for pair in self.phase_history],
        }

    def _restore_extra(self, state: dict) -> None:
        self.p_in = float(state["p_in"])
        self.phase_history = [
            (int(when), float(value)) for when, value in state["phase_history"]
        ]

    @classmethod
    def _construct_from_state(cls, state: dict) -> "VariableReservoir":
        return cls(lam=state["lam"], capacity=state["capacity"], q=state["q"])

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Theorem 3.3 model: ``p(r, t) = p_in(now) * exp(-lambda (t - r))``.

        Valid for estimation at the *current* stream position (the
        proportionality constant is the current ``p_in``); querying a past
        ``t`` during the startup phases would need the ``p_in`` in force
        then, which is recoverable from :attr:`phase_history`.
        """
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        return self.p_in * math.exp(-self.lam * (t - r))

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized Theorem 3.3 model (current ``p_in``)."""
        t = self.t if t is None else int(t)
        r = np.asarray(r, dtype=np.float64)
        if np.any(r < 1) or np.any(r > t):
            raise ValueError("require 1 <= r <= t")
        return self.p_in * np.exp(-self.lam * (t - r))

    def p_in_at(self, t: int) -> float:
        """Insertion probability that was in force at stream position ``t``."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        current = 1.0
        for when, value in self.phase_history:
            if when > t:
                break
            current = value
        return current
