"""Figure-reproduction experiments (one module per paper figure).

Each module exposes ``run(...) -> ExperimentResult`` with defaults sized
for minutes-scale benchmark runs; pass the paper-scale lengths noted in
each docstring to match the original plots' x-ranges. ``ALL_EXPERIMENTS``
maps experiment ids to their run callables for harness iteration.
"""

from repro.experiments import (
    fig1_fill,
    fig2_sum_intrusion,
    fig3_sum_synthetic,
    fig4_count_intrusion,
    fig5_range_synthetic,
    fig6_progression,
    fig7_classify_intrusion,
    fig8_classify_synthetic,
    fig9_scatter,
)
from repro.experiments.runner import ExperimentResult, render_table

ALL_EXPERIMENTS = {
    "fig1": fig1_fill.run,
    "fig2": fig2_sum_intrusion.run,
    "fig3": fig3_sum_synthetic.run,
    "fig4": fig4_count_intrusion.run,
    "fig5": fig5_range_synthetic.run,
    "fig6": fig6_progression.run,
    "fig7": fig7_classify_intrusion.run,
    "fig8": fig8_classify_synthetic.run,
    "fig9": fig9_scatter.run,
}

__all__ = ["ExperimentResult", "render_table", "ALL_EXPERIMENTS"]
