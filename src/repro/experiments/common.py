"""Shared machinery for the figure-reproduction experiments.

Reconstructed experiment constants
----------------------------------
The OCR'd paper text drops most digits ("a reservoir with ___ data points,
and lambda = __e-5"), so the constants used here are reconstructed from the
claims that survive:

* Figure 1: "after processing the entire stream of 494,021 points the
  reservoir ... contains 986 data points" matches the expected fill
  ``n (1 - exp(-p_in t / n)) = 1000 (1 - e^{-4.94}) = 992.8`` for
  ``n_max = 1000, lambda = 1e-5`` (so ``p_in = 0.01``) — those are the
  Figure 1 constants.
* Query and mining experiments: "a reservoir with 1000 data points and
  lambda = 1e-4". Because ``1000 < 1/lambda = 10,000`` this is the
  *space-constrained* regime, so the biased sampler in these experiments
  is Algorithm 3.1 with ``p_in = n * lambda = 0.1``.

Both reservoirs in every comparison have exactly the same capacity, per
Section 5.2 ("we used a reservoir of exactly the same size in order to
maintain the parity of the two schemes").
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import (
    ReservoirSampler,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
)
from repro.queries import (
    LinearQuery,
    QueryEstimator,
    RatioQuery,
    StreamHistory,
    nan_penalized_error,
)
from repro.experiments.runner import run_seed_trials
from repro.streams.point import StreamPoint
from repro.utils.rng import spawn_generators

__all__ = [
    "QUERY_CAPACITY",
    "QUERY_LAMBDA",
    "DEFAULT_SEEDS",
    "DRIVE_BATCH_SIZE",
    "make_sampler_pair",
    "drive",
    "horizon_error_rows",
    "progression_error_rows",
    "horizon_win_notes",
]

# Reconstructed paper constants for the query/mining experiments.
QUERY_CAPACITY = 1000
QUERY_LAMBDA = 1e-4
DEFAULT_SEEDS: Tuple[int, ...] = (101, 202, 303)

#: Default ingestion block size for :func:`drive`. Big enough that the
#: samplers' `offer_many` fast paths amortize their bulk randomness draws,
#: small enough that checkpoint splitting stays cheap.
DRIVE_BATCH_SIZE = 1024

Query = Union[LinearQuery, RatioQuery]


def make_sampler_pair(
    capacity: int, lam: float, seed: int
) -> Dict[str, ReservoirSampler]:
    """The paper's head-to-head pair: biased vs unbiased at equal size.

    ``capacity < 1/lam`` selects the space-constrained Algorithm 3.1 (the
    regime of the paper's query/mining experiments); ``capacity == 1/lam``
    degenerates to Algorithm 2.1 behaviour (``p_in = 1``).
    """
    rngs = spawn_generators(seed, 2)
    return {
        "biased": SpaceConstrainedReservoir(
            lam=lam, capacity=capacity, rng=rngs[0]
        ),
        "unbiased": UnbiasedReservoir(capacity, rng=rngs[1]),
    }


def drive(
    stream: Iterable[StreamPoint],
    samplers: Dict[str, ReservoirSampler],
    history: Optional[StreamHistory] = None,
    checkpoints: Optional[Sequence[int]] = None,
    on_checkpoint: Optional[Callable[[int], None]] = None,
    batch_size: Optional[int] = DRIVE_BATCH_SIZE,
) -> int:
    """Feed every stream point to all samplers (and the history oracle).

    Points are handed to the samplers in blocks of up to ``batch_size``
    through :meth:`~repro.core.reservoir.ReservoirSampler.offer_many`, so
    samplers with vectorized fast paths ingest at the block rate. Blocks
    are split at every checkpoint, so ``on_checkpoint(t)`` still fires
    immediately after the ``t``-th point has been processed (for each ``t``
    in ``checkpoints``, ascending) with every sampler exactly at position
    ``t``. Pass ``batch_size=None`` (or ``1``) to force the per-item
    ``offer`` path — useful when a run must consume the exact same random
    sequence as a hand-written offer loop. Returns the number of points
    processed.
    """
    count = 0
    sampler_list = list(samplers.values())
    if batch_size is None or batch_size <= 1:
        checkpoint_set = set(checkpoints or ())
        for point in stream:
            if history is not None:
                history.observe(point)
            for sampler in sampler_list:
                sampler.offer(point)
            count += 1
            if count in checkpoint_set and on_checkpoint is not None:
                on_checkpoint(count)
        return count
    remaining_checkpoints = iter(sorted(set(checkpoints or ())))
    next_checkpoint = next(remaining_checkpoints, None)
    pending: List[StreamPoint] = []
    for point in stream:
        if history is not None:
            history.observe(point)
        pending.append(point)
        count += 1
        at_checkpoint = next_checkpoint == count
        if at_checkpoint or len(pending) >= batch_size:
            for sampler in sampler_list:
                sampler.offer_many(pending)
            pending = []
            if at_checkpoint:
                if on_checkpoint is not None:
                    on_checkpoint(count)
                next_checkpoint = next(remaining_checkpoints, None)
    if pending:
        for sampler in sampler_list:
            sampler.offer_many(pending)
    return count


def _error_at(
    history: StreamHistory,
    sampler: ReservoirSampler,
    query: Query,
    t: Optional[int] = None,
) -> Tuple[float, int]:
    """(nan-penalized average absolute error, relevant support) of one
    sampler on one query."""
    truth = history.evaluate(query, t)
    result = QueryEstimator(sampler).estimate(query, t)
    return (
        nan_penalized_error(truth, result.estimate),
        result.sample_support,
    )


def horizon_error_rows(
    stream_factory: Callable[[int], Iterable[StreamPoint]],
    query_for_horizon: Callable[[int], Query],
    horizons: Sequence[int],
    dimensions: int,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """The Figure 2-5 template: error versus user-defined horizon.

    For each seed, generate the stream, maintain the biased/unbiased pair
    and the exact oracle, then at stream end evaluate the query per
    horizon. Rows carry seed-averaged errors and mean relevant supports.

    Each seed's trial is a pure function of that seed, so ``jobs > 1``
    fans the seeds out over worker processes via
    :func:`~repro.experiments.runner.run_seed_trials` without changing
    any reported number.
    """

    def trial(seed: int) -> List[Tuple[float, float, float, float]]:
        history = StreamHistory(dimensions)
        samplers = make_sampler_pair(capacity, lam, seed)
        drive(stream_factory(seed), samplers, history)
        out = []
        for h in horizons:
            query = query_for_horizon(h)
            err_b, sup_b = _error_at(history, samplers["biased"], query)
            err_u, sup_u = _error_at(history, samplers["unbiased"], query)
            out.append((err_b, err_u, float(sup_b), float(sup_u)))
        return out

    per_seed = run_seed_trials(trial, seeds, jobs=jobs)
    rows = []
    for i, h in enumerate(horizons):
        cells = np.array([result[i] for result in per_seed])
        rows.append(
            {
                "horizon": h,
                "biased_error": float(cells[:, 0].mean()),
                "unbiased_error": float(cells[:, 1].mean()),
                "biased_support": float(cells[:, 2].mean()),
                "unbiased_support": float(cells[:, 3].mean()),
            }
        )
    return rows


def progression_error_rows(
    stream_factory: Callable[[int], Iterable[StreamPoint]],
    query_for_horizon: Callable[[int], Query],
    horizon: int,
    checkpoints: Sequence[int],
    dimensions: int,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """The Figure 6 template: fixed-horizon error versus stream progression.

    Seeds fan out across ``jobs`` worker processes exactly as in
    :func:`horizon_error_rows` (results independent of ``jobs``).
    """
    query = query_for_horizon(horizon)

    def trial(seed: int) -> Dict[int, Tuple[float, float]]:
        history = StreamHistory(dimensions)
        samplers = make_sampler_pair(capacity, lam, seed)
        errors: Dict[int, Tuple[float, float]] = {}

        def record(t: int) -> None:
            err_b, _ = _error_at(history, samplers["biased"], query, t)
            err_u, _ = _error_at(history, samplers["unbiased"], query, t)
            errors[t] = (err_b, err_u)

        drive(
            stream_factory(seed),
            samplers,
            history,
            checkpoints=checkpoints,
            on_checkpoint=record,
        )
        return errors

    per_seed = run_seed_trials(trial, seeds, jobs=jobs)
    rows = []
    for t in checkpoints:
        cells = np.array([result[t] for result in per_seed])
        rows.append(
            {
                "t": t,
                "biased_error": float(cells[:, 0].mean()),
                "unbiased_error": float(cells[:, 1].mean()),
            }
        )
    return rows

def horizon_win_notes(rows: List[Dict[str, float]]) -> List[str]:
    """Summarize who wins where on a horizon sweep — the qualitative claims
    every Figure 2-5 reproduction must check."""
    notes = []
    small = rows[0]
    large = rows[-1]
    if small["biased_error"] < small["unbiased_error"]:
        ratio = small["unbiased_error"] / max(small["biased_error"], 1e-12)
        notes.append(
            f"smallest horizon ({small['horizon']}): biased wins by "
            f"{ratio:.1f}x (paper: unbiased error 'very high' here)"
        )
    else:
        notes.append(
            f"smallest horizon ({small['horizon']}): unbiased unexpectedly "
            "won — check parameters"
        )
    rel_gap = abs(large["biased_error"] - large["unbiased_error"]) / max(
        large["biased_error"], large["unbiased_error"], 1e-12
    )
    notes.append(
        f"largest horizon ({large['horizon']}): schemes within "
        f"{rel_gap:.0%} of each other (paper: 'almost competitive')"
    )
    return notes
