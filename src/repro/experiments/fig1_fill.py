"""Figure 1 — fractional reservoir utilization, variable vs fixed sampling.

Setup (reconstructed constants, see :mod:`repro.experiments.common`):
network-intrusion stream, true reservoir ``n_max = 1000``,
``lambda = 1e-5`` (fixed scheme insertion probability ``p_in = 0.01``),
variable scheme reduction ``q = 1 - 1/n_max`` (eject exactly one point per
phase).

Paper claims to match:

* the variable scheme fills the 1000-point reservoir after ~1000 points and
  stays (within one point of) full thereafter;
* the fixed scheme lags severely: ~40% full at 50k points, ~63% at 100k,
  and even after the full 494,021-point stream only ~986/1000 — never full;
* the measured fixed-scheme curve should track the closed-form expectation
  ``n (1 - (1 - p_in/n)^t)`` from :mod:`repro.core.theory`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import SpaceConstrainedReservoir, VariableReservoir
from repro.core.theory import expected_fill_trajectory
from repro.experiments.runner import ExperimentResult
from repro.streams import IntrusionStream
from repro.utils.rng import spawn_generators

__all__ = ["run"]


def run(
    length: int = 150_000,
    capacity: int = 1000,
    lam: float = 1e-5,
    grid_points: int = 30,
    seed: int = 7,
    extra_checkpoints: Sequence[int] = (),
) -> ExperimentResult:
    """Reproduce Figure 1.

    Parameters
    ----------
    length:
        Stream length (paper: the full 494,021-point intrusion stream; the
        default trims to 150k, which already shows the full contrast —
        pass ``length=494_021`` for paper scale).
    capacity:
        True reservoir size ``n_max``.
    lam:
        Bias rate; the fixed scheme's ``p_in`` is ``capacity * lam``.
    grid_points:
        Number of evenly spaced utilization measurements.
    seed:
        Stream/sampler seed.
    extra_checkpoints:
        Additional measurement positions (e.g. the paper's quoted 10k /
        100k marks) merged into the grid.
    """
    rngs = spawn_generators(seed, 3)
    stream = IntrusionStream(length=length, rng=rngs[0])
    fixed = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=rngs[1])
    variable = VariableReservoir(lam=lam, capacity=capacity, rng=rngs[2])

    step = max(1, length // grid_points)
    checkpoints = sorted(
        set(range(step, length + 1, step)) | set(extra_checkpoints) | {length}
    )
    checkpoint_set = set(checkpoints)

    rows = []
    p_in = capacity * lam
    count = 0
    for point in stream:
        fixed.offer(point)
        variable.offer(point)
        count += 1
        if count in checkpoint_set:
            expected = float(
                expected_fill_trajectory(capacity, p_in, count)
            )
            rows.append(
                {
                    "t": count,
                    "variable_fill": variable.size / capacity,
                    "fixed_fill": fixed.size / capacity,
                    "fixed_fill_expected": expected / capacity,
                }
            )

    # Locate the variable scheme's time-to-full for the headline claim.
    full_at: Optional[int] = None
    for row in rows:
        if row["variable_fill"] >= (capacity - 1) / capacity:
            full_at = row["t"]
            break
    notes = [
        f"variable scheme reached >= {capacity - 1}/{capacity} fill by "
        f"t={full_at} (paper: ~{capacity})",
        f"fixed scheme fill at stream end: {fixed.size}/{capacity} "
        f"(paper at 494k: ~986/1000)",
        f"variable scheme p_in descended to {variable.p_in:.4f} "
        f"(target {variable.target_p_in:.4f}) over "
        f"{len(variable.phase_history) - 1} phases",
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Fractional reservoir utilization: variable vs fixed sampling",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "p_in(fixed)": p_in,
            "seed": seed,
        },
        columns=[
            "t",
            "variable_fill",
            "fixed_fill",
            "fixed_fill_expected",
        ],
        rows=rows,
        notes=notes,
    )
