"""Figure 2 — sum-query accuracy vs user horizon (network-intrusion data).

The paper's "sum query" estimates the per-dimension *average* of the points
in the most recent horizon ``h``; the reported error is the average
absolute error across dimensions. Biased and unbiased reservoirs of the
same size (1000) are compared over a sweep of horizons.

Expected shape: unbiased error is very high at small horizons (only
``n*h/t`` relevant sample points) and decays as the horizon grows; biased
error is low and nearly flat; the curves approach each other (unbiased
slightly ahead) at the largest horizons.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    horizon_error_rows,
    horizon_win_notes,
)
from repro.experiments.runner import ExperimentResult
from repro.queries import average_query
from repro.streams import IntrusionStream

__all__ = ["run"]

DEFAULT_HORIZONS = (500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000)


def run(
    length: int = 200_000,
    horizons: Sequence[int] = DEFAULT_HORIZONS,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 34,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 2 (pass ``length=494_021`` for paper scale)."""
    rows = horizon_error_rows(
        stream_factory=lambda seed: IntrusionStream(
            length=length, dimensions=dimensions, rng=seed
        ),
        query_for_horizon=lambda h: average_query(h, range(dimensions)),
        horizons=list(horizons),
        dimensions=dimensions,
        capacity=capacity,
        lam=lam,
        seeds=seeds,
        jobs=jobs,
    )
    notes = horizon_win_notes(rows)
    return ExperimentResult(
        experiment_id="fig2",
        title="Sum (average) query error vs user horizon, intrusion stream",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "dims": dimensions,
            "seeds": len(seeds),
        },
        columns=[
            "horizon",
            "biased_error",
            "unbiased_error",
            "biased_support",
            "unbiased_support",
        ],
        rows=rows,
        notes=notes,
    )
