"""Figure 3 — sum-query accuracy vs user horizon (synthetic data).

Same protocol as Figure 2 but on the evolving-cluster stream: per-dimension
average over the horizon, average absolute error across the 10 dimensions.
The paper highlights that the biased curve here is almost flat in the
horizon.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    horizon_error_rows,
    horizon_win_notes,
)
from repro.experiments.runner import ExperimentResult
from repro.queries import average_query
from repro.streams import EvolvingClusterStream

__all__ = ["run"]

DEFAULT_HORIZONS = (500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000)


def run(
    length: int = 200_000,
    horizons: Sequence[int] = DEFAULT_HORIZONS,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 10,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 3 (pass ``length=400_000`` for paper scale)."""
    rows = horizon_error_rows(
        stream_factory=lambda seed: EvolvingClusterStream(
            length=length, dimensions=dimensions, rng=seed
        ),
        query_for_horizon=lambda h: average_query(h, range(dimensions)),
        horizons=list(horizons),
        dimensions=dimensions,
        capacity=capacity,
        lam=lam,
        seeds=seeds,
        jobs=jobs,
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Sum (average) query error vs user horizon, synthetic stream",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "dims": dimensions,
            "seeds": len(seeds),
        },
        columns=[
            "horizon",
            "biased_error",
            "unbiased_error",
            "biased_support",
            "unbiased_support",
        ],
        rows=rows,
        notes=horizon_win_notes(rows),
    )
