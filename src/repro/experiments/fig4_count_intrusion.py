"""Figure 4 — count-query (class distribution) accuracy vs horizon.

The class-estimation count query asks for the fractional distribution of
points among the intrusion classes over the most recent horizon; the error
is Equation 21's average absolute error over classes,
``er = sum_i |f_i - f'_i| / l``.

The paper warns this query "shows considerable random variations because of
the skewed nature of the class distributions", but the biased scheme should
consistently beat the unbiased one — the class mixture inside a recent
horizon is dominated by the active attack burst, which an unbiased
(lifetime-mixture) sample misrepresents badly.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    horizon_error_rows,
    horizon_win_notes,
)
from repro.experiments.runner import ExperimentResult
from repro.queries import class_distribution_query
from repro.streams import INTRUSION_CLASSES, IntrusionStream

__all__ = ["run"]

DEFAULT_HORIZONS = (500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000)


def run(
    length: int = 200_000,
    horizons: Sequence[int] = DEFAULT_HORIZONS,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 34,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 4 (pass ``length=494_021`` for paper scale)."""
    n_classes = len(INTRUSION_CLASSES)
    rows = horizon_error_rows(
        stream_factory=lambda seed: IntrusionStream(
            length=length, dimensions=dimensions, rng=seed
        ),
        query_for_horizon=lambda h: class_distribution_query(h, n_classes),
        horizons=list(horizons),
        dimensions=dimensions,
        capacity=capacity,
        lam=lam,
        seeds=seeds,
        jobs=jobs,
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Count query (class distribution) error vs horizon, intrusion",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "classes": n_classes,
            "seeds": len(seeds),
        },
        columns=[
            "horizon",
            "biased_error",
            "unbiased_error",
            "biased_support",
            "unbiased_support",
        ],
        rows=rows,
        notes=horizon_win_notes(rows),
    )
