"""Figure 5 — range-selectivity estimation accuracy vs horizon (synthetic).

The query estimates the *fraction* of points in the horizon whose first two
dimensions fall in a fixed range (here the unit square, where the cluster
centers start). As the clusters drift out of the range, the recent
selectivity diverges from the lifetime selectivity, so the unbiased sample
answers with stale information.

The paper notes the biased error stays robust across horizon lengths while
the unbiased error changes "very suddenly" with increasing horizon.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_SEEDS,
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    horizon_error_rows,
    horizon_win_notes,
)
from repro.experiments.runner import ExperimentResult
from repro.queries import range_selectivity_query
from repro.streams import EvolvingClusterStream

__all__ = ["run"]

DEFAULT_HORIZONS = (500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000)


def run(
    length: int = 200_000,
    horizons: Sequence[int] = DEFAULT_HORIZONS,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 10,
    drift: float = 0.02,
    range_dims: Tuple[int, int] = (0, 1),
    range_low: Tuple[float, float] = (0.0, 0.0),
    range_high: Tuple[float, float] = (1.0, 1.0),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 5 (pass ``length=400_000`` for paper scale).

    ``drift`` defaults below the generator's 0.05 so the clusters wander
    *around* the queried unit square for the whole run instead of escaping
    it (with 0.05 the recent selectivity collapses to exactly 0 midway and
    every estimator is trivially right — a degenerate query).
    """
    rows = horizon_error_rows(
        stream_factory=lambda seed: EvolvingClusterStream(
            length=length, dimensions=dimensions, drift=drift, rng=seed
        ),
        query_for_horizon=lambda h: range_selectivity_query(
            h, range_dims, range_low, range_high
        ),
        horizons=list(horizons),
        dimensions=dimensions,
        capacity=capacity,
        lam=lam,
        seeds=seeds,
        jobs=jobs,
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Range selectivity estimation error vs horizon, synthetic",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "range_dims": range_dims,
            "seeds": len(seeds),
        },
        columns=[
            "horizon",
            "biased_error",
            "unbiased_error",
            "biased_support",
            "unbiased_support",
        ],
        rows=rows,
        notes=horizon_win_notes(rows),
    )
