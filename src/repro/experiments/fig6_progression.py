"""Figure 6 — error with stream progression at a fixed horizon (synthetic).

The sum (average) query with a fixed ``h = 10^4`` horizon is repeated at
checkpoints along the stream. The paper's headline: the unbiased method's
error "deteriorates rapidly" with progression — the reservoir's relevant
fraction is ``h/t`` and shrinks — while the memory-less biased reservoir's
error stays flat, because its composition relative to the present is
time-invariant.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    DEFAULT_SEEDS,
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    progression_error_rows,
)
from repro.experiments.runner import ExperimentResult
from repro.queries import average_query
from repro.streams import EvolvingClusterStream

__all__ = ["run"]


def run(
    length: int = 200_000,
    horizon: int = 10_000,
    n_checkpoints: int = 10,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 10,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    checkpoints: Optional[Sequence[int]] = None,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 6 (pass ``length=400_000`` for paper scale)."""
    if checkpoints is None:
        step = length // n_checkpoints
        checkpoints = [step * i for i in range(1, n_checkpoints + 1)]
    checkpoints = sorted(set(int(c) for c in checkpoints))
    if checkpoints[0] <= horizon:
        # The first checkpoint should already contain a full horizon.
        checkpoints = [c for c in checkpoints if c > horizon] or [horizon * 2]
    rows = progression_error_rows(
        stream_factory=lambda seed: EvolvingClusterStream(
            length=length, dimensions=dimensions, rng=seed
        ),
        query_for_horizon=lambda h: average_query(h, range(dimensions)),
        horizon=horizon,
        checkpoints=checkpoints,
        dimensions=dimensions,
        capacity=capacity,
        lam=lam,
        seeds=seeds,
        jobs=jobs,
    )
    first, last = rows[0], rows[-1]
    growth_u = last["unbiased_error"] / max(first["unbiased_error"], 1e-12)
    growth_b = last["biased_error"] / max(first["biased_error"], 1e-12)
    notes = [
        f"unbiased error grew {growth_u:.1f}x from first to last checkpoint "
        f"(paper: 'deteriorates rapidly')",
        f"biased error grew {growth_b:.1f}x (paper: 'does not deteriorate "
        f"as much')",
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title=f"Sum query error vs stream progression (fixed h={horizon})",
        params={
            "length": length,
            "horizon": horizon,
            "capacity": capacity,
            "lambda": lam,
            "seeds": len(seeds),
        },
        columns=["t", "biased_error", "unbiased_error"],
        rows=rows,
        notes=notes,
    )
