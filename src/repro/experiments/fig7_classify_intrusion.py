"""Figure 7 — classification accuracy with stream progression (intrusion).

A 1-nearest-neighbor classifier backed by a 1000-point reservoir
(``lambda = 1e-4``), evaluated prequentially: each arriving point is
classified against the reservoir before its label is revealed and the
sampling policy runs.

Paper claims: both reservoirs start with similar accuracy; with progression
the unbiased reservoir accumulates stale points and the *relative*
difference grows (non-monotonically, due to the bursty class structure).
"""

from __future__ import annotations

from repro.experiments.common import QUERY_CAPACITY, QUERY_LAMBDA, make_sampler_pair
from repro.experiments.runner import ExperimentResult
from repro.mining import ReservoirKnnClassifier, run_prequential
from repro.streams import IntrusionStream

__all__ = ["run"]


def run(
    length: int = 150_000,
    window: int = 15_000,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 34,
    drift_scale: float = 2e-3,
    k: int = 1,
    seed: int = 11,
) -> ExperimentResult:
    """Reproduce Figure 7 (pass ``length=494_021`` for paper scale).

    ``drift_scale`` is raised above the stream default so the class
    centroids move materially within the default run length — the real
    KDD'99 stream is strongly non-stationary, and without drift the stale
    unbiased reservoir cannot actively mislead the classifier (both curves
    saturate and the figure degenerates).
    """
    stream = IntrusionStream(
        length=length,
        dimensions=dimensions,
        drift_scale=drift_scale,
        rng=seed,
    )
    samplers = make_sampler_pair(capacity, lam, seed)
    classifiers = {
        name: ReservoirKnnClassifier(sampler, k=k)
        for name, sampler in samplers.items()
    }
    results = run_prequential(stream, classifiers, window=window)
    biased = results["biased"]
    unbiased = results["unbiased"]
    rows = [
        {
            "t": t,
            "biased_accuracy": ab,
            "unbiased_accuracy": au,
            "gap": ab - au,
        }
        for t, ab, au in zip(
            biased.checkpoints,
            biased.window_accuracy,
            unbiased.window_accuracy,
        )
    ]
    half = max(1, len(rows) // 2)
    early_gap = sum(r["gap"] for r in rows[:half]) / half
    late_gap = sum(r["gap"] for r in rows[half:]) / max(1, len(rows) - half)
    notes = [
        f"mean accuracy gap (biased - unbiased): early {early_gap:+.4f}, "
        f"late {late_gap:+.4f} (paper: gap grows with progression, "
        "not strictly monotonically)",
        f"lifetime accuracy: biased {biased.final_accuracy:.4f}, "
        f"unbiased {unbiased.final_accuracy:.4f}",
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="1-NN classification accuracy vs progression, intrusion",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "window": window,
            "drift_scale": drift_scale,
            "k": k,
            "seed": seed,
        },
        columns=["t", "biased_accuracy", "unbiased_accuracy", "gap"],
        rows=rows,
        notes=notes,
    )
