"""Figure 8 — classification accuracy with stream progression (synthetic).

The evolving-cluster stream's cluster id is the class label. As the
clusters drift apart the data becomes easier to classify, so the *biased*
reservoir's accuracy rises with progression; the unbiased reservoir keeps
the overlapping early history (plus every cluster's drift trail), whose
stale points sit in wrong-class territory and hold its accuracy down.

Generator calibration: the paper's clusters "overlap considerably"; with
its centers in the unit cube that requires the cluster radius to be of the
same order as the typical inter-center distance (~1.3 in 10-D), so this
experiment sets ``radius = 1.8`` (see EXPERIMENTS.md for the calibration
note — the garbled source text gives radius 0.2 with unspecified
normalization).
"""

from __future__ import annotations

from repro.experiments.common import QUERY_CAPACITY, QUERY_LAMBDA, make_sampler_pair
from repro.experiments.runner import ExperimentResult
from repro.mining import ReservoirKnnClassifier, run_prequential
from repro.streams import EvolvingClusterStream

__all__ = ["run"]


def run(
    length: int = 150_000,
    window: int = 10_000,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 10,
    n_clusters: int = 4,
    radius: float = 1.8,
    drift_every: int = 100,
    k: int = 1,
    seed: int = 13,
) -> ExperimentResult:
    """Reproduce Figure 8 (pass ``length=400_000`` for paper scale)."""
    stream = EvolvingClusterStream(
        length=length,
        n_clusters=n_clusters,
        dimensions=dimensions,
        radius=radius,
        drift_every=drift_every,
        rng=seed,
    )
    samplers = make_sampler_pair(capacity, lam, seed)
    classifiers = {
        name: ReservoirKnnClassifier(sampler, k=k)
        for name, sampler in samplers.items()
    }
    results = run_prequential(stream, classifiers, window=window)
    biased = results["biased"]
    unbiased = results["unbiased"]
    rows = [
        {
            "t": t,
            "biased_accuracy": ab,
            "unbiased_accuracy": au,
            "gap": ab - au,
        }
        for t, ab, au in zip(
            biased.checkpoints,
            biased.window_accuracy,
            unbiased.window_accuracy,
        )
    ]
    rise = rows[-1]["biased_accuracy"] - rows[0]["biased_accuracy"]
    notes = [
        f"biased accuracy rose by {rise:+.4f} over the stream (paper: "
        "accuracy increases as drifting clusters separate)",
        f"biased won {sum(1 for r in rows if r['gap'] > 0)}/{len(rows)} "
        "windows",
        f"lifetime accuracy: biased {biased.final_accuracy:.4f}, "
        f"unbiased {unbiased.final_accuracy:.4f}",
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="1-NN classification accuracy vs progression, synthetic",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "radius": radius,
            "drift_every": drift_every,
            "window": window,
            "seed": seed,
        },
        columns=["t", "biased_accuracy", "unbiased_accuracy", "gap"],
        rows=rows,
        notes=notes,
    )
