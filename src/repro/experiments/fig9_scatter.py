"""Figure 9 — evolution of the reservoir contents (scatter snapshots).

The paper shows six scatter plots: the biased reservoir's first-two-
dimension projection at three points of stream progression (a, b, c) and
the unbiased reservoir's at the same points (d, e, f). The biased panels
track the drifting clusters crisply; the unbiased panels show "diffusion
and mixing" of stale points.

Scatter plots do not diff in a table, so this reproduction reports the
quantitative signature of the same phenomena at each checkpoint:

* ``purity`` — nearest-neighbor label agreement inside the reservoir
  (mixing lowers it);
* ``separation`` — Fisher-style between/within class distance ratio
  (stale drift trails inflate within-class scatter, lowering it);
* ``staleness`` — mean resident age over ``t`` (~0.5 unbiased, ~constant/t
  biased).

Pass ``dump_dir`` to also write the raw 2-D projections as CSV (one file
per panel, ``fig9_{biased|unbiased}_t{checkpoint}.csv``) for plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    drive,
    make_sampler_pair,
)
from repro.experiments.runner import ExperimentResult
from repro.mining import ReservoirSnapshot, snapshot
from repro.streams import EvolvingClusterStream

__all__ = ["run"]


def _dump_projection(
    snap: ReservoirSnapshot, name: str, t: int, dump_dir: Path
) -> None:
    path = dump_dir / f"fig9_{name}_t{t}.csv"
    proj = snap.projection((0, 1))
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "label", "age"])
        for row, label, age in zip(proj, snap.labels, snap.ages):
            writer.writerow([row[0], row[1], int(label), int(age)])


def run(
    length: int = 150_000,
    capacity: int = QUERY_CAPACITY,
    lam: float = QUERY_LAMBDA,
    dimensions: int = 10,
    n_clusters: int = 4,
    radius: float = 1.8,
    drift_every: int = 100,
    checkpoints: Optional[Sequence[int]] = None,
    seed: int = 17,
    dump_dir: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (pass ``length=400_000`` for paper scale)."""
    if checkpoints is None:
        checkpoints = [length // 4, length // 2, length]
    checkpoints = sorted(set(int(c) for c in checkpoints))
    stream = EvolvingClusterStream(
        length=length,
        n_clusters=n_clusters,
        dimensions=dimensions,
        radius=radius,
        drift_every=drift_every,
        rng=seed,
    )
    samplers = make_sampler_pair(capacity, lam, seed)
    dump_path = Path(dump_dir) if dump_dir is not None else None
    if dump_path is not None:
        dump_path.mkdir(parents=True, exist_ok=True)

    rows = []

    def record(t: int) -> None:
        snaps: Dict[str, ReservoirSnapshot] = {
            name: snapshot(sampler) for name, sampler in samplers.items()
        }
        for name, snap in snaps.items():
            rows.append(
                {
                    "t": t,
                    "reservoir": name,
                    "purity": snap.purity,
                    "separation": snap.separation,
                    "staleness": snap.staleness,
                    "size": snap.values.shape[0],
                }
            )
            if dump_path is not None:
                _dump_projection(snap, name, t, dump_path)

    drive(stream, samplers, checkpoints=checkpoints, on_checkpoint=record)

    last_b = [r for r in rows if r["reservoir"] == "biased"][-1]
    last_u = [r for r in rows if r["reservoir"] == "unbiased"][-1]
    notes = [
        f"final purity: biased {last_b['purity']:.3f} vs unbiased "
        f"{last_u['purity']:.3f} (paper: unbiased panels show mixing)",
        f"final separation: biased {last_b['separation']:.2f} vs unbiased "
        f"{last_u['separation']:.2f} (paper: biased clusters drift apart "
        "crisply)",
        f"final staleness: biased {last_b['staleness']:.3f} vs unbiased "
        f"{last_u['staleness']:.3f}",
    ]
    return ExperimentResult(
        experiment_id="fig9",
        title="Reservoir evolution snapshots: mixing metrics per checkpoint",
        params={
            "length": length,
            "capacity": capacity,
            "lambda": lam,
            "radius": radius,
            "checkpoints": list(checkpoints),
            "seed": seed,
        },
        columns=["t", "reservoir", "purity", "separation", "staleness", "size"],
        rows=rows,
        notes=notes,
    )
