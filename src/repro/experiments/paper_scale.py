"""Paper-scale presets for the figure experiments.

The benchmark defaults trim stream lengths so the whole harness runs in
minutes. These presets restore each experiment's x-axis to the scale of
the original figures: the full 494,021-point intrusion stream and the
400,000-point synthetic stream, with horizon sweeps extended to 10^5.
Invoke via ``repro experiment figN --paper-scale`` or pass the kwargs to
``run`` directly.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["PAPER_SCALE", "paper_scale_kwargs"]

INTRUSION_LENGTH = 494_021
SYNTHETIC_LENGTH = 400_000
PAPER_HORIZONS = (1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000)

PAPER_SCALE: Dict[str, Dict[str, Any]] = {
    "fig1": {"length": INTRUSION_LENGTH},
    "fig2": {"length": INTRUSION_LENGTH, "horizons": PAPER_HORIZONS},
    "fig3": {"length": SYNTHETIC_LENGTH, "horizons": PAPER_HORIZONS},
    "fig4": {"length": INTRUSION_LENGTH, "horizons": PAPER_HORIZONS},
    "fig5": {"length": SYNTHETIC_LENGTH, "horizons": PAPER_HORIZONS},
    "fig6": {"length": SYNTHETIC_LENGTH},
    "fig7": {"length": INTRUSION_LENGTH},
    "fig8": {"length": SYNTHETIC_LENGTH},
    "fig9": {"length": SYNTHETIC_LENGTH},
}


def paper_scale_kwargs(figure: str) -> Dict[str, Any]:
    """The ``run()`` keyword overrides that restore paper scale."""
    if figure not in PAPER_SCALE:
        raise KeyError(f"unknown figure {figure!r}")
    return dict(PAPER_SCALE[figure])
