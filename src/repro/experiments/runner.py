"""Shared experiment infrastructure.

Every figure-reproduction module exposes ``run(...) -> ExperimentResult``.
An :class:`ExperimentResult` is a small self-describing table: the series
the paper plots, as rows, with enough metadata to render the ASCII table
the benchmark harness prints and the Markdown block EXPERIMENTS.md embeds.

:func:`run_seed_trials` is the figure harness's trial-level fan-out: the
per-seed replicates of every figure are independent (each trial derives
all its randomness from its own seed via ``SeedSequence`` spawning, the
same contract :mod:`repro.verify` uses), so they parallelize across
worker processes without changing a single number — ``jobs`` only moves
*where* a trial runs, never what it computes, and results come back in
seed order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
)

__all__ = ["ExperimentResult", "render_table", "run_seed_trials"]

T = TypeVar("T")

#: Trial function installed before forking workers. Figure modules hand
#: :func:`run_seed_trials` closures (stream factories, query builders)
#: that are not picklable; with the ``fork`` start method the children
#: inherit this module global instead of unpickling the function.
_TRIAL_FN: Optional[Callable[[int], Any]] = None


def _invoke_trial(seed: int):
    """Top-level pool target: call the installed trial (picklable name)."""
    return _TRIAL_FN(seed)


def run_seed_trials(
    trial: Callable[[int], T],
    seeds: Sequence[int],
    jobs: int = 1,
) -> List[T]:
    """Run ``trial(seed)`` for every seed, optionally across processes.

    ``trial`` must be a pure function of its seed (all randomness derived
    from the seed, no shared mutable state) — every figure trial in
    :mod:`repro.experiments.common` is. Under that contract the results
    are invariant to ``jobs``: the list returned is ``[trial(s) for s in
    seeds]`` exactly, whatever the worker count or scheduling order.

    ``jobs=1`` (or a single seed) runs inline. ``jobs>1`` fans trials out
    over a ``fork``-context pool, which lets non-picklable closures cross
    into the workers; on platforms without ``fork`` the call degrades to
    the inline path rather than failing.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    jobs = min(jobs, len(seeds))
    if jobs <= 1:
        return [trial(seed) for seed in seeds]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return [trial(seed) for seed in seeds]
    global _TRIAL_FN
    previous = _TRIAL_FN
    _TRIAL_FN = trial
    try:
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(_invoke_trial, seeds)
    finally:
        _TRIAL_FN = previous


def _format_cell(value: Any) -> str:
    """Human-friendly formatting: compact floats, raw everything else."""
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    columns: Sequence[str],
    rows: Iterable[Mapping[str, Any]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [
        [_format_cell(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Outcome of one figure reproduction.

    Attributes
    ----------
    experiment_id:
        Short id, e.g. ``"fig2"``.
    title:
        Paper-facing description.
    params:
        The parameters the run used (stream lengths, lambda, seeds, ...).
    columns:
        Ordered column names of the result table.
    rows:
        One dict per table row (x-axis value plus one column per series).
    notes:
        Free-form observations (e.g. which side "wins" where).
    """

    experiment_id: str
    title: str
    params: Dict[str, Any] = field(default_factory=dict)
    columns: List[str] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """ASCII rendering: title, params, table, notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            params = ", ".join(f"{k}={v}" for k, v in self.params.items())
            lines.append(f"params: {params}")
        lines.append(render_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        if self.params:
            params = ", ".join(f"`{k}={v}`" for k, v in self.params.items())
            lines.append(f"Parameters: {params}")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            cells = [_format_cell(row.get(c, "")) for c in self.columns]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

    def series(self, column: str) -> List[Any]:
        """Extract one column as a list (for tests and plots)."""
        if column not in self.columns:
            raise KeyError(f"no column {column!r} in {self.columns}")
        return [row.get(column) for row in self.rows]
