"""Ingestion-throughput measurement: batched vs per-item offers.

The batch API (:meth:`~repro.core.reservoir.ReservoirSampler.offer_many`)
exists for exactly one reason — points/sec. This module is the single
source of truth for measuring that claim, shared by the benchmark suite
(``benchmarks/test_throughput_batch.py``) and the ``repro bench`` CLI
subcommand so both report identical numbers into ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.reservoir import ReservoirSampler

__all__ = [
    "measure_throughput",
    "throughput_report",
    "sharded_throughput_report",
    "durable_throughput_report",
    "query_throughput_report",
    "write_throughput_json",
    "BENCH_JSON_NAME",
]

#: File name (at the repo root) the throughput results are recorded under.
BENCH_JSON_NAME = "BENCH_throughput.json"

PathLike = Union[str, Path]


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Smallest wall-clock time over ``repeats`` runs (noise-robust)."""
    return min(run() for _ in range(repeats))


def measure_throughput(
    make_sampler: Callable[[], ReservoirSampler],
    stream_length: int,
    batch_size: int = 8192,
    repeats: int = 3,
) -> Dict[str, float]:
    """Compare per-item ``offer`` vs chunked ``offer_many`` ingestion.

    Streams ``stream_length`` integer payloads into a fresh sampler from
    ``make_sampler`` for each timed run (best of ``repeats``), once through
    the per-item loop and once through ``offer_many`` in ``batch_size``
    blocks. Returns points/sec for both paths plus their ratio
    (``speedup``); integer payloads keep the measurement about sampler
    overhead, not payload construction.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    points = list(range(stream_length))

    def run_per_item() -> float:
        sampler = make_sampler()
        offer = sampler.offer
        start = time.perf_counter()
        for point in points:
            offer(point)
        return time.perf_counter() - start

    def run_batched() -> float:
        sampler = make_sampler()
        offer_many = sampler.offer_many
        start = time.perf_counter()
        for lo in range(0, stream_length, batch_size):
            offer_many(points[lo : lo + batch_size])
        return time.perf_counter() - start

    per_item_s = _best_of(repeats, run_per_item)
    batched_s = _best_of(repeats, run_batched)
    per_item_pps = stream_length / per_item_s
    batched_pps = stream_length / batched_s
    return {
        "stream_length": stream_length,
        "batch_size": batch_size,
        "per_item_points_per_sec": per_item_pps,
        "batched_points_per_sec": batched_pps,
        "speedup": batched_pps / per_item_pps,
    }


def _default_cases() -> List[Dict[str, Any]]:
    """The benchmark matrix: each fast-path sampler at its acceptance config.

    The headline case is ``ExponentialReservoir`` at ``n=10_000`` over a
    200k-point stream — the configuration the >=5x batch-speedup acceptance
    criterion is stated against.
    """
    from repro.core import (
        ExponentialReservoir,
        SkipUnbiasedReservoir,
        UnbiasedReservoir,
    )

    return [
        {
            "name": "exponential_n10000",
            "sampler": "ExponentialReservoir",
            "make": lambda: ExponentialReservoir(capacity=10_000, rng=7),
            "stream_length": 200_000,
        },
        {
            "name": "unbiased_n10000",
            "sampler": "UnbiasedReservoir",
            "make": lambda: UnbiasedReservoir(10_000, rng=7),
            "stream_length": 200_000,
        },
        {
            "name": "skip_unbiased_n10000",
            "sampler": "SkipUnbiasedReservoir",
            "make": lambda: SkipUnbiasedReservoir(10_000, rng=7),
            "stream_length": 200_000,
        },
    ]


def throughput_report(
    batch_size: int = 8192, repeats: int = 3
) -> Dict[str, Any]:
    """Run the full benchmark matrix; returns the ``BENCH_throughput.json``
    payload (machine metadata plus one result record per case)."""
    results = []
    for case in _default_cases():
        measured = measure_throughput(
            case["make"],
            case["stream_length"],
            batch_size=batch_size,
            repeats=repeats,
        )
        results.append({"name": case["name"], "sampler": case["sampler"], **measured})
    return {
        "benchmark": "offer_many batch ingestion vs per-item offer",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "results": results,
    }


def sharded_throughput_report(
    capacity: int = 10_000,
    workers: int = 4,
    stream_length: int = 200_000,
    batch_size: int = 8192,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Sharded-engine throughput vs the serial ``offer_many`` path.

    Streams the same integer stream through three ingestion engines (best
    of ``repeats`` each): a serial :class:`ExponentialReservoir` via
    chunked ``offer_many``, the sharded facade at ``W = 1``, and the
    sharded facade at ``W = workers``. The headline number is
    ``speedup_vs_serial`` — the sharded engine's scatter kernel must beat
    serial batched ingestion even on one core, so the ratio measures
    kernel efficiency, not process parallelism.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    from repro.core import ExponentialReservoir
    from repro.shard import ShardedReservoir

    points = list(range(stream_length))

    def points_per_sec(make: Callable[[], Any]) -> float:
        def run() -> float:
            sampler = make()
            offer_many = sampler.offer_many
            start = time.perf_counter()
            for lo in range(0, stream_length, batch_size):
                offer_many(points[lo : lo + batch_size])
            return time.perf_counter() - start

        return stream_length / _best_of(repeats, run)

    serial_pps = points_per_sec(
        lambda: ExponentialReservoir(capacity=capacity, rng=7)
    )
    w1_pps = points_per_sec(
        lambda: ShardedReservoir(capacity=capacity, workers=1, rng=7)
    )
    sharded_pps = points_per_sec(
        lambda: ShardedReservoir(capacity=capacity, workers=workers, rng=7)
    )
    return {
        "capacity": capacity,
        "workers": workers,
        "stream_length": stream_length,
        "batch_size": batch_size,
        "repeats": repeats,
        "serial_offer_many_points_per_sec": serial_pps,
        "sharded_w1_points_per_sec": w1_pps,
        "sharded_points_per_sec": sharded_pps,
        "speedup_vs_serial": sharded_pps / serial_pps,
    }


def durable_throughput_report(
    checkpoint_dir: PathLike,
    capacity: int = 10_000,
    stream_length: int = 200_000,
    batch_size: int = 8192,
    repeats: int = 3,
    sync_policies: tuple = ("never", "batch", "always"),
) -> Dict[str, Any]:
    """Durability overhead: plain ``offer_many`` vs :class:`DurableReservoir`.

    Streams the same integer stream through a bare
    :class:`~repro.core.ExponentialReservoir` and through the durable
    facade under each WAL fsync policy (best of ``repeats`` each; a fresh
    journal directory per run so every run pays the same journal-growth
    cost). The headline number per policy is ``overhead_ratio`` — plain
    points/sec divided by durable points/sec, i.e. how many times slower
    ingestion gets when every block is journalled first.
    """
    import shutil

    from repro.core import ExponentialReservoir
    from repro.persist import DurableReservoir

    base = Path(checkpoint_dir)
    points = list(range(stream_length))

    def timed(make: Callable[[], Any], close: bool) -> float:
        def run() -> float:
            sampler = make()
            offer_many = sampler.offer_many
            start = time.perf_counter()
            for lo in range(0, stream_length, batch_size):
                offer_many(points[lo : lo + batch_size])
            if close:
                sampler.close(final_checkpoint=False)
            return time.perf_counter() - start

        return stream_length / _best_of(repeats, run)

    plain_pps = timed(
        lambda: ExponentialReservoir(capacity=capacity, rng=7), close=False
    )
    policies: Dict[str, Any] = {}
    for sync in sync_policies:
        journal = base / f"bench-{sync}"

        def make_durable(journal: Path = journal, sync: str = sync) -> Any:
            if journal.exists():
                shutil.rmtree(journal)
            return DurableReservoir(
                ExponentialReservoir(capacity=capacity, rng=7),
                journal,
                wal_sync=sync,
            )

        durable_pps = timed(make_durable, close=True)
        policies[sync] = {
            "durable_points_per_sec": durable_pps,
            "overhead_ratio": plain_pps / durable_pps,
        }
    return {
        "capacity": capacity,
        "stream_length": stream_length,
        "batch_size": batch_size,
        "repeats": repeats,
        "plain_offer_many_points_per_sec": plain_pps,
        "sync_policies": policies,
    }


def query_throughput_report(
    capacity: int = 1000,
    lam: float = 1e-4,
    stream_length: int = 50_000,
    dimensions: int = 10,
    repeats: int = 3,
    eval_rounds: int = 20,
    quick: bool = False,
) -> Dict[str, Any]:
    """Columnar vs per-point query evaluation, incremental vs scan oracle.

    Two measurements over one seeded synthetic stream:

    * **Estimator**: the full builder-query suite (count, sum, range
      count, class count, average, range selectivity — the queries every
      figure evaluates) is estimated ``eval_rounds`` times against the
      same reservoir through the columnar engine and through the
      per-point reference path (``QueryEstimator(columnar=False)``).
      Reported as estimates/sec per path plus ``speedup`` and
      ``estimates_identical`` — the two paths must agree bit for bit, so
      the speedup is pure engine, not approximation.
    * **Oracle**: the exact :class:`~repro.queries.exact.StreamHistory`
      answer for the whole-history average is timed at a quarter-stream
      checkpoint and at the full stream, via the incremental prefix
      structures and via the horizon scan. ``incremental_cost_growth``
      stays ~flat while ``scan_cost_growth`` tracks the 4x horizon
      growth — the O(dims) vs O(horizon) claim, measured.

    ``quick=True`` shrinks the stream and round counts for smoke-test
    latency (CI) without changing the report's shape.
    """
    from repro.core import SpaceConstrainedReservoir
    from repro.queries import (
        QueryEstimator,
        StreamHistory,
        average_query,
        class_count_query,
        count_query,
        range_count_query,
        range_selectivity_query,
        sum_query,
    )
    from repro.streams import EvolvingClusterStream

    if quick:
        stream_length = min(stream_length, 8_000)
        eval_rounds = min(eval_rounds, 3)
        repeats = 1
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if eval_rounds < 1:
        raise ValueError(f"eval_rounds must be >= 1, got {eval_rounds}")

    sampler = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=7)
    history = StreamHistory(dimensions)
    stream = EvolvingClusterStream(
        length=stream_length, dimensions=dimensions, rng=7
    )
    for point in stream:
        history.observe(point)
        sampler.offer(point)

    horizon = max(1, stream_length // 4)
    dims = range(dimensions)
    queries = [
        count_query(horizon),
        sum_query(horizon, dims),
        range_count_query(horizon, (0, 1), (0.0, 0.0), (1.0, 1.0)),
        class_count_query(horizon, 4),
        average_query(horizon, dims),
        range_selectivity_query(horizon, (0, 1), (0.0, 0.0), (1.0, 1.0)),
    ]

    def estimates(estimator: QueryEstimator) -> List[Any]:
        return [estimator.estimate(q).estimate for q in queries]

    def estimator_seconds(estimator: QueryEstimator) -> float:
        def run() -> float:
            start = time.perf_counter()
            for _ in range(eval_rounds):
                estimates(estimator)
            return time.perf_counter() - start

        return _best_of(repeats, run)

    columnar = QueryEstimator(sampler)
    per_point = QueryEstimator(sampler, columnar=False)
    sampler.resident_columns()  # warm the cache outside the timed region
    columnar_s = estimator_seconds(columnar)
    per_point_s = estimator_seconds(per_point)
    n_estimates = eval_rounds * len(queries)
    identical = all(
        np.array_equal(a, b, equal_nan=True)
        for a, b in zip(estimates(columnar), estimates(per_point))
    )

    # Oracle cost at a quarter-stream vs full-stream checkpoint. The
    # whole-history query makes the scan horizon grow with t while the
    # incremental answer stays O(dims).
    oracle_query = average_query(None, dims)
    checkpoints = [stream_length // 4, stream_length]

    def oracle_seconds(evaluate: Callable[..., Any], t: int) -> float:
        def run() -> float:
            start = time.perf_counter()
            for _ in range(eval_rounds):
                evaluate(oracle_query, t)
            return time.perf_counter() - start

        return _best_of(repeats, run) / eval_rounds

    inc_s = [oracle_seconds(history.evaluate, t) for t in checkpoints]
    scan_s = [oracle_seconds(history.evaluate_scan, t) for t in checkpoints]

    return {
        "capacity": capacity,
        "lam": lam,
        "stream_length": stream_length,
        "dimensions": dimensions,
        "horizon": horizon,
        "repeats": repeats,
        "eval_rounds": eval_rounds,
        "quick": quick,
        "queries": [
            getattr(q, "name", "ratio") for q in queries
        ],
        "estimator": {
            "columnar_estimates_per_sec": n_estimates / columnar_s,
            "per_point_estimates_per_sec": n_estimates / per_point_s,
            "speedup": per_point_s / columnar_s,
            "estimates_identical": bool(identical),
        },
        "oracle": {
            "checkpoints": checkpoints,
            "incremental_seconds_per_eval": inc_s,
            "scan_seconds_per_eval": scan_s,
            "incremental_cost_growth": inc_s[1] / inc_s[0],
            "scan_cost_growth": scan_s[1] / scan_s[0],
            "speedup_at_full_stream": scan_s[1] / inc_s[1],
        },
    }


def write_throughput_json(
    path: PathLike,
    report: Optional[Dict[str, Any]] = None,
    batch_size: int = 8192,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Run (or take) a throughput report and write it to ``path`` as JSON.

    If ``path`` already holds a JSON object, its top-level keys are
    preserved and ``report``'s keys merged over them, so independently
    run sections (e.g. the batch matrix and the ``"sharded"`` record)
    accumulate in one file instead of clobbering each other.
    """
    if report is None:
        report = throughput_report(batch_size=batch_size, repeats=repeats)
    target = Path(path)
    payload: Dict[str, Any] = {}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
        except ValueError:
            existing = None
        if isinstance(existing, dict):
            payload = existing
    payload.update(report)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
