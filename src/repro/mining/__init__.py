"""Data-mining applications over reservoir samples (Section 5.3)."""

from repro.mining.anomaly import ReservoirAnomalyScorer
from repro.mining.cluster_tracking import ClusterCheckpoint, ClusterTracker
from repro.mining.drift import DriftScore, ReservoirDriftDetector
from repro.mining.evolution import (
    ReservoirSnapshot,
    class_separation,
    neighborhood_label_purity,
    snapshot,
)
from repro.mining.kmeans import KMeansResult, kmeans
from repro.mining.knn import ReservoirKnnClassifier
from repro.mining.prequential import PrequentialResult, run_prequential

__all__ = [
    "ReservoirKnnClassifier",
    "PrequentialResult",
    "run_prequential",
    "KMeansResult",
    "kmeans",
    "ReservoirSnapshot",
    "snapshot",
    "neighborhood_label_purity",
    "class_separation",
    "DriftScore",
    "ReservoirDriftDetector",
    "ClusterCheckpoint",
    "ClusterTracker",
    "ReservoirAnomalyScorer",
]
