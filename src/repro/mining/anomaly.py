"""Reservoir-based anomaly scoring — an extension in the paper's domain.

The paper's motivating data is network-intrusion traffic; the natural task
there is *anomaly detection against recent behaviour*. A distance-based
detector needs a reference sample of "normal recent traffic" — exactly
what a biased reservoir maintains. The scorer mirrors the classification
setup of Section 5.3: the reference set *is* the reservoir, so the
detector inherits the reservoir's temporal bias.

Score: mean Euclidean distance to the ``k`` nearest residents. Over a
*biased* reservoir the score adapts to regime changes (yesterday's novelty
becomes today's normal as the reservoir turns over); over an unbiased one
stale history keeps old regimes "normal" forever and dilutes the contrast
for new behaviour.

:meth:`ReservoirAnomalyScorer.score_then_observe` gives the prequential
protocol; :meth:`calibrate_threshold` turns scores into alarms via an
empirical quantile of recent scores.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.streams.point import StreamPoint

__all__ = ["ReservoirAnomalyScorer"]


class ReservoirAnomalyScorer:
    """k-NN distance anomaly scorer over a reservoir sample.

    Parameters
    ----------
    sampler:
        The reservoir supplying the reference set (payloads must be
        :class:`StreamPoint`).
    k:
        Number of nearest residents averaged into the score.
    score_memory:
        How many recent scores to keep for threshold calibration.
    """

    def __init__(
        self,
        sampler: ReservoirSampler,
        k: int = 5,
        score_memory: int = 2_000,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if score_memory < 10:
            raise ValueError(f"score_memory must be >= 10, got {score_memory}")
        self.sampler = sampler
        self.k = int(k)
        self.recent_scores: Deque[float] = deque(maxlen=int(score_memory))

    def _matrix(self) -> Optional[np.ndarray]:
        payloads = self.sampler.payloads()
        if not payloads:
            return None
        return np.vstack([p.values for p in payloads])

    def score(self, point: StreamPoint) -> Optional[float]:
        """Mean distance to the ``k`` nearest residents (``None`` if the
        reservoir is empty)."""
        matrix = self._matrix()
        if matrix is None:
            return None
        dists = np.linalg.norm(matrix - point.values, axis=1)
        k = min(self.k, dists.size)
        nearest = np.partition(dists, k - 1)[:k]
        return float(nearest.mean())

    def score_then_observe(self, point: StreamPoint) -> Optional[float]:
        """Prequential step: score against the reservoir, then offer the
        point to it (so the detector adapts at the sampler's bias rate)."""
        value = self.score(point)
        self.sampler.offer(point)
        if value is not None:
            self.recent_scores.append(value)
        return value

    def calibrate_threshold(self, quantile: float = 0.99) -> Optional[float]:
        """Alarm threshold: the given quantile of recent scores.

        ``None`` until enough scores have accumulated (a tenth of the
        score memory).
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {quantile}")
        if len(self.recent_scores) < max(10, self.recent_scores.maxlen // 10):
            return None
        return float(np.quantile(np.asarray(self.recent_scores), quantile))

    def is_anomalous(
        self, point: StreamPoint, quantile: float = 0.99
    ) -> Optional[bool]:
        """Score ``point`` and compare against the calibrated threshold.

        Does *not* observe the point (callers usually want to quarantine
        anomalies rather than teach them to the reference set). ``None``
        when either the score or the threshold is unavailable.
        """
        threshold = self.calibrate_threshold(quantile)
        value = self.score(point)
        if threshold is None or value is None:
            return None
        return value > threshold
