"""Cluster tracking over a reservoir — the paper's clustering application.

Section 4 argues that the chief advantage of sampling over direct
stream-mining is that any *multi-pass black-box* algorithm can run on the
small sample — clustering being the canonical case (the paper cites its
own biased micro-clustering work [1] as the thing a biased sample can
emulate). This module operationalizes that: re-run k-means over the
reservoir at checkpoints, warm-starting each run from the previous
centers so cluster identities persist, and record the trajectory.

On an evolving stream, tracking over a *biased* reservoir follows the
moving clusters; over an unbiased one the recovered centers lag toward the
historical average — the clustering analogue of Figures 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.mining.kmeans import KMeansResult, kmeans
from repro.streams.point import StreamPoint
from repro.utils.rng import RngLike, as_generator

__all__ = ["ClusterCheckpoint", "ClusterTracker"]


@dataclass(frozen=True)
class ClusterCheckpoint:
    """State of the tracked clustering at one stream position.

    Attributes
    ----------
    t:
        Stream position.
    centers:
        k x d cluster centers (identities consistent across checkpoints
        thanks to warm starts).
    inertia:
        k-means objective on the reservoir snapshot.
    movement:
        Total center displacement since the previous checkpoint (0.0 for
        the first) — the tracker's drift signal.
    sample_size:
        Residents clustered.
    """

    t: int
    centers: np.ndarray
    inertia: float
    movement: float
    sample_size: int


class ClusterTracker:
    """Periodic warm-started k-means over a reservoir.

    Parameters
    ----------
    sampler:
        Reservoir with :class:`StreamPoint` payloads.
    k:
        Number of clusters to track.
    every:
        Re-cluster after this many offered points.
    rng:
        Seed or generator (used for k-means++ on the first fit only).
    """

    def __init__(
        self,
        sampler: ReservoirSampler,
        k: int,
        every: int = 5_000,
        rng: RngLike = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.sampler = sampler
        self.k = int(k)
        self.every = int(every)
        self.rng = as_generator(rng)
        self.checkpoints: List[ClusterCheckpoint] = []
        self._since_fit = 0
        self._centers: Optional[np.ndarray] = None

    def _reservoir_matrix(self) -> Optional[np.ndarray]:
        rows = [
            p.values
            for p in self.sampler.payloads()
            if isinstance(p, StreamPoint)
        ]
        if len(rows) < self.k:
            return None
        return np.vstack(rows)

    def _fit(self) -> Optional[KMeansResult]:
        data = self._reservoir_matrix()
        if data is None:
            return None
        return kmeans(
            data,
            self.k,
            rng=self.rng,
            init_centers=self._centers,
        )

    def offer(self, point: StreamPoint) -> Optional[ClusterCheckpoint]:
        """Feed one point; returns a checkpoint when a re-fit happened."""
        self.sampler.offer(point)
        self._since_fit += 1
        if self._since_fit < self.every:
            return None
        self._since_fit = 0
        result = self._fit()
        if result is None:
            return None
        movement = (
            float(np.linalg.norm(result.centers - self._centers))
            if self._centers is not None
            else 0.0
        )
        self._centers = result.centers
        checkpoint = ClusterCheckpoint(
            t=self.sampler.t,
            centers=result.centers,
            inertia=result.inertia,
            movement=movement,
            sample_size=result.assignments.shape[0],
        )
        self.checkpoints.append(checkpoint)
        return checkpoint

    def track(self, stream: Iterable[StreamPoint]) -> List[ClusterCheckpoint]:
        """Consume a whole stream; returns the checkpoint trajectory."""
        for point in stream:
            self.offer(point)
        return self.checkpoints

    def center_trajectory(self) -> np.ndarray:
        """Stacked centers over checkpoints, shape (n_checkpoints, k, d)."""
        if not self.checkpoints:
            return np.empty((0, self.k, 0))
        return np.stack([c.centers for c in self.checkpoints])

    def tracking_error(self, true_centers: np.ndarray) -> float:
        """Mean distance from each tracked center to its nearest true
        center at the latest checkpoint (a lag measure for tests)."""
        if not self.checkpoints:
            raise ValueError("no checkpoints yet")
        centers = self.checkpoints[-1].centers
        true_centers = np.asarray(true_centers, dtype=np.float64)
        dists = np.linalg.norm(
            centers[:, None, :] - true_centers[None, :, :], axis=2
        )
        return float(dists.min(axis=1).mean())
