"""Evolution (drift) detection from a biased reservoir — an extension.

The paper's Section 5.3 frames "evolution analysis" qualitatively (the
Figure 9 scatter plots). This module makes it operational: because an
exponentially biased reservoir over-represents the recent past *with known
inclusion probabilities*, a single reservoir supports a weighted
two-sample comparison between its "recent" and "historical" strata —
no second synopsis needed.

:class:`ReservoirDriftDetector` splits the residents at an age threshold,
reweights each stratum by Horvitz-Thompson to make both representative of
their time windows, and scores the distributional distance between the two
weighted samples:

* ``mean_shift`` — normalized distance between weighted means (a
  per-dimension z-like score aggregated by the Euclidean norm);
* ``energy`` — weighted energy distance (sensitive to shape changes, not
  just location).

Scores near 0 mean "no evolution across the threshold"; larger scores mean
the recent window's distribution has moved. Calibrate the alarm threshold
on a stationary prefix (see ``examples/`` or the tests), or use
:meth:`ReservoirDriftDetector.score_series` to track the score over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.streams.point import StreamPoint

__all__ = ["DriftScore", "ReservoirDriftDetector"]


@dataclass(frozen=True)
class DriftScore:
    """Outcome of one drift comparison.

    Attributes
    ----------
    mean_shift:
        Norm of the standardized difference of weighted means.
    energy:
        Weighted energy distance between the strata.
    recent_count, old_count:
        Stratum sizes (small strata make scores unreliable).
    threshold_age:
        The age that split the strata.
    """

    mean_shift: float
    energy: float
    recent_count: int
    old_count: int
    threshold_age: int


def _weighted_mean_cov_diag(
    values: np.ndarray, weights: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted mean and per-dimension weighted variance."""
    total = weights.sum()
    mean = (weights[:, None] * values).sum(axis=0) / total
    var = (weights[:, None] * (values - mean) ** 2).sum(axis=0) / total
    return mean, var


def _weighted_energy_distance(
    x: np.ndarray, wx: np.ndarray, y: np.ndarray, wy: np.ndarray
) -> float:
    """Energy distance ``2 E|X-Y| - E|X-X'| - E|Y-Y'|`` with weights."""
    wx = wx / wx.sum()
    wy = wy / wy.sum()

    def mean_cross(a, wa, b, wb):
        # |a_i - b_j| weighted by wa_i * wb_j, computed blockwise.
        dists = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        return float(wa @ dists @ wb)

    exy = mean_cross(x, wx, y, wy)
    exx = mean_cross(x, wx, x, wx)
    eyy = mean_cross(y, wy, y, wy)
    return max(0.0, 2.0 * exy - exx - eyy)


class ReservoirDriftDetector:
    """Weighted two-sample drift scoring over one reservoir.

    Parameters
    ----------
    sampler:
        Exponentially biased reservoir whose payloads are
        :class:`StreamPoint` objects (the inclusion model supplies the HT
        weights that undo the sampling bias within each stratum).
    threshold_age:
        Residents younger than this (in arrivals) form the "recent"
        stratum; older residents form the "historical" one. Defaults to
        the sampler capacity (roughly the bias half-life region).
    max_stratum:
        Cap on points per stratum for the O(m^2) energy distance; strata
        are uniformly subsampled above it.
    """

    def __init__(
        self,
        sampler: ReservoirSampler,
        threshold_age: Optional[int] = None,
        max_stratum: int = 400,
    ) -> None:
        self.sampler = sampler
        self.threshold_age = (
            int(threshold_age) if threshold_age is not None else sampler.capacity
        )
        if self.threshold_age < 1:
            raise ValueError("threshold_age must be >= 1")
        if max_stratum < 2:
            raise ValueError("max_stratum must be >= 2")
        self.max_stratum = int(max_stratum)

    def _strata(self):
        t = self.sampler.t
        arrivals = self.sampler.arrival_indices()
        probs = self.sampler.inclusion_probabilities(arrivals, t)
        payloads = self.sampler.payloads()
        recent_v, recent_w, old_v, old_w = [], [], [], []
        for point, r, p in zip(payloads, arrivals, probs):
            if not isinstance(point, StreamPoint):
                raise TypeError("drift detection requires StreamPoint payloads")
            row = point.values
            weight = 1.0 / p
            if t - r < self.threshold_age:
                recent_v.append(row)
                recent_w.append(weight)
            else:
                old_v.append(row)
                old_w.append(weight)
        return recent_v, recent_w, old_v, old_w

    def _subsample(self, values, weights, rng):
        if len(values) <= self.max_stratum:
            return np.vstack(values), np.asarray(weights)
        idx = rng.choice(len(values), size=self.max_stratum, replace=False)
        return (
            np.vstack([values[i] for i in idx]),
            np.asarray([weights[i] for i in idx]),
        )

    def score(self, rng=None) -> Optional[DriftScore]:
        """Compare the strata; ``None`` if either stratum has < 2 points."""
        rng = np.random.default_rng(0) if rng is None else rng
        recent_v, recent_w, old_v, old_w = self._strata()
        if len(recent_v) < 2 or len(old_v) < 2:
            return None
        x, wx = self._subsample(recent_v, recent_w, rng)
        y, wy = self._subsample(old_v, old_w, rng)
        mean_x, var_x = _weighted_mean_cov_diag(x, wx)
        mean_y, var_y = _weighted_mean_cov_diag(y, wy)
        pooled = np.sqrt((var_x + var_y) / 2.0) + 1e-12
        mean_shift = float(np.linalg.norm((mean_x - mean_y) / pooled))
        energy = _weighted_energy_distance(x, wx, y, wy)
        return DriftScore(
            mean_shift=mean_shift,
            energy=energy,
            recent_count=len(recent_v),
            old_count=len(old_v),
            threshold_age=self.threshold_age,
        )

    @staticmethod
    def score_series(
        stream,
        sampler: ReservoirSampler,
        every: int,
        threshold_age: Optional[int] = None,
    ) -> List[Tuple[int, DriftScore]]:
        """Drive ``stream`` into ``sampler``, scoring every ``every`` points.

        Returns ``(t, score)`` pairs (skipping positions where a stratum
        was too small). Convenience for monitoring loops and the tests.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        out: List[Tuple[int, DriftScore]] = []
        detector = ReservoirDriftDetector(sampler, threshold_age)
        for i, point in enumerate(stream, start=1):
            sampler.offer(point)
            if i % every == 0:
                score = detector.score()
                if score is not None:
                    out.append((i, score))
        return out
