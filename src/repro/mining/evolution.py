"""Evolution analysis of reservoir contents (Figure 9).

Figure 9 of the paper shows 2-D scatter plots of the biased and unbiased
reservoirs at three points of stream progression: the biased reservoir
tracks the drifting clusters (classes stay crisp), the unbiased one shows
"diffusion and mixing" of stale history. Scatter plots do not diff well in
a test suite, so alongside the raw projections this module computes
quantitative summaries of the same phenomena:

* **neighborhood label purity** — fraction of residents whose nearest
  reservoir neighbor carries the same class label. Mixing of stale points
  from drifted clusters lowers purity (and is precisely why the 1-NN
  accuracy of Figure 7/8 drops).
* **class separation** — mean between-class centroid distance divided by
  mean within-class scatter (a Fisher-style ratio). Drifting-apart clusters
  raise separation in a *fresh* sample; a stale sample smears each class
  along its drift trail, inflating within-class scatter.
* **staleness** — mean resident age divided by stream length: ~0.5 for an
  unbiased sample, ~``n/t`` scale for the biased one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.reservoir import ReservoirSampler

__all__ = [
    "ReservoirSnapshot",
    "snapshot",
    "neighborhood_label_purity",
    "class_separation",
]


@dataclass(frozen=True)
class ReservoirSnapshot:
    """Frozen view of a reservoir's contents with evolution metrics.

    Attributes
    ----------
    t:
        Stream position at snapshot time.
    values:
        Resident feature matrix (labeled residents only).
    labels:
        Resident class labels.
    ages:
        Resident ages ``t - r``.
    purity:
        Nearest-neighbor label purity (``nan`` for < 2 residents).
    separation:
        Fisher-style class separation (``nan`` with < 2 classes present).
    staleness:
        Mean age over ``t``.
    """

    t: int
    values: np.ndarray
    labels: np.ndarray
    ages: np.ndarray
    purity: float
    separation: float
    staleness: float

    def projection(self, dims: Sequence[int] = (0, 1)) -> np.ndarray:
        """2-D (or any) projection of the residents — Figure 9's axes."""
        return self.values[:, list(dims)]


def neighborhood_label_purity(values: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of points whose nearest neighbor shares their label."""
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels)
    n = values.shape[0]
    if n < 2:
        return float("nan")
    # Full pairwise distances; reservoirs are small (~1000 points).
    diffs = values[:, None, :] - values[None, :, :]
    dists = np.einsum("ijk,ijk->ij", diffs, diffs)
    np.fill_diagonal(dists, np.inf)
    nearest = np.argmin(dists, axis=1)
    return float(np.mean(labels[nearest] == labels))


def class_separation(values: np.ndarray, labels: np.ndarray) -> float:
    """Mean inter-centroid distance over mean within-class RMS scatter."""
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if classes.size < 2:
        return float("nan")
    centroids = []
    scatters = []
    for c in classes:
        members = values[labels == c]
        centroid = members.mean(axis=0)
        centroids.append(centroid)
        scatters.append(
            float(np.sqrt(np.mean(np.sum((members - centroid) ** 2, axis=1))))
        )
    centroids = np.vstack(centroids)
    k = centroids.shape[0]
    inter = [
        float(np.linalg.norm(centroids[i] - centroids[j]))
        for i in range(k)
        for j in range(i + 1, k)
    ]
    mean_scatter = float(np.mean(scatters))
    if mean_scatter == 0.0:
        return float("inf")
    return float(np.mean(inter)) / mean_scatter


def snapshot(sampler: ReservoirSampler) -> ReservoirSnapshot:
    """Capture a labeled reservoir's state and evolution metrics.

    Payloads must be :class:`~repro.streams.point.StreamPoint`; unlabeled
    residents are excluded from the label-dependent metrics but a reservoir
    with no labeled resident at all raises (the metrics would be vacuous).
    """
    rows = []
    labels = []
    ages = []
    t = sampler.t
    for entry in sampler.entries():
        point = entry.payload
        if point.label is None:
            continue
        rows.append(point.values)
        labels.append(point.label)
        ages.append(t - entry.arrival)
    if not rows:
        raise ValueError("reservoir holds no labeled residents to snapshot")
    values = np.vstack(rows)
    labels_arr = np.asarray(labels, dtype=np.int64)
    ages_arr = np.asarray(ages, dtype=np.int64)
    return ReservoirSnapshot(
        t=t,
        values=values,
        labels=labels_arr,
        ages=ages_arr,
        purity=neighborhood_label_purity(values, labels_arr),
        separation=class_separation(values, labels_arr),
        staleness=float(ages_arr.mean() / t) if t else float("nan"),
    )
