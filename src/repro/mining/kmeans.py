"""Lightweight k-means for reservoir-based evolution analysis.

The paper (Section 4, discussion) notes that a biased reservoir can serve
as the base data set for *any* black-box mining algorithm — clustering
being the canonical example ([1] in the paper biases cluster maintenance
the same way. Running a multi-pass algorithm on the small sample is
exactly the freedom sampling buys). This module provides the black box:
a dependency-free Lloyd's k-means with k-means++ seeding, operated over
reservoir snapshots by :mod:`repro.mining.evolution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, as_generator

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run.

    Attributes
    ----------
    centers:
        Final centroids, shape ``(k, d)``.
    assignments:
        Cluster index per input row.
    inertia:
        Sum of squared distances to assigned centroids.
    iterations:
        Lloyd iterations executed (including the final no-change pass).
    """

    centers: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def _kmeans_pp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    dist_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        total = dist_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with a center; pick uniformly.
            centers[j] = data[int(rng.integers(n))]
            continue
        probs = dist_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = data[choice]
        dist_sq = np.minimum(
            dist_sq, np.sum((data - centers[j]) ** 2, axis=1)
        )
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    rng: RngLike = None,
    max_iter: int = 100,
    tol: float = 1e-6,
    init_centers: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialization.

    Parameters
    ----------
    data:
        Input rows, shape ``(n, d)`` with ``n >= k``.
    k:
        Number of clusters.
    rng:
        Seed or generator (drives seeding only; Lloyd is deterministic).
    max_iter:
        Iteration cap.
    tol:
        Convergence threshold on total center movement.
    init_centers:
        Optional explicit initial centers (shape ``(k, d)``) — used by the
        evolution tracker to warm-start from the previous snapshot so
        cluster identities stay stable across time.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[0]
    k = int(k)
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n rows, got k={k}, n={n}")
    generator = as_generator(rng)
    if init_centers is not None:
        centers = np.asarray(init_centers, dtype=np.float64).copy()
        if centers.shape != (k, data.shape[1]):
            raise ValueError(
                f"init_centers must have shape {(k, data.shape[1])}"
            )
    else:
        centers = _kmeans_pp_init(data, k, generator)
    assignments = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step (full distance matrix; reservoir-sized inputs).
        dists = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
        assignments = np.argmin(dists, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = data[assignments == j]
            if members.shape[0] > 0:
                new_centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = int(np.argmax(np.min(dists, axis=1)))
                new_centers[j] = data[farthest]
        movement = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if movement <= tol:
            break
    final_dists = np.linalg.norm(
        data[:, None, :] - centers[None, :, :], axis=2
    )
    assignments = np.argmin(final_dists, axis=1)
    inertia = float(np.sum(np.min(final_dists, axis=1) ** 2))
    return KMeansResult(centers, assignments, inertia, iteration)
