"""Nearest-neighbor classification over a reservoir (Section 5.3).

The paper uses a 1-NN classifier as the archetypal sampling-dependent
mining task: comparing a test instance against every historical point is
impossible on a stream, so the comparison set *is* the reservoir. The
classifier therefore inherits the reservoir's bias — a stale (unbiased)
reservoir votes with outdated cluster positions, a biased one with the
current ones.

:class:`ReservoirKnnClassifier` wraps any sampler whose payloads are
labeled :class:`~repro.streams.point.StreamPoint` objects. Prediction is a
majority vote among the ``k`` nearest residents (``k = 1`` reproduces the
paper); distance is Euclidean, vectorized over the whole reservoir.

Performance note: prediction keeps a numpy *mirror* of the reservoir
contents, updated incrementally from the sampler's mutation log
(:attr:`~repro.core.reservoir.ReservoirSampler.last_ops`), so a prequential
pass costs one row write plus one vectorized distance computation per
point. Samplers without a mutation log fall back to re-snapshotting
whenever their contents change.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.streams.point import StreamPoint

__all__ = ["ReservoirKnnClassifier"]

_UNLABELED = -1


class ReservoirKnnClassifier:
    """k-nearest-neighbor classifier backed by a reservoir sample.

    Parameters
    ----------
    sampler:
        The reservoir supplying the comparison set. Payloads must be
        :class:`StreamPoint`; unlabeled residents are ignored at
        prediction time.
    k:
        Number of neighbors in the vote (paper: 1).

    Notes
    -----
    For the incremental mirror to stay consistent, route all stream
    traffic through :meth:`observe` / :meth:`predict_then_observe` rather
    than offering to the sampler directly. Out-of-band sampler mutations
    are detected via the sampler's counters and trigger a full rebuild.
    """

    def __init__(self, sampler: ReservoirSampler, k: int = 1) -> None:
        k = int(k)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.sampler = sampler
        self.k = k
        self._matrix: Optional[np.ndarray] = None  # capacity x d mirror
        self._labels: Optional[np.ndarray] = None
        self._rows = 0
        self._synced_insertions = -1
        self._synced_ejections = -1

    # ------------------------------------------------------------------ #
    # Mirror maintenance
    # ------------------------------------------------------------------ #

    def _rebuild(self) -> None:
        """Full re-snapshot of the reservoir into the mirror."""
        payloads = self.sampler.payloads()
        self._rows = len(payloads)
        if self._rows == 0:
            self._matrix = None
            self._labels = None
        else:
            dim = payloads[0].dimensions
            if (
                self._matrix is None
                or self._matrix.shape[1] != dim
                or self._matrix.shape[0] < self.sampler.capacity
            ):
                cap = max(self.sampler.capacity, self._rows)
                self._matrix = np.empty((cap, dim))
                self._labels = np.empty(cap, dtype=np.int64)
            for i, point in enumerate(payloads):
                self._matrix[i] = point.values
                self._labels[i] = (
                    _UNLABELED if point.label is None else point.label
                )
        self._synced_insertions = self.sampler.insertions
        self._synced_ejections = self.sampler.ejections

    def _write_row(self, slot: int, point: StreamPoint) -> None:
        if self._matrix is None:
            dim = point.dimensions
            cap = max(self.sampler.capacity, 1)
            self._matrix = np.empty((cap, dim))
            self._labels = np.empty(cap, dtype=np.int64)
        self._matrix[slot] = point.values
        self._labels[slot] = _UNLABELED if point.label is None else point.label

    def _apply_ops(self) -> None:
        """Fold the sampler's latest mutations into the mirror."""
        if not self.sampler.supports_mutation_log:
            self._rebuild()
            return
        ops = self.sampler.last_ops
        if any(op[0] == "compact" for op in ops):
            # Slots were removed and re-indexed; earlier per-slot records
            # from the same offer are stale. Re-snapshot wholesale.
            self._rebuild()
            return
        payloads = self.sampler._payloads  # slot-accurate view
        for op in ops:
            kind, slot = op
            self._write_row(slot, payloads[slot])
            if kind == "append":
                self._rows = max(self._rows, slot + 1)
        self._synced_insertions = self.sampler.insertions
        self._synced_ejections = self.sampler.ejections

    def _ensure_synced(self) -> None:
        """Detect out-of-band mutations (direct offers) and rebuild."""
        if (
            self._synced_insertions != self.sampler.insertions
            or self._synced_ejections != self.sampler.ejections
        ):
            self._rebuild()

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    def predict(self, point: StreamPoint) -> Optional[int]:
        """Predict the label of ``point``; ``None`` if no labeled resident.

        Ties in the k-NN vote break toward the closest neighbor whose
        label participates in the tie.
        """
        self._ensure_synced()
        if self._rows == 0 or self._matrix is None:
            return None
        matrix = self._matrix[: self._rows]
        labels = self._labels[: self._rows]
        labeled = labels != _UNLABELED
        if not np.any(labeled):
            return None
        diffs = matrix - point.values
        dists = np.einsum("ij,ij->i", diffs, diffs)
        dists = np.where(labeled, dists, np.inf)
        if self.k == 1:
            return int(labels[np.argmin(dists)])
        k = min(self.k, int(labeled.sum()))
        nearest = np.argpartition(dists, k - 1)[:k]
        nearest = nearest[np.argsort(dists[nearest])]
        votes = Counter(int(labels[i]) for i in nearest)
        best_count = max(votes.values())
        for i in nearest:  # first (closest) label among the top counts
            if votes[int(labels[i])] == best_count:
                return int(labels[i])
        return int(labels[nearest[0]])  # pragma: no cover - unreachable

    def observe(self, point: StreamPoint) -> bool:
        """Offer ``point`` to the backing reservoir (training step)."""
        self._ensure_synced()
        inserted = self.sampler.offer(point)
        self._apply_ops()
        return inserted

    def predict_then_observe(self, point: StreamPoint) -> Optional[int]:
        """One prequential step: classify first, then learn.

        This is exactly the paper's protocol: "for each incoming data
        point, we first used the reservoir in order to classify it before
        reading its true label and updating the accuracy statistics. Then,
        we use the sampling policy to decide whether or not it should be
        added to the reservoir."
        """
        prediction = self.predict(point)
        self.observe(point)
        return prediction
