"""Prequential (test-then-train) evaluation loops.

Runs one or more reservoir-backed classifiers over the same stream,
recording accuracy both cumulatively and over tumbling windows — the
windowed series is what Figures 7 and 8 plot against stream progression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.mining.knn import ReservoirKnnClassifier
from repro.streams.point import StreamPoint

__all__ = ["PrequentialResult", "run_prequential"]


@dataclass
class PrequentialResult:
    """Accuracy trajectory of one classifier over a stream.

    Attributes
    ----------
    name:
        Identifier of the classifier (e.g. ``"biased"``).
    checkpoints:
        Stream positions at the end of each accuracy window.
    window_accuracy:
        Fraction correct within each tumbling window.
    cumulative_accuracy:
        Fraction correct from the start up to each checkpoint.
    predictions, correct:
        Lifetime counters (predictions excludes warm-up points where the
        reservoir had no labeled residents).
    """

    name: str
    checkpoints: List[int] = field(default_factory=list)
    window_accuracy: List[float] = field(default_factory=list)
    cumulative_accuracy: List[float] = field(default_factory=list)
    predictions: int = 0
    correct: int = 0

    @property
    def final_accuracy(self) -> float:
        """Lifetime accuracy (0.0 when nothing was predicted)."""
        return self.correct / self.predictions if self.predictions else 0.0


def run_prequential(
    stream: Iterable[StreamPoint],
    classifiers: Dict[str, ReservoirKnnClassifier],
    window: int = 10_000,
    skip_unlabeled: bool = True,
) -> Dict[str, PrequentialResult]:
    """Drive every classifier through the stream prequentially.

    All classifiers see the identical point sequence (the stream is
    iterated once and each point is handed to every classifier), so
    accuracy differences reflect the reservoirs, not the data order.

    Parameters
    ----------
    stream:
        The labeled point stream.
    classifiers:
        Name -> classifier mapping; names key the returned results.
    window:
        Tumbling-window length for the accuracy series.
    skip_unlabeled:
        Skip points without labels entirely (they can neither be scored
        nor train a labeled vote).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    results = {name: PrequentialResult(name) for name in classifiers}
    window_hits = {name: 0 for name in classifiers}
    window_preds = {name: 0 for name in classifiers}
    seen = 0
    for point in stream:
        if skip_unlabeled and point.label is None:
            continue
        seen += 1
        for name, classifier in classifiers.items():
            prediction = classifier.predict_then_observe(point)
            if prediction is None:
                continue
            result = results[name]
            result.predictions += 1
            window_preds[name] += 1
            if prediction == point.label:
                result.correct += 1
                window_hits[name] += 1
        if seen % window == 0:
            for name, result in results.items():
                preds = window_preds[name]
                result.checkpoints.append(seen)
                result.window_accuracy.append(
                    window_hits[name] / preds if preds else float("nan")
                )
                result.cumulative_accuracy.append(result.final_accuracy)
                window_hits[name] = 0
                window_preds[name] = 0
    return results
