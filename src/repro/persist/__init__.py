"""Durable persistence & crash recovery for reservoir samplers.

A reservoir's whole value proposition is that its ``1/lambda``-slot
sample can be kept *forever* — which is forfeited the moment a process
crash wipes process memory. This package is the durability layer:

* :mod:`repro.persist.wal` — append-only, CRC-32-framed,
  length-prefixed write-ahead log of ingestion records, with a tolerant
  reader that detects and truncates torn or corrupt tails and drops
  duplicate tail records by sequence number.
* :mod:`repro.persist.checkpoint` — versioned, checksummed snapshot
  files written atomically (temp file + rename + directory fsync), with
  retention of the last K checkpoints.
* :mod:`repro.persist.engine` — :class:`DurableReservoir`, the facade
  wrapping any serial sampler or a sharded facade: journal first, apply
  second, checkpoint-and-roll periodically, and
  :meth:`~repro.persist.engine.DurableReservoir.recover` back to a
  sampler byte-identical to an uninterrupted run (WAL replay goes
  through the real ``offer``/``offer_many``/shard-ingest RNG paths).
* :mod:`repro.persist.faults` — the fault-injection harness (simulated
  mid-write kills via a pluggable file wrapper, plus at-rest tail
  corruption) that the recovery test sweep drives.

The byte-identity contract is also enforced statistically as the
``recovery_equivalence`` spec in :mod:`repro.verify.registry`.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_VERSION,
    list_checkpoints,
    load_latest_checkpoint,
    prune_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.persist.engine import (
    PERSIST_SCHEMA_VERSION,
    DurableReservoir,
    RecoveryInfo,
)
from repro.persist.faults import (
    FAULT_NAMES,
    CrashingOpener,
    FaultyFile,
    SimulatedCrash,
    corrupt_tail_record_crc,
    duplicate_tail_record,
    tear_tail_bytes,
    truncate_file,
)
from repro.persist.wal import (
    WAL_VERSION,
    ScanResult,
    WalDamage,
    WalWriter,
    scan_wal,
    truncate_to,
)

__all__ = [
    "DurableReservoir",
    "RecoveryInfo",
    "PERSIST_SCHEMA_VERSION",
    "WalWriter",
    "scan_wal",
    "truncate_to",
    "ScanResult",
    "WalDamage",
    "WAL_VERSION",
    "CHECKPOINT_VERSION",
    "write_checkpoint",
    "read_checkpoint",
    "list_checkpoints",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "SimulatedCrash",
    "FaultyFile",
    "CrashingOpener",
    "FAULT_NAMES",
    "tear_tail_bytes",
    "corrupt_tail_record_crc",
    "duplicate_tail_record",
    "truncate_file",
]
