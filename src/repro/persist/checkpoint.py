"""Versioned, integrity-checked snapshot files with atomic writes.

A checkpoint file carries one pickled payload (the engine stores the
sampler's :meth:`~repro.core.reservoir.ReservoirSampler.state_dict` plus
WAL replay positions) framed for integrity::

    +---------+---------+--------------+-----------+------------------+
    | magic   | version | len (uint32) | crc (u32) | payload (len B)  |
    | 4 B     | 1 B     | 4 B          | 4 B       | pickled object   |
    +---------+---------+--------------+-----------+------------------+

Writes are atomic: the frame goes to ``<name>.tmp`` first, is flushed
and fsynced, then :func:`os.replace`-d onto the final name and the
directory entry fsynced — a crash at any point leaves either the old
file set or the new one, never a half-written checkpoint under the real
name. Torn or corrupt checkpoints (a crash mid-``os.replace`` on exotic
filesystems, bit rot, a truncated copy) fail the CRC and are *skipped*
by :func:`load_latest_checkpoint`, which falls back to the next-newest
valid file; retention therefore keeps the last ``retain`` checkpoints
rather than only the newest.

File names are ``ckpt-<seq:010d>.ckpt`` where ``seq`` is the engine's
record sequence at checkpoint time, so lexicographic order is recovery
order.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "checkpoint_path",
    "write_checkpoint",
    "read_checkpoint",
    "list_checkpoints",
    "load_latest_checkpoint",
    "prune_checkpoints",
]

PathLike = Union[str, Path]

CHECKPOINT_MAGIC = b"RPCK"
CHECKPOINT_VERSION = 1

_HEAD = struct.Struct("<4sBII")  # magic, version, payload_len, payload_crc
_SUFFIX = ".ckpt"
_PREFIX = "ckpt-"


def checkpoint_path(directory: PathLike, seq: int) -> Path:
    """Canonical checkpoint file name for record sequence ``seq``."""
    return Path(directory) / f"{_PREFIX}{int(seq):010d}{_SUFFIX}"


def write_checkpoint(
    directory: PathLike, seq: int, payload: Any, retain: int = 3
) -> Path:
    """Atomically persist ``payload`` as the checkpoint at ``seq``.

    Writes temp-file + fsync + rename + directory fsync, then prunes all
    but the newest ``retain`` checkpoints. Returns the final path.
    """
    if retain < 1:
        raise ValueError(f"retain must be >= 1, got {retain}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    frame = (
        _HEAD.pack(
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            len(body),
            zlib.crc32(body) & 0xFFFFFFFF,
        )
        + body
    )
    final = checkpoint_path(directory, seq)
    tmp = final.with_suffix(final.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(frame)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    _fsync_dir(directory)
    prune_checkpoints(directory, retain)
    return final


def read_checkpoint(path: PathLike) -> Any:
    """Decode one checkpoint file; raises ``ValueError`` on any damage."""
    data = Path(path).read_bytes()
    if len(data) < _HEAD.size:
        raise ValueError(f"checkpoint {path}: truncated header")
    magic, version, length, crc = _HEAD.unpack_from(data, 0)
    if magic != CHECKPOINT_MAGIC:
        raise ValueError(f"checkpoint {path}: bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path}: schema version {version} is not supported "
            f"by this library (expected {CHECKPOINT_VERSION})"
        )
    body = data[_HEAD.size : _HEAD.size + length]
    if len(body) != length:
        raise ValueError(f"checkpoint {path}: truncated payload")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ValueError(f"checkpoint {path}: CRC mismatch")
    return pickle.loads(body)


def list_checkpoints(directory: PathLike) -> List[Tuple[int, Path]]:
    """All checkpoint files as ``(seq, path)``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out: List[Tuple[int, Path]] = []
    for path in sorted(directory.glob(f"{_PREFIX}*{_SUFFIX}")):
        stem = path.name[len(_PREFIX) : -len(_SUFFIX)]
        try:
            out.append((int(stem), path))
        except ValueError:
            continue
    return out


def load_latest_checkpoint(
    directory: PathLike,
) -> Optional[Tuple[int, Any]]:
    """Newest checkpoint that decodes cleanly, as ``(seq, payload)``.

    Damaged files are skipped (newest-first) so a torn final checkpoint
    degrades to the previous one instead of aborting recovery. Returns
    ``None`` when no valid checkpoint exists.
    """
    for seq, path in reversed(list_checkpoints(directory)):
        try:
            return seq, read_checkpoint(path)
        except (ValueError, pickle.UnpicklingError, EOFError):
            continue
    return None


def prune_checkpoints(directory: PathLike, retain: int) -> List[Path]:
    """Delete all but the newest ``retain`` checkpoints; returns removed."""
    removed: List[Path] = []
    entries = list_checkpoints(directory)
    for _seq, path in entries[:-retain] if retain > 0 else entries:
        try:
            path.unlink()
            removed.append(path)
        except OSError:
            pass
    return removed


def _fsync_dir(directory: Path) -> None:
    """Fsync a directory entry (best effort on platforms that allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
