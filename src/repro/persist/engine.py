"""`DurableReservoir`: crash-safe ingestion over any reservoir sampler.

The engine journals every ingestion call to a write-ahead log *before*
applying it to the wrapped sampler, and periodically persists the
sampler's complete :meth:`~repro.core.reservoir.ReservoirSampler.state_dict`
(counters, storage, family extras, and the RNG bit-generator state) as
an atomic checkpoint. :meth:`DurableReservoir.recover` loads the newest
valid checkpoint and replays the WAL tail **through the sampler's real
ingestion path** — ``offer`` / ``offer_many`` for serial samplers, the
per-shard ``ShardWorker.ingest`` kernel for sharded ones — so the
recovered sampler consumes exactly the random sequence the uninterrupted
run would have, and its ``state_dict()`` is byte-identical to never
having crashed (asserted record-by-record in
``tests/test_persist_recovery.py``).

Journal layout (all inside one directory)::

    ckpt-0000000000.ckpt     checkpoint at record seq 0 (initial state)
    ckpt-0000000421.ckpt     newer checkpoints, last `retain` kept
    wal-main-000000.log      serial WAL segments, one per generation
    wal-shard000-000001.log  sharded mode: per-shard segments instead

The WAL rolls to a new *generation* of segments at every checkpoint
(compaction): a checkpoint records the generation opened immediately
after it, recovery replays all generations >= that number, and segments
older than the oldest retained checkpoint's generation are deleted.
Checkpoints fire explicitly (:meth:`checkpoint`) or automatically every
``checkpoint_every_records`` WAL records / ``checkpoint_every_bytes``
WAL bytes.

Sharded mode
------------

Wrapping a :class:`~repro.shard.coordinator.ShardedReservoir` hooks the
facade's dispatch step: every block a shard worker ingests — whether
from ``offer_many`` partitioning or from the per-item buffer flushing —
is journaled to that shard's own segment as ``(global_indices,
payloads)`` *keyed by global arrival index*, before the worker sees it.
Within a shard, records replay in sequence order; across shards order is
irrelevant because worker RNG streams are independent. Per-item offers
that are still sitting in the facade's in-memory buffer are not yet
durable — call :meth:`flush` (or :meth:`checkpoint`, which flushes) to
push them over the dispatch boundary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.reservoir import from_state_dict
from repro.persist.checkpoint import (
    list_checkpoints,
    load_latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.persist.wal import (
    SYNC_POLICIES,
    ScanResult,
    WalWriter,
    scan_wal,
    truncate_to,
)

__all__ = ["DurableReservoir", "RecoveryInfo", "PERSIST_SCHEMA_VERSION"]

PathLike = Union[str, Path]
Opener = Callable[[PathLike, str], Any]

#: Schema version of the checkpoint payload this engine writes/reads.
PERSIST_SCHEMA_VERSION = 1

_SEGMENT_RE = re.compile(r"^wal-(?P<stream>[a-z0-9]+)-(?P<gen>\d{6})\.log$")


def _segment_name(stream: str, generation: int) -> str:
    return f"wal-{stream}-{generation:06d}.log"


def _is_sharded(sampler: Any) -> bool:
    return hasattr(sampler, "worker_states") and hasattr(sampler, "partitioner")


@dataclass
class RecoveryInfo:
    """What :meth:`DurableReservoir.recover` found and did."""

    checkpoint_seq: int
    generation: int
    records_replayed: int = 0
    duplicates_dropped: int = 0
    #: ``(segment path, damage reason)`` for every truncated torn/corrupt
    #: tail; the damaged bytes were cut, not replayed.
    truncated_tails: List[Tuple[str, str]] = field(default_factory=list)


class DurableReservoir:
    """Durable ingestion facade over a sampler or sharded facade.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.reservoir.ReservoirSampler` or a
        :class:`~repro.shard.coordinator.ShardedReservoir`.
    directory:
        Journal directory. Starting a *new* engine requires it to hold
        no prior journal (use :meth:`recover` to resume one).
    wal_sync:
        WAL fsync policy: ``"always"``, ``"batch"`` (default), or
        ``"never"`` — see :mod:`repro.persist.wal`.
    checkpoint_every_records / checkpoint_every_bytes:
        Auto-checkpoint (and WAL-roll) thresholds on the current
        generation; ``None`` disables that trigger.
    retain_checkpoints:
        How many checkpoints (and their WAL generations) to keep.
    opener:
        WAL file factory for fault injection; default :func:`open`.
    """

    def __init__(
        self,
        sampler: Any,
        directory: PathLike,
        wal_sync: str = "batch",
        checkpoint_every_records: Optional[int] = None,
        checkpoint_every_bytes: Optional[int] = None,
        retain_checkpoints: int = 3,
        opener: Opener = open,
        _recovering: bool = False,
    ) -> None:
        if wal_sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown wal_sync {wal_sync!r}; choose from {SYNC_POLICIES}"
            )
        for name, value in (
            ("checkpoint_every_records", checkpoint_every_records),
            ("checkpoint_every_bytes", checkpoint_every_bytes),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if retain_checkpoints < 1:
            raise ValueError(
                f"retain_checkpoints must be >= 1, got {retain_checkpoints}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sampler = sampler
        self.wal_sync = wal_sync
        self.checkpoint_every_records = checkpoint_every_records
        self.checkpoint_every_bytes = checkpoint_every_bytes
        self.retain_checkpoints = retain_checkpoints
        self._opener = opener
        self._sharded = _is_sharded(sampler)
        self._streams = (
            [f"shard{w:03d}" for w in range(sampler.workers)]
            if self._sharded
            else ["main"]
        )
        self._writers: Dict[str, WalWriter] = {}
        self._seq = 0
        self._generation = 0
        self._records_in_generation = 0
        self._bytes_in_generation = 0
        self._closed = False
        self.last_recovery: Optional[RecoveryInfo] = None
        self._orig_dispatch = None
        if self._sharded:
            self._hook_dispatch()
        if not _recovering:
            if self._existing_journal():
                raise ValueError(
                    f"{self.directory} already holds a journal; use "
                    "DurableReservoir.recover() to resume it (or point a "
                    "new engine at an empty directory)"
                )
            self._open_writers()
            # Anchor recovery: the initial state is checkpoint 0, so a
            # crash before the first explicit checkpoint still recovers.
            self.checkpoint()

    # ------------------------------------------------------------------ #
    # Journal plumbing
    # ------------------------------------------------------------------ #

    def _existing_journal(self) -> bool:
        return bool(
            list(self.directory.glob("ckpt-*.ckpt"))
            or list(self.directory.glob("wal-*.log"))
        )

    def _open_writers(self) -> None:
        for stream in self._streams:
            self._writers[stream] = WalWriter(
                self.directory / _segment_name(stream, self._generation),
                sync=self.wal_sync,
                opener=self._opener,
            )

    def _close_writers(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers = {}

    def _append(self, stream: str, record: Any) -> None:
        self._seq += 1
        size = self._writers[stream].append(self._seq, record)
        self._records_in_generation += 1
        self._bytes_in_generation += size

    def _hook_dispatch(self) -> None:
        """Journal every shard dispatch before the worker ingests it."""
        facade = self.sampler
        self._orig_dispatch = facade._dispatch

        def logged_dispatch(w, payloads, globs):
            self._append(
                self._streams[w],
                (np.asarray(globs).tolist(), list(payloads)),
            )
            self._orig_dispatch(w, payloads, globs)

        facade._dispatch = logged_dispatch

    def _unhook_dispatch(self) -> None:
        if self._orig_dispatch is not None:
            self.sampler._dispatch = self._orig_dispatch
            self._orig_dispatch = None

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def offer(self, payload: Any) -> bool:
        """Journal then apply one arrival.

        Serial samplers journal one ``("o", payload)`` record per offer.
        Sharded facades route through their per-item buffer; the WAL
        record is written when the buffered block is dispatched to its
        shard (see the module docstring on the durability boundary).
        """
        self._check_open()
        if self._sharded:
            stored = self.sampler.offer(payload)
        else:
            self._append("main", ("o", payload))
            stored = self.sampler.offer(payload)
        self._maybe_checkpoint()
        return stored

    def offer_many(self, payloads: Iterable[Any]) -> int:
        """Journal then apply a block of arrivals."""
        self._check_open()
        block = list(payloads)
        if not block:
            return 0
        if self._sharded:
            # The dispatch hook journals each shard's sub-block.
            stored = self.sampler.offer_many(block)
        else:
            self._append("main", ("b", block))
            stored = self.sampler.offer_many(block)
        self._maybe_checkpoint()
        return stored

    def extend(self, payloads: Iterable[Any]) -> int:
        """Alias for :meth:`offer_many`."""
        return self.offer_many(payloads)

    def flush(self) -> None:
        """Push sharded per-item buffers over the durable boundary."""
        self._check_open()
        if self._sharded:
            self.sampler.flush()

    def sync(self) -> None:
        """Fsync every open WAL segment."""
        for writer in self._writers.values():
            writer.sync()

    # ------------------------------------------------------------------ #
    # Checkpoint / compaction
    # ------------------------------------------------------------------ #

    def _maybe_checkpoint(self) -> None:
        n, b = self.checkpoint_every_records, self.checkpoint_every_bytes
        if (n is not None and self._records_in_generation >= n) or (
            b is not None and self._bytes_in_generation >= b
        ):
            self.checkpoint()

    def checkpoint(self) -> Path:
        """Snapshot the sampler, roll the WAL, prune old state.

        Sequence: flush buffered offers (their dispatch records land in
        the *current* generation), fsync the WAL, capture
        ``state_dict()``, open the next generation's segments, write the
        checkpoint naming that generation, then delete checkpoints and
        segments beyond the retention horizon.
        """
        self._check_open()
        if self._sharded:
            self.sampler.flush()
        self.sync()
        state = self.sampler.state_dict()
        self._close_writers()
        self._generation += 1
        self._open_writers()
        self._records_in_generation = 0
        self._bytes_in_generation = 0
        payload = {
            "schema": PERSIST_SCHEMA_VERSION,
            "kind": "sharded" if self._sharded else "serial",
            "record_seq": self._seq,
            "generation": self._generation,
            "streams": list(self._streams),
            "wal_sync": self.wal_sync,
            "sampler": state,
        }
        path = write_checkpoint(
            self.directory, self._seq, payload, retain=self.retain_checkpoints
        )
        self._prune_segments()
        return path

    def _prune_segments(self) -> None:
        """Delete WAL generations no retained checkpoint can need."""
        # Oldest retained checkpoint decides the oldest needed generation.
        floor = self._oldest_retained_generation()
        if floor is None:
            return
        for path in self.directory.glob("wal-*.log"):
            match = _SEGMENT_RE.match(path.name)
            if match and int(match.group("gen")) < floor:
                try:
                    path.unlink()
                except OSError:
                    pass

    def _oldest_retained_generation(self) -> Optional[int]:
        for _seq, path in list_checkpoints(self.directory):  # oldest first
            try:
                return int(read_checkpoint(path)["generation"])
            except (ValueError, KeyError, EOFError):
                continue
        return None

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    @classmethod
    def recover(
        cls,
        directory: PathLike,
        wal_sync: str = "batch",
        checkpoint_every_records: Optional[int] = None,
        checkpoint_every_bytes: Optional[int] = None,
        retain_checkpoints: int = 3,
        opener: Opener = open,
    ) -> "DurableReservoir":
        """Rebuild the engine from the newest valid checkpoint + WAL tail.

        Torn or CRC-corrupt WAL tails are detected and *truncated* (never
        replayed); duplicate tail records are dropped by sequence number;
        a damaged newest checkpoint falls back to the previous retained
        one, whose WAL generations are still on disk. Details land in
        :attr:`last_recovery`.
        """
        directory = Path(directory)
        loaded = load_latest_checkpoint(directory)
        if loaded is None:
            raise ValueError(
                f"no valid checkpoint in {directory}; nothing to recover"
            )
        _seq_name, payload = loaded
        schema = payload.get("schema")
        if schema != PERSIST_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema version {schema!r} is not supported by "
                f"this library (expected {PERSIST_SCHEMA_VERSION})"
            )
        kind = payload["kind"]
        if kind == "sharded":
            from repro.shard import ShardedReservoir

            sampler = ShardedReservoir.from_state_dict(payload["sampler"])
        else:
            sampler = from_state_dict(payload["sampler"])
        engine = cls(
            sampler,
            directory,
            wal_sync=wal_sync,
            checkpoint_every_records=checkpoint_every_records,
            checkpoint_every_bytes=checkpoint_every_bytes,
            retain_checkpoints=retain_checkpoints,
            opener=opener,
            _recovering=True,
        )
        info = RecoveryInfo(
            checkpoint_seq=int(payload["record_seq"]),
            generation=int(payload["generation"]),
        )
        engine._seq = int(payload["record_seq"])
        engine._generation = int(payload["generation"])
        engine._replay(payload, info)
        engine.last_recovery = info
        return engine

    def _segments_for(self, stream: str, from_generation: int):
        """Existing segments of one stream, ascending generation."""
        out = []
        for path in self.directory.glob(f"wal-{stream}-*.log"):
            match = _SEGMENT_RE.match(path.name)
            if match and int(match.group("gen")) >= from_generation:
                out.append((int(match.group("gen")), path))
        return sorted(out)

    def _replay(self, payload: Dict[str, Any], info: RecoveryInfo) -> None:
        min_seq = int(payload["record_seq"])
        from_gen = int(payload["generation"])
        max_gen = from_gen
        tail_records = 0
        tail_bytes = 0
        for w, stream in enumerate(self._streams):
            segments = self._segments_for(stream, from_gen)
            for gen, path in segments:
                result = scan_wal(path, min_seq=min_seq)
                self._apply_records(w, result)
                info.records_replayed += len(result.records)
                info.duplicates_dropped += len(result.duplicates)
                if result.records:
                    self._seq = max(self._seq, result.records[-1][0])
                max_gen = max(max_gen, gen)
                if result.damage is not None:
                    truncate_to(path, result.valid_bytes)
                    info.truncated_tails.append(
                        (str(path), result.damage.reason)
                    )
                    # Everything after the first damage in a stream is
                    # untrusted; do not replay later generations of it.
                    break
        # Resume appending into the newest generation present on disk.
        self._generation = max_gen
        for stream in self._streams:
            current = self.directory / _segment_name(stream, max_gen)
            tail = scan_wal(current, min_seq=-1)
            tail_records += len(tail.records) + len(tail.duplicates)
            tail_bytes += tail.valid_bytes
        self._records_in_generation = tail_records
        self._bytes_in_generation = tail_bytes
        self._open_writers()
        if self._sharded:
            self._finish_sharded_replay()

    def _apply_records(self, w: int, result: ScanResult) -> None:
        """Feed replayed records through the sampler's real ingest path."""
        if self._sharded:
            from repro.shard.worker import _object_array

            worker = self.sampler._workers[w]
            for _seq, (globs, payloads) in result.records:
                worker.ingest(
                    _object_array(payloads),
                    np.asarray(globs, dtype=np.int64),
                )
                self._sharded_max_glob = max(
                    getattr(self, "_sharded_max_glob", 0), int(globs[-1])
                )
        else:
            for _seq, record in result.records:
                op, data = record
                if op == "o":
                    self.sampler.offer(data)
                elif op == "b":
                    self.sampler.offer_many(data)
                else:
                    raise ValueError(f"unknown WAL record op {op!r}")

    def _finish_sharded_replay(self) -> None:
        """Advance the facade clock past every replayed global index."""
        max_glob = getattr(self, "_sharded_max_glob", 0)
        if max_glob > self.sampler.t:
            self.sampler.t = max_glob

    # ------------------------------------------------------------------ #
    # Passthrough inspection
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        return self.sampler.capacity

    @property
    def t(self) -> int:
        return self.sampler.t

    @property
    def size(self) -> int:
        return self.sampler.size

    def payloads(self) -> List[Any]:
        return self.sampler.payloads()

    def entries(self):
        return self.sampler.entries()

    def state_dict(self) -> Dict[str, Any]:
        return self.sampler.state_dict()

    def __len__(self) -> int:
        return self.sampler.size

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("DurableReservoir is closed")

    def close(self, final_checkpoint: bool = True) -> None:
        """Checkpoint (by default), unhook, and release file handles."""
        if self._closed:
            return
        if final_checkpoint:
            self.checkpoint()
        self._unhook_dispatch()
        self._close_writers()
        self._closed = True

    def __enter__(self) -> "DurableReservoir":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Crash-path exits skip the final checkpoint: recovery must see
        # exactly what the WAL captured, not a rescue snapshot.
        self.close(final_checkpoint=exc_type is None)

    def __repr__(self) -> str:
        return (
            f"DurableReservoir({type(self.sampler).__name__}, "
            f"dir={str(self.directory)!r}, sync={self.wal_sync!r}, "
            f"seq={self._seq}, generation={self._generation})"
        )
