"""Fault-injection harness for the durability layer.

Two complementary attack surfaces:

* **In-flight faults** — :class:`CrashingOpener` is a pluggable
  ``opener(path, mode)`` factory (the hook every
  :class:`~repro.persist.wal.WalWriter` accepts) whose
  :class:`FaultyFile` wrapper counts bytes across all files it opened
  and simulates a process kill mid-write: once the byte budget is
  exhausted it writes only the prefix that "made it to disk" (a torn
  write) and raises :class:`SimulatedCrash`. Sweeping the budget over
  every byte offset of a run exercises a crash at every possible write
  boundary, including between an append and its fsync.

* **At-rest corruption** — helpers that damage real on-disk state after
  a clean shutdown: tear the last record's tail bytes, flip a payload
  byte so the CRC fails, append a duplicate of the tail record, or
  truncate a checkpoint file. These model kernel-level loss and bit
  rot that no userspace write path can produce deliberately.

Every fault in this module has a matching recovery assertion in
``tests/test_persist_recovery.py``: recovery must detect the damage,
truncate (not replay) the poisoned tail, and land byte-identical to the
last durable prefix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Optional, Union

from repro.persist.wal import last_record_span

__all__ = [
    "SimulatedCrash",
    "FaultyFile",
    "CrashingOpener",
    "tear_tail_bytes",
    "corrupt_tail_record_crc",
    "duplicate_tail_record",
    "truncate_file",
    "FAULT_NAMES",
]

PathLike = Union[str, Path]

#: The fault vocabulary the recovery test sweep iterates over.
FAULT_NAMES = (
    "torn_write",
    "truncated_checkpoint",
    "corrupted_crc",
    "duplicate_tail_record",
    "crash_between_fsync",
)


class SimulatedCrash(RuntimeError):
    """Raised by :class:`FaultyFile` at the injected kill point."""


class FaultyFile:
    """File-like proxy that tears a write and "kills the process".

    Forwards everything to the wrapped file until the shared byte budget
    of its :class:`CrashingOpener` runs out; the fatal write persists
    only its in-budget prefix before :class:`SimulatedCrash` propagates,
    so the on-disk state is exactly what a mid-``write(2)`` kill leaves.
    """

    def __init__(self, inner: Any, owner: "CrashingOpener") -> None:
        self._inner = inner
        self._owner = owner

    def write(self, data: bytes) -> int:
        budget = self._owner.remaining
        if budget is None or len(data) <= budget:
            if budget is not None:
                self._owner.remaining = budget - len(data)
            return self._inner.write(data)
        # Torn write: only the first `budget` bytes reach the file.
        self._owner.remaining = 0
        if budget > 0:
            self._inner.write(data[:budget])
        self._inner.flush()
        raise SimulatedCrash(
            f"simulated kill after {self._owner.crash_after_bytes} bytes "
            f"(torn write of {budget}/{len(data)} bytes)"
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc) -> None:
        self._inner.close()


class CrashingOpener:
    """``opener(path, mode)`` that kills the run after N written bytes.

    ``crash_after_bytes=None`` disables the fault (pass-through), which
    lets one test harness drive both the clean and the crashed run.
    """

    def __init__(self, crash_after_bytes: Optional[int] = None) -> None:
        self.crash_after_bytes = crash_after_bytes
        self.remaining = crash_after_bytes
        self.opened: List[Path] = []

    def __call__(self, path: PathLike, mode: str) -> Any:
        self.opened.append(Path(path))
        inner = open(path, mode)
        if self.remaining is None:
            return inner
        return FaultyFile(inner, self)


def tear_tail_bytes(path: PathLike, drop: int) -> int:
    """Truncate the last ``drop`` bytes of ``path`` (a torn tail write).

    Returns the new size. ``drop`` larger than the file empties it.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = max(0, size - max(0, int(drop)))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def corrupt_tail_record_crc(path: PathLike) -> bool:
    """Flip one payload byte of the last WAL record so its CRC fails.

    Returns ``False`` when the file holds no complete record to damage.
    """
    span = last_record_span(path)
    if span is None:
        return False
    offset, size = span
    with open(path, "r+b") as fh:
        fh.seek(offset + size - 1)  # last payload byte
        byte = fh.read(1)
        fh.seek(offset + size - 1)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return True


def duplicate_tail_record(path: PathLike) -> bool:
    """Re-append a byte-exact copy of the last WAL record.

    Models a crash between a completed append and its acknowledgement
    followed by a client retry; the reader's sequence-number check must
    drop the duplicate instead of replaying it twice.
    """
    span = last_record_span(path)
    if span is None:
        return False
    offset, size = span
    data = Path(path).read_bytes()
    with open(path, "ab") as fh:
        fh.write(data[offset : offset + size])
    return True


def truncate_file(path: PathLike, keep_bytes: int) -> int:
    """Truncate any file (e.g. a checkpoint) to ``keep_bytes``."""
    path = Path(path)
    keep = max(0, min(int(keep_bytes), path.stat().st_size))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep
