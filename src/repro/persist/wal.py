"""Append-only write-ahead log with CRC-framed, length-prefixed records.

On-disk format
--------------

A WAL *segment* is a flat file of back-to-back records. Each record is::

    +--------+---------+------+-------------+-------------+----------+
    | magic  | version | kind | seq (int64) | len (uint32)| crc (u32)|
    | 2 B    | 1 B     | 1 B  | 8 B         | 4 B         | 4 B      |
    +--------+---------+------+-------------+-------------+----------+
    | payload (len bytes, pickled object, CRC-32 over these bytes)   |
    +----------------------------------------------------------------+

All integers are little-endian. ``seq`` is a strictly increasing record
sequence number assigned by the writer; the reader uses it to drop
duplicate tail records (a crash between a completed append and its
acknowledgement can legitimately leave the same record twice).

The reader is *tolerant*: a torn header, a short payload, a magic or CRC
mismatch, or a non-monotonic garbage tail all terminate the scan at the
last fully valid record instead of raising, and report how many clean
bytes precede the damage so the caller can truncate the tail
(:func:`truncate_to`). This is the standard WAL recovery contract — a
crash mid-append must never poison the records that were already
durable.

Fsync policy
------------

``WalWriter(sync=...)`` accepts:

* ``"always"`` — flush + ``os.fsync`` after every append. Maximum
  durability, one fsync per record.
* ``"batch"`` (default) — flush to the OS after every append, fsync only
  at :meth:`WalWriter.sync` points (the engine syncs at every
  checkpoint). A kernel crash can lose the un-synced tail; the tolerant
  reader recovers to the last durable record.
* ``"never"`` — flush only; no explicit fsync (benchmark / test mode).

Writers accept an ``opener`` callable (``opener(path, mode) -> file``)
so the fault-injection harness (:mod:`repro.persist.faults`) can wrap
the file object and tear or drop writes at byte granularity.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

__all__ = [
    "WAL_VERSION",
    "RECORD_MAGIC",
    "HEADER",
    "WalDamage",
    "ScanResult",
    "WalWriter",
    "encode_record",
    "scan_wal",
    "truncate_to",
    "last_record_span",
    "SYNC_POLICIES",
]

PathLike = Union[str, Path]
Opener = Callable[[PathLike, str], Any]

#: Current WAL record-framing schema version.
WAL_VERSION = 1

#: Two-byte frame marker opening every record.
RECORD_MAGIC = b"\xabW"

#: magic(2s) version(B) kind(B) seq(q) payload_len(I) payload_crc(I)
HEADER = struct.Struct("<2sBBqII")

#: Record kind byte: a pickled Python object (the only kind in v1).
KIND_PICKLE = 0

SYNC_POLICIES = ("always", "batch", "never")

#: Refuse to allocate absurd buffers when a corrupt length field claims
#: a multi-gigabyte payload; anything larger than this is tail damage.
_MAX_PAYLOAD = 1 << 30


@dataclass(frozen=True)
class WalDamage:
    """Description of why a scan stopped before end-of-file."""

    reason: str  # "torn_header" | "torn_payload" | "bad_magic" |
    # "bad_crc" | "bad_version" | "bad_length"
    offset: int  # byte offset of the first damaged record


@dataclass
class ScanResult:
    """Outcome of a tolerant segment scan."""

    #: Decoded ``(seq, payload_object)`` pairs, duplicates dropped.
    records: List[Tuple[int, Any]] = field(default_factory=list)
    #: Bytes of clean prefix (valid records end exactly here).
    valid_bytes: int = 0
    #: ``None`` for a clean file, else why the scan stopped early.
    damage: Optional[WalDamage] = None
    #: Sequence numbers of dropped duplicate tail records.
    duplicates: List[int] = field(default_factory=list)


def encode_record(seq: int, obj: Any) -> bytes:
    """Frame one object as WAL record bytes."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = HEADER.pack(
        RECORD_MAGIC,
        WAL_VERSION,
        KIND_PICKLE,
        int(seq),
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


class WalWriter:
    """Appends framed records to one segment file.

    Parameters
    ----------
    path:
        Segment file; created if missing, appended to if present.
    sync:
        Fsync policy (see module docstring).
    opener:
        File factory, ``opener(path, mode) -> file-like``; the default is
        :func:`open`. Fault-injection wrappers plug in here.
    """

    def __init__(
        self,
        path: PathLike,
        sync: str = "batch",
        opener: Opener = open,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}; choose from {SYNC_POLICIES}"
            )
        self.path = Path(path)
        self.sync_policy = sync
        self._file = opener(self.path, "ab")
        self.bytes_written = self._file.tell() if self._file.seekable() else 0
        self.records_written = 0

    def append(self, seq: int, obj: Any) -> int:
        """Append one record; returns its encoded size in bytes."""
        frame = encode_record(seq, obj)
        self._file.write(frame)
        self._file.flush()
        if self.sync_policy == "always":
            os.fsync(self._file.fileno())
        self.bytes_written += len(frame)
        self.records_written += 1
        return len(frame)

    def sync(self) -> None:
        """Force bytes to stable storage (no-op under ``"never"``)."""
        self._file.flush()
        if self.sync_policy != "never":
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is None:
            return
        try:
            self.sync()
        finally:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_wal(path: PathLike, min_seq: int = -1) -> ScanResult:
    """Tolerantly scan a segment, returning valid records and damage info.

    ``min_seq`` filters out records with ``seq <= min_seq`` (already
    covered by a checkpoint); they are decoded and skipped. Within the
    file, a record whose ``seq`` does not exceed its predecessor's is a
    duplicate tail (crash-between-append-and-ack) and is dropped.
    """
    path = Path(path)
    result = ScanResult()
    if not path.exists():
        return result
    data = path.read_bytes()
    offset = 0
    last_seq: Optional[int] = None
    while offset < len(data):
        if offset + HEADER.size > len(data):
            result.damage = WalDamage("torn_header", offset)
            break
        magic, version, kind, seq, length, crc = HEADER.unpack_from(
            data, offset
        )
        if magic != RECORD_MAGIC:
            result.damage = WalDamage("bad_magic", offset)
            break
        if version != WAL_VERSION:
            result.damage = WalDamage("bad_version", offset)
            break
        if kind != KIND_PICKLE or length > _MAX_PAYLOAD:
            result.damage = WalDamage("bad_length", offset)
            break
        start = offset + HEADER.size
        end = start + length
        if end > len(data):
            result.damage = WalDamage("torn_payload", offset)
            break
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            result.damage = WalDamage("bad_crc", offset)
            break
        if last_seq is not None and seq <= last_seq:
            result.duplicates.append(seq)
        else:
            last_seq = seq
            if seq > min_seq:
                result.records.append((seq, pickle.loads(payload)))
        offset = end
        result.valid_bytes = offset
    return result


def truncate_to(path: PathLike, valid_bytes: int) -> bool:
    """Drop a damaged tail, keeping exactly ``valid_bytes``; True if cut."""
    path = Path(path)
    if not path.exists() or path.stat().st_size <= valid_bytes:
        return False
    with open(path, "r+b") as fh:
        fh.truncate(valid_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    return True


def last_record_span(path: PathLike) -> Optional[Tuple[int, int]]:
    """``(offset, size)`` of the last fully valid record, or ``None``.

    Used by the fault harness to surgically corrupt or duplicate the
    tail record of a real segment.
    """
    path = Path(path)
    if not path.exists():
        return None
    data = path.read_bytes()
    offset = 0
    span: Optional[Tuple[int, int]] = None
    while offset + HEADER.size <= len(data):
        magic, version, kind, _seq, length, crc = HEADER.unpack_from(
            data, offset
        )
        end = offset + HEADER.size + length
        if (
            magic != RECORD_MAGIC
            or version != WAL_VERSION
            or kind != KIND_PICKLE
            or length > _MAX_PAYLOAD
            or end > len(data)
        ):
            break
        payload = data[offset + HEADER.size : end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        span = (offset, end - offset)
        offset = end
    return span
