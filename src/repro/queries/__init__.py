"""Query estimation engine (Section 4): specs, oracle, estimators, errors."""

from repro.queries.errors import (
    average_absolute_error,
    nan_penalized_error,
    relative_error,
)
from repro.queries.estimator import EstimateResult, QueryEstimator
from repro.queries.exact import StreamHistory
from repro.queries.groupby import GroupByEstimator, GroupEstimate, label_key
from repro.queries.histogram import (
    HistogramEstimate,
    estimate_histogram,
    estimate_quantiles,
    exact_histogram,
    exact_quantiles,
)
from repro.queries.inclusion import (
    exact_variance,
    exponential_model,
    space_constrained_model,
    unbiased_model,
)
from repro.queries.variance_analysis import (
    count_variance_exponential,
    count_variance_space_constrained,
    count_variance_unbiased,
    crossover_horizon,
)
from repro.queries.spec import (
    LinearQuery,
    RatioQuery,
    average_query,
    class_count_query,
    class_distribution_query,
    count_query,
    range_count_query,
    range_selectivity_query,
    sum_query,
)

__all__ = [
    "LinearQuery",
    "RatioQuery",
    "count_query",
    "sum_query",
    "average_query",
    "range_count_query",
    "range_selectivity_query",
    "class_count_query",
    "class_distribution_query",
    "StreamHistory",
    "QueryEstimator",
    "EstimateResult",
    "GroupByEstimator",
    "GroupEstimate",
    "label_key",
    "HistogramEstimate",
    "estimate_histogram",
    "estimate_quantiles",
    "exact_histogram",
    "exact_quantiles",
    "average_absolute_error",
    "relative_error",
    "nan_penalized_error",
    "unbiased_model",
    "exponential_model",
    "space_constrained_model",
    "exact_variance",
    "count_variance_unbiased",
    "count_variance_exponential",
    "count_variance_space_constrained",
    "crossover_horizon",
]
