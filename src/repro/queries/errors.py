"""Error metrics used by the paper's evaluation.

The experiments report the *average absolute error*: for vector-valued
queries (per-dimension averages, class distributions) the mean of
componentwise absolute deviations — Equation 21 for class distributions:
``er = sum_i |f_i - f'_i| / l``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "average_absolute_error",
    "relative_error",
    "nan_penalized_error",
]


def average_absolute_error(truth: np.ndarray, estimate: np.ndarray) -> float:
    """Mean componentwise ``|truth - estimate|`` (Equation 21).

    ``nan`` components of the estimate (null results from an empty
    relevant sample) are treated as maximally wrong *for fraction-valued
    queries* by :func:`nan_penalized_error`; here they propagate to ``nan``
    so callers notice them.
    """
    truth = np.atleast_1d(np.asarray(truth, dtype=np.float64))
    estimate = np.atleast_1d(np.asarray(estimate, dtype=np.float64))
    if truth.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: truth {truth.shape} vs estimate {estimate.shape}"
        )
    return float(np.mean(np.abs(truth - estimate)))


def relative_error(truth: np.ndarray, estimate: np.ndarray) -> float:
    """Mean componentwise ``|truth - estimate| / max(|truth|, eps)``."""
    truth = np.atleast_1d(np.asarray(truth, dtype=np.float64))
    estimate = np.atleast_1d(np.asarray(estimate, dtype=np.float64))
    if truth.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: truth {truth.shape} vs estimate {estimate.shape}"
        )
    denom = np.maximum(np.abs(truth), 1e-12)
    return float(np.mean(np.abs(truth - estimate) / denom))


def nan_penalized_error(
    truth: np.ndarray,
    estimate: np.ndarray,
    penalty: Optional[float] = None,
) -> float:
    """Average absolute error with ``nan`` estimates replaced by a penalty.

    A ``nan`` estimate means the sample had *no relevant points* — the
    paper's "null or wildly inaccurate result". For fraction-valued truth
    the natural penalty is ``|truth - 0|`` plus nothing — i.e. we replace
    the estimate by 0 (``penalty=None``); a fixed ``penalty`` value
    substitutes that error magnitude instead.
    """
    truth = np.atleast_1d(np.asarray(truth, dtype=np.float64))
    estimate = np.atleast_1d(np.asarray(estimate, dtype=np.float64)).copy()
    if truth.shape != estimate.shape:
        raise ValueError(
            f"shape mismatch: truth {truth.shape} vs estimate {estimate.shape}"
        )
    bad = ~np.isfinite(estimate)
    if penalty is None:
        estimate[bad] = 0.0
        return float(np.mean(np.abs(truth - estimate)))
    errors = np.abs(truth - estimate)
    errors[bad] = penalty
    return float(np.mean(errors))
