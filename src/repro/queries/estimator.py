"""Sample-based query estimation (Section 4 of the paper).

Given a reservoir and the analytical inclusion probabilities ``p(r, t)`` of
its maintenance policy, any linear query ``G(t) = sum_r c_r h(X_r)`` is
estimated by the Horvitz-Thompson statistic over the residents,

    H(t) = sum_{r in sample} c_r h(X_r) / p(r, t)         (Equation 18)

which is unbiased: ``E[H(t)] = G(t)`` (Observation 4.1), with variance
``Var[H(t)] = sum_r c_r^2 h(X_r)^2 (1/p(r, t) - 1)`` (Lemma 4.1).

For *normalized* queries (averages, fractions — what the experiments
actually plot) we use the self-normalized (Hajek) ratio of two HT
estimates. It is only asymptotically unbiased but dramatically better
behaved: fraction estimates stay in ``[0, 1]`` and the unknown
proportionality constant of the inclusion model cancels, which is what
makes estimation with :class:`~repro.core.variable.VariableReservoir`
(whose constant is the current ``p_in``) robust.

The reservoir must store :class:`~repro.streams.point.StreamPoint` payloads
(arrival indices come from the reservoir's own bookkeeping).

Evaluation is columnar: estimates run over the sampler's cached
struct-of-arrays resident view and the queries' vectorized
``values_batch`` kernels, so a checkpoint that evaluates many queries
pays one payload materialization and zero Python-per-resident work. The
per-point path survives as the generic fallback for custom queries (and
as the reference the columnar path is tested against, bit for bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.queries.spec import LinearQuery, RatioQuery

__all__ = ["QueryEstimator", "EstimateResult"]


@dataclass(frozen=True)
class EstimateResult:
    """An estimate plus its design-based uncertainty.

    Attributes
    ----------
    estimate:
        The HT (linear query) or Hajek (ratio query) estimate vector.
    variance:
        HT variance estimate per component (Lemma 4.1, estimated from the
        sample); ``None`` for ratio queries, whose design variance has no
        closed form at this level.
    sample_support:
        Number of residents with non-zero coefficient — the "relevant
        sample size" whose shrinkage for small horizons is the paper's
        core complaint about unbiased sampling.
    """

    estimate: np.ndarray
    variance: Optional[np.ndarray]
    sample_support: int

    @property
    def std_error(self) -> Optional[np.ndarray]:
        """Componentwise standard error, when variance is available."""
        if self.variance is None:
            return None
        return np.sqrt(np.maximum(self.variance, 0.0))


class QueryEstimator:
    """Evaluates queries against a reservoir sample.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.reservoir.ReservoirSampler` (or the
        sharded facade) whose payloads are :class:`StreamPoint` objects.
    columnar:
        When ``True`` (the default) estimates run over the sampler's
        cached struct-of-arrays resident view
        (:meth:`~repro.core.reservoir.ReservoirSampler.resident_columns`)
        with the queries' vectorized ``values_batch`` kernels — no
        Python-per-resident work for the builder queries. ``False`` forces
        the per-point reference path (one ``query.value`` call per
        resident); both paths produce bitwise-identical estimates and
        exist separately so equivalence tests and benchmarks can compare
        them.
    """

    def __init__(self, sampler: ReservoirSampler, columnar: bool = True) -> None:
        self.sampler = sampler
        self.columnar = bool(columnar)

    def _sample_parts(self, query: LinearQuery, t: int):
        """Common plumbing: per-resident (c, h, p) restricted to support."""
        if not self.columnar:
            return self._sample_parts_reference(query, t)
        try:
            columns = self.sampler.resident_columns()
        except AttributeError:
            # Non-StreamPoint payloads (e.g. the conformance specs drive
            # count queries over raw ints). The columnar view cannot
            # materialize, but value-agnostic queries still evaluate
            # through the per-point path — and value-touching ones raise
            # the same AttributeError there, as before.
            return self._sample_parts_reference(query, t)
        if columns.size == 0:
            return None
        coeffs = query.coefficients(columns.arrivals, t)
        support = np.flatnonzero(coeffs)
        if support.size == 0:
            return None
        arrivals = columns.arrivals[support]
        coeffs = coeffs[support]
        values = query.values_matrix(
            columns.values[support], columns.labels[support], arrivals
        )
        probs = self.sampler.inclusion_probabilities(arrivals, t)
        return coeffs, values, probs

    def _sample_parts_reference(self, query: LinearQuery, t: int):
        """Per-point reference path: one ``query.value`` call per resident.

        Kept as the generic fallback and the ground truth the columnar
        path is regression-tested against.
        """
        arrivals = self.sampler.arrival_indices()
        if arrivals.size == 0:
            return None
        coeffs = query.coefficients(arrivals, t)
        support = coeffs != 0.0
        if not np.any(support):
            return None
        arrivals = arrivals[support]
        coeffs = coeffs[support]
        payloads = [
            p for p, keep in zip(self.sampler.payloads(), support) if keep
        ]
        values = np.vstack([query.value(point) for point in payloads])
        probs = self.sampler.inclusion_probabilities(arrivals, t)
        return coeffs, values, probs

    def estimate(
        self,
        query: Union[LinearQuery, RatioQuery],
        t: Optional[int] = None,
    ) -> EstimateResult:
        """Estimate ``query`` from the current reservoir contents.

        ``t`` defaults to the sampler's current stream position. Empty
        support (no resident inside the horizon) yields a zero estimate
        for linear queries and ``nan`` for ratio queries — the latter is
        the "null result" failure mode the paper attributes to unbiased
        samples at short horizons.
        """
        t = self.sampler.t if t is None else int(t)
        if t < self.sampler.t:
            # The reservoir holds its *current* state; its residents and
            # inclusion model cannot reconstruct a past sample.
            raise ValueError(
                f"cannot estimate as of t={t}: the reservoir has advanced "
                f"to t={self.sampler.t}. Evaluate at checkpoints while "
                "streaming instead."
            )
        if isinstance(query, RatioQuery):
            return self._estimate_ratio(query, t)
        parts = self._sample_parts(query, t)
        if parts is None:
            return EstimateResult(
                np.zeros(query.output_dim), np.zeros(query.output_dim), 0
            )
        coeffs, values, probs = parts
        weights = coeffs / probs
        estimate = weights @ values
        # HT variance estimator: sum (c h)^2 (1 - p) / p^2 over the sample.
        # Dividing the population term (c h)^2 (1 - p) / p by each sampled
        # point's own inclusion probability makes the sample sum unbiased
        # for Lemma 4.1's design variance.
        var_terms = (coeffs[:, None] * values) ** 2 * (
            (1.0 - probs) / probs**2
        )[:, None]
        variance = var_terms.sum(axis=0)
        return EstimateResult(estimate, variance, int(coeffs.size))

    def _estimate_ratio(self, query: RatioQuery, t: int) -> EstimateResult:
        """Self-normalized (Hajek) estimate of a ratio query."""
        num_parts = self._sample_parts(query.numerator, t)
        den_parts = self._sample_parts(query.denominator, t)
        if num_parts is None or den_parts is None:
            return EstimateResult(
                np.full(query.numerator.output_dim, np.nan), None, 0
            )
        n_coeffs, n_values, n_probs = num_parts
        d_coeffs, d_values, d_probs = den_parts
        numerator = (n_coeffs / n_probs) @ n_values
        denominator = (d_coeffs / d_probs) @ d_values
        support = int(d_coeffs.size)
        with np.errstate(divide="ignore", invalid="ignore"):
            estimate = np.where(
                denominator != 0.0, numerator / denominator, np.nan
            )
        return EstimateResult(estimate, None, support)

    def relevant_sample_size(self, horizon: int, t: Optional[int] = None) -> int:
        """Residents inside the last-``horizon`` window.

        For an unbiased reservoir this is ~``n * horizon / t`` and shrinks
        as the stream grows; for the exponential reservoir it stays at
        ~``n (1 - e^{-lambda h})`` forever — the quantitative heart of the
        paper's argument.
        """
        t = self.sampler.t if t is None else int(t)
        ages = t - self.sampler.arrival_indices()
        return int(np.sum((ages >= 0) & (ages < horizon)))
