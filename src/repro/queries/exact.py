"""Exact (ground-truth) query evaluation over the full stream history.

Experiments need the true value ``G(t)`` of each query to measure estimator
error. :class:`StreamHistory` retains every observed point in growing
columnar buffers (values matrix + labels + a dense arrival axis) and
answers any :class:`~repro.queries.spec.LinearQuery` or
:class:`~repro.queries.spec.RatioQuery` exactly with vectorized slicing.

This is the *evaluation oracle*, not part of the sampling system — it
deliberately spends the O(t) memory that reservoir sampling exists to
avoid.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.queries.spec import LinearQuery, RatioQuery
from repro.streams.point import StreamPoint

__all__ = ["StreamHistory"]


class StreamHistory:
    """Columnar full-history store with exact query evaluation.

    Parameters
    ----------
    dimensions:
        Feature dimensionality of the stream.
    capacity_hint:
        Initial buffer allocation (grows geometrically as needed).
    dtype:
        Storage dtype for feature values; ``float32`` halves memory for
        long streams at negligible precision cost for error measurement.
    """

    def __init__(
        self,
        dimensions: int,
        capacity_hint: int = 4096,
        dtype: np.dtype = np.float64,
    ) -> None:
        dimensions = int(dimensions)
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        self.dimensions = dimensions
        self._values = np.empty((max(16, capacity_hint), dimensions), dtype=dtype)
        self._labels = np.empty(max(16, capacity_hint), dtype=np.int64)
        self.t = 0

    def observe(self, point: StreamPoint) -> None:
        """Append one point; ``point.index`` must be the next arrival."""
        if point.index != self.t + 1:
            raise ValueError(
                f"out-of-order observation: expected index {self.t + 1}, "
                f"got {point.index}"
            )
        if point.dimensions != self.dimensions:
            raise ValueError(
                f"dimension mismatch: expected {self.dimensions}, "
                f"got {point.dimensions}"
            )
        if self.t >= self._values.shape[0]:
            self._grow()
        self._values[self.t] = point.values
        self._labels[self.t] = -1 if point.label is None else point.label
        self.t += 1

    def observe_all(self, stream: Iterable[StreamPoint]) -> int:
        """Observe every point of ``stream``; return the count."""
        before = self.t
        for point in stream:
            self.observe(point)
        return self.t - before

    def _grow(self) -> None:
        new_cap = self._values.shape[0] * 2
        values = np.empty((new_cap, self.dimensions), dtype=self._values.dtype)
        labels = np.empty(new_cap, dtype=np.int64)
        values[: self.t] = self._values[: self.t]
        labels[: self.t] = self._labels[: self.t]
        self._values = values
        self._labels = labels

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def values(self) -> np.ndarray:
        """All observed feature vectors, shape ``(t, dimensions)`` (view)."""
        return self._values[: self.t]

    def labels(self) -> np.ndarray:
        """All observed labels (``-1`` where unlabeled) (view)."""
        return self._labels[: self.t]

    def horizon_bounds(self, horizon: Optional[int], t: Optional[int] = None):
        """Row range ``[start, stop)`` covering the query horizon at ``t``."""
        t = self.t if t is None else int(t)
        if not 0 <= t <= self.t:
            raise ValueError(f"t must lie in [0, {self.t}], got {t}")
        if horizon is None:
            return 0, t
        return max(0, t - horizon), t

    # ------------------------------------------------------------------ #
    # Exact evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        query: Union[LinearQuery, RatioQuery],
        t: Optional[int] = None,
    ) -> np.ndarray:
        """Exact value of ``query`` at stream position ``t``.

        Linear queries return the raw vector ``G(t)``; ratio queries return
        the normalized vector (``nan`` components when the denominator is
        zero, i.e. an empty horizon).
        """
        if isinstance(query, RatioQuery):
            num = self.evaluate(query.numerator, t)
            den = self.evaluate(query.denominator, t)
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(den != 0.0, num / den, np.nan)
        start, stop = self.horizon_bounds(query.horizon, t)
        if stop <= start:
            return np.zeros(query.output_dim)
        return self._evaluate_linear(query, start, stop)

    def _evaluate_linear(
        self, query: LinearQuery, start: int, stop: int
    ) -> np.ndarray:
        """Vectorized fast paths for the builder queries, generic fallback."""
        rows = self._values[start:stop]
        name = query.name
        if name == "count":
            return np.array([float(stop - start)])
        if name == "sum" and query.dims is not None:
            return (
                rows[:, list(query.dims)].sum(axis=0).astype(np.float64)
            )
        if name == "range_count" and query.dims is not None:
            sub = rows[:, list(query.dims)]
            low = np.asarray(query.low)
            high = np.asarray(query.high)
            inside = np.all((sub >= low) & (sub <= high), axis=1)
            return np.array([float(inside.sum())])
        if name == "class_count":
            labels = self._labels[start:stop]
            counts = np.bincount(
                labels[labels >= 0], minlength=query.output_dim
            ).astype(np.float64)
            return counts[: query.output_dim]
        # Generic fallback: apply h row by row.
        total = np.zeros(query.output_dim)
        for i in range(start, stop):
            point = StreamPoint(
                i + 1,
                self._values[i].astype(np.float64),
                None if self._labels[i] < 0 else int(self._labels[i]),
            )
            total += query.value(point)
        return total
