"""Exact (ground-truth) query evaluation over the full stream history.

Experiments need the true value ``G(t)`` of each query to measure estimator
error. :class:`StreamHistory` retains every observed point in growing
columnar buffers (values matrix + labels + a dense arrival axis) and
answers any :class:`~repro.queries.spec.LinearQuery` or
:class:`~repro.queries.spec.RatioQuery` exactly.

Evaluation is *incremental*: ``observe`` maintains per-dimension prefix
sums and per-class arrival positions alongside the raw buffers, so the
``count`` / ``sum`` / ``class_count`` (and therefore ``average`` /
``class_distribution``) truth at any checkpoint costs O(dimensions)
instead of O(horizon). The figure harness evaluates at dozens of
checkpoints over hundred-thousand-point streams; without the prefix
structures the oracle rescans its whole horizon every time and dominates
the run. ``range_count`` and custom queries retain the vectorized /
per-point scan fallback (:meth:`StreamHistory.evaluate_scan` keeps that
path addressable as the reference the incremental answers are tested
against).

This is the *evaluation oracle*, not part of the sampling system — it
deliberately spends the O(t) memory that reservoir sampling exists to
avoid.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.queries.spec import LinearQuery, RatioQuery
from repro.streams.point import StreamPoint

__all__ = ["StreamHistory"]


class StreamHistory:
    """Columnar full-history store with exact query evaluation.

    Parameters
    ----------
    dimensions:
        Feature dimensionality of the stream.
    capacity_hint:
        Initial buffer allocation (grows geometrically as needed).
    dtype:
        Storage dtype for feature values; ``float32`` halves memory for
        long streams at negligible precision cost for error measurement.
        Prefix sums always accumulate in float64.
    """

    def __init__(
        self,
        dimensions: int,
        capacity_hint: int = 4096,
        dtype: np.dtype = np.float64,
    ) -> None:
        dimensions = int(dimensions)
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        self.dimensions = dimensions
        cap = max(16, capacity_hint)
        self._values = np.empty((cap, dimensions), dtype=dtype)
        self._labels = np.empty(cap, dtype=np.int64)
        # Incremental structures: _prefix[i] holds the per-dimension sum of
        # the first i points (float64, row 0 is zero), and _label_positions
        # maps each label to the ascending 0-based row positions at which
        # it occurred (bisect gives any window's class count in O(log t)).
        self._prefix = np.zeros((cap + 1, dimensions), dtype=np.float64)
        self._label_positions: Dict[int, List[int]] = {}
        self.t = 0

    def observe(self, point: StreamPoint) -> None:
        """Append one point; ``point.index`` must be the next arrival."""
        if point.index != self.t + 1:
            raise ValueError(
                f"out-of-order observation: expected index {self.t + 1}, "
                f"got {point.index}"
            )
        if point.dimensions != self.dimensions:
            raise ValueError(
                f"dimension mismatch: expected {self.dimensions}, "
                f"got {point.dimensions}"
            )
        if self.t >= self._values.shape[0]:
            self._grow()
        self._values[self.t] = point.values
        self._labels[self.t] = -1 if point.label is None else point.label
        np.add(
            self._prefix[self.t],
            point.values,
            out=self._prefix[self.t + 1],
        )
        if point.label is not None:
            self._label_positions.setdefault(int(point.label), []).append(
                self.t
            )
        self.t += 1

    def observe_all(self, stream: Iterable[StreamPoint]) -> int:
        """Observe every point of ``stream``; return the count."""
        before = self.t
        for point in stream:
            self.observe(point)
        return self.t - before

    def _grow(self) -> None:
        new_cap = self._values.shape[0] * 2
        values = np.empty((new_cap, self.dimensions), dtype=self._values.dtype)
        labels = np.empty(new_cap, dtype=np.int64)
        prefix = np.zeros((new_cap + 1, self.dimensions), dtype=np.float64)
        values[: self.t] = self._values[: self.t]
        labels[: self.t] = self._labels[: self.t]
        prefix[: self.t + 1] = self._prefix[: self.t + 1]
        self._values = values
        self._labels = labels
        self._prefix = prefix

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def values(self) -> np.ndarray:
        """All observed feature vectors, shape ``(t, dimensions)`` (view)."""
        return self._values[: self.t]

    def labels(self) -> np.ndarray:
        """All observed labels (``-1`` where unlabeled) (view)."""
        return self._labels[: self.t]

    def horizon_bounds(self, horizon: Optional[int], t: Optional[int] = None):
        """Row range ``[start, stop)`` covering the query horizon at ``t``."""
        t = self.t if t is None else int(t)
        if not 0 <= t <= self.t:
            raise ValueError(f"t must lie in [0, {self.t}], got {t}")
        if horizon is None:
            return 0, t
        return max(0, t - horizon), t

    # ------------------------------------------------------------------ #
    # Exact evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        query: Union[LinearQuery, RatioQuery],
        t: Optional[int] = None,
    ) -> np.ndarray:
        """Exact value of ``query`` at stream position ``t``.

        Linear queries return the raw vector ``G(t)``; ratio queries return
        the normalized vector (``nan`` components when the denominator is
        zero, i.e. an empty horizon). Builder ``count`` / ``sum`` /
        ``class_count`` queries are answered from the incremental prefix
        structures in O(dimensions); everything else falls back to the
        horizon scan.
        """
        if isinstance(query, RatioQuery):
            num = self.evaluate(query.numerator, t)
            den = self.evaluate(query.denominator, t)
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(den != 0.0, num / den, np.nan)
        start, stop = self.horizon_bounds(query.horizon, t)
        if stop <= start:
            return np.zeros(query.output_dim)
        answer = self._evaluate_incremental(query, start, stop)
        if answer is not None:
            return answer
        return self._evaluate_linear_scan(query, start, stop)

    def evaluate_scan(
        self,
        query: Union[LinearQuery, RatioQuery],
        t: Optional[int] = None,
    ) -> np.ndarray:
        """Exact value of ``query`` via the horizon scan, always.

        Reference path for the incremental answers: identical semantics to
        :meth:`evaluate`, but every linear query rescans its ``[start,
        stop)`` rows. Incremental prefix *sums* may differ from a fresh
        scan in the last float64 bits (different association order);
        counts and class counts agree exactly.
        """
        if isinstance(query, RatioQuery):
            num = self.evaluate_scan(query.numerator, t)
            den = self.evaluate_scan(query.denominator, t)
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(den != 0.0, num / den, np.nan)
        start, stop = self.horizon_bounds(query.horizon, t)
        if stop <= start:
            return np.zeros(query.output_dim)
        return self._evaluate_linear_scan(query, start, stop)

    def _evaluate_incremental(
        self, query: LinearQuery, start: int, stop: int
    ) -> Optional[np.ndarray]:
        """O(dims) builder-query answers from the prefix structures.

        Returns ``None`` for queries the incremental structures cannot
        answer (``range_count``, custom ``value`` functions) — the caller
        falls back to the scan.
        """
        name = query.name
        if name == "count":
            return np.array([float(stop - start)])
        if name == "sum" and query.dims is not None:
            totals = self._prefix[stop] - self._prefix[start]
            return totals[list(query.dims)]
        if name == "class_count":
            counts = np.zeros(query.output_dim)
            for label in range(query.output_dim):
                positions = self._label_positions.get(label)
                if positions:
                    counts[label] = bisect_left(positions, stop) - bisect_left(
                        positions, start
                    )
            return counts
        return None

    def _evaluate_linear_scan(
        self, query: LinearQuery, start: int, stop: int
    ) -> np.ndarray:
        """Vectorized fast paths for the builder queries, generic fallback."""
        rows = self._values[start:stop]
        name = query.name
        if name == "count":
            return np.array([float(stop - start)])
        if name == "sum" and query.dims is not None:
            return (
                rows[:, list(query.dims)].sum(axis=0).astype(np.float64)
            )
        if name == "range_count" and query.dims is not None:
            sub = rows[:, list(query.dims)]
            low = np.asarray(query.low)
            high = np.asarray(query.high)
            inside = np.all((sub >= low) & (sub <= high), axis=1)
            return np.array([float(inside.sum())])
        if name == "class_count":
            labels = self._labels[start:stop]
            counts = np.bincount(
                labels[labels >= 0], minlength=query.output_dim
            ).astype(np.float64)
            return counts[: query.output_dim]
        # Generic fallback: apply h row by row.
        total = np.zeros(query.output_dim)
        for i in range(start, stop):
            point = StreamPoint(
                i + 1,
                self._values[i].astype(np.float64),
                None if self._labels[i] < 0 else int(self._labels[i]),
            )
            total += query.value(point)
        return total
