"""GROUP BY estimation over reservoir samples — an extension.

The paper's queries aggregate over the whole horizon; real monitoring
dashboards slice by a key ("average packet size *per attack class* over
the last hour"). This module estimates per-group linear aggregates from a
reservoir in one pass over the residents, with the same Horvitz-Thompson /
Hajek machinery as :mod:`repro.queries.estimator`.

Groups are defined by a key function ``StreamPoint -> hashable`` (the
class label by default). Per-group results carry the group's relevant
support so callers can see which groups rest on thin evidence — rare
groups are exactly where the unbiased reservoir collapses first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.queries.spec import LinearQuery, RatioQuery
from repro.streams.point import StreamPoint

__all__ = ["GroupEstimate", "GroupByEstimator", "label_key"]


def label_key(point: StreamPoint) -> Hashable:
    """Default grouping key: the point's class label."""
    return point.label


@dataclass(frozen=True)
class GroupEstimate:
    """Estimate for one group.

    Attributes
    ----------
    key:
        The group key.
    estimate:
        HT estimate (linear query) or Hajek estimate (ratio query).
    support:
        Number of residents of this group inside the query horizon.
    weight_share:
        This group's share of the total HT mass inside the horizon — an
        estimate of the group's frequency among the queried population.
    """

    key: Hashable
    estimate: np.ndarray
    support: int
    weight_share: float


class GroupByEstimator:
    """Per-group query estimation over a reservoir.

    Parameters
    ----------
    sampler:
        Reservoir whose payloads are :class:`StreamPoint` objects.
    key:
        Grouping function; defaults to the class label.
    """

    def __init__(
        self,
        sampler: ReservoirSampler,
        key: Callable[[StreamPoint], Hashable] = label_key,
    ) -> None:
        self.sampler = sampler
        self.key = key

    def estimate(
        self,
        query: "LinearQuery | RatioQuery",
        t: Optional[int] = None,
        min_support: int = 1,
    ) -> Dict[Hashable, GroupEstimate]:
        """Estimate ``query`` separately for every group.

        Ratio queries are evaluated Hajek-style *within* each group (both
        numerator and denominator restricted to the group's residents).
        Groups with fewer than ``min_support`` relevant residents are
        omitted — their estimates would be the "null or wildly inaccurate
        result" the paper warns about.
        """
        t = self.sampler.t if t is None else int(t)
        if t < self.sampler.t:
            raise ValueError(
                f"cannot estimate as of t={t}: the reservoir has advanced "
                f"to t={self.sampler.t}"
            )
        if isinstance(query, RatioQuery):
            numerator, denominator = query.numerator, query.denominator
        else:
            numerator, denominator = query, None

        if self.key is label_key:
            groups, total_weight = self._accumulate_by_label(
                numerator, denominator, t
            )
        else:
            groups, total_weight = self._accumulate_generic(
                numerator, denominator, t
            )
        if groups is None:
            return {}

        out: Dict[Hashable, GroupEstimate] = {}
        for key, bucket in groups.items():
            if bucket["support"] < min_support:
                continue
            if denominator is None:
                estimate = bucket["num"]
            else:
                den = bucket["den"]
                estimate = (
                    bucket["num"] / den
                    if den != 0.0
                    else np.full_like(bucket["num"], np.nan)
                )
            share = (
                bucket["weight"] / total_weight if total_weight else 0.0
            )
            out[key] = GroupEstimate(
                key=key,
                estimate=estimate,
                support=bucket["support"],
                weight_share=share,
            )
        return out

    def _accumulate_by_label(
        self,
        numerator: LinearQuery,
        denominator: Optional[LinearQuery],
        t: int,
    ):
        """Vectorized accumulation for the default label grouping.

        One pass over the columnar resident view: per-resident HT weights
        and query values come from the vectorized kernels, and per-group
        totals are masked reductions over the label column. Group keys
        match the generic path (``-1`` decodes back to ``None``).
        """
        columns = self.sampler.resident_columns()
        if columns.size == 0:
            return None, 0.0
        coeffs = numerator.coefficients(columns.arrivals, t)
        support = np.flatnonzero(coeffs)
        if support.size == 0:
            return {}, 0.0
        arrivals = columns.arrivals[support]
        probs = self.sampler.inclusion_probabilities(arrivals, t)
        weights = coeffs[support] / probs
        num_rows = (
            numerator.values_matrix(
                columns.values[support], columns.labels[support], arrivals
            )
            * weights[:, None]
        )
        den_rows = None
        if denominator is not None:
            den_rows = (
                denominator.values_matrix(
                    columns.values[support],
                    columns.labels[support],
                    arrivals,
                )[:, 0]
                * weights
            )
        labels = columns.labels[support]
        groups: Dict[Hashable, Dict[str, Any]] = {}
        for lab in np.unique(labels):
            mask = labels == lab
            key = None if lab < 0 else int(lab)
            groups[key] = {
                "num": num_rows[mask].sum(axis=0),
                "den": float(den_rows[mask].sum())
                if den_rows is not None
                else 0.0,
                "support": int(mask.sum()),
                "weight": float(weights[mask].sum()),
            }
        return groups, float(weights.sum())

    def _accumulate_generic(
        self,
        numerator: LinearQuery,
        denominator: Optional[LinearQuery],
        t: int,
    ):
        """Per-point accumulation for arbitrary key functions.

        Custom keys need the payload objects, so this is the one estimator
        path that still walks residents in Python.
        """
        arrivals = self.sampler.arrival_indices()
        if arrivals.size == 0:
            return None, 0.0
        coeffs = numerator.coefficients(arrivals, t)
        probs = self.sampler.inclusion_probabilities(arrivals, t)
        payloads = self.sampler.payloads()
        groups: Dict[Hashable, Dict[str, Any]] = {}
        total_weight = 0.0
        for point, c, p in zip(payloads, coeffs, probs):
            if c == 0.0:
                continue
            weight = c / p
            total_weight += weight
            bucket = groups.setdefault(
                self.key(point),
                {"num": None, "den": 0.0, "support": 0, "weight": 0.0},
            )
            value = numerator.value(point)
            contribution = weight * value
            if bucket["num"] is None:
                bucket["num"] = contribution.astype(np.float64)
            else:
                bucket["num"] += contribution
            if denominator is not None:
                bucket["den"] += weight * float(
                    denominator.value(point)[0]
                )
            bucket["support"] += 1
            bucket["weight"] += weight
        return groups, total_weight
