"""Histogram and quantile estimation from biased reservoirs — an extension.

Selectivity estimation (the paper's Section 4/5 application) generalizes
from "fraction inside one range" to "the whole distribution": equi-width
histograms and quantiles of a dimension over a recent horizon. Both are
weighted-sample problems — each resident contributes mass ``c(r,t)/p(r,t)``
— so the reservoir supports them directly, with the same
recent-horizon advantage the paper demonstrates for single ranges.

Functions take the reservoir, a dimension, and an optional horizon, and
return normalized estimates comparable against the exact values computed
from :class:`~repro.queries.exact.StreamHistory`
(:func:`exact_histogram` / :func:`exact_quantiles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.reservoir import ReservoirSampler
from repro.queries.exact import StreamHistory

__all__ = [
    "HistogramEstimate",
    "estimate_histogram",
    "estimate_quantiles",
    "exact_histogram",
    "exact_quantiles",
]


@dataclass(frozen=True)
class HistogramEstimate:
    """An estimated (normalized) equi-width histogram.

    Attributes
    ----------
    edges:
        Bin edges, length ``bins + 1``.
    densities:
        Normalized bin masses (sum to 1 when support is non-empty).
    support:
        Number of residents contributing (inside the horizon).
    """

    edges: np.ndarray
    densities: np.ndarray
    support: int

    def total_variation(self, other: "HistogramEstimate") -> float:
        """Total-variation distance to another histogram on the same edges."""
        if self.edges.shape != other.edges.shape or not np.allclose(
            self.edges, other.edges
        ):
            raise ValueError("histograms must share bin edges")
        return 0.5 * float(np.abs(self.densities - other.densities).sum())


def _weighted_values(
    sampler: ReservoirSampler, dim: int, horizon: Optional[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-resident (value, HT weight) restricted to the horizon.

    Runs over the sampler's cached columnar resident view — one fancy
    index into the values matrix instead of a Python pass over the
    payloads.
    """
    t = sampler.t
    columns = sampler.resident_columns()
    arrivals = columns.arrivals
    if arrivals.size == 0:
        return np.empty(0), np.empty(0)
    if horizon is not None:
        keep = np.flatnonzero((t - arrivals) < horizon)
        if keep.size == 0:
            return np.empty(0), np.empty(0)
    else:
        keep = np.arange(arrivals.size)
    arrivals = arrivals[keep]
    values = columns.values[keep, dim]
    weights = 1.0 / sampler.inclusion_probabilities(arrivals, t)
    return values, weights


def estimate_histogram(
    sampler: ReservoirSampler,
    dim: int,
    edges: Sequence[float],
    horizon: Optional[int] = None,
) -> HistogramEstimate:
    """Weighted equi-anything histogram of ``dim`` over the horizon.

    ``edges`` are explicit (so estimate and truth share bins); values
    outside ``[edges[0], edges[-1]]`` are clipped into the end bins so the
    densities always describe the full population.
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array of at least 2 values")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be strictly increasing")
    values, weights = _weighted_values(sampler, dim, horizon)
    if values.size == 0:
        return HistogramEstimate(
            edges, np.zeros(edges.size - 1), 0
        )
    clipped = np.clip(values, edges[0], edges[-1])
    masses, __ = np.histogram(clipped, bins=edges, weights=weights)
    total = masses.sum()
    densities = masses / total if total > 0 else masses
    return HistogramEstimate(edges, densities, int(values.size))


def estimate_quantiles(
    sampler: ReservoirSampler,
    dim: int,
    qs: Sequence[float],
    horizon: Optional[int] = None,
) -> np.ndarray:
    """Weighted quantiles of ``dim`` over the horizon.

    Uses the weighted empirical CDF of the residents (HT weights); returns
    ``nan`` for every quantile when the horizon support is empty.
    """
    qs = np.asarray(qs, dtype=np.float64)
    if np.any(qs < 0) or np.any(qs > 1):
        raise ValueError("quantiles must lie in [0, 1]")
    values, weights = _weighted_values(sampler, dim, horizon)
    if values.size == 0:
        return np.full(qs.shape, np.nan)
    order = np.argsort(values)
    values = values[order]
    weights = weights[order]
    cdf = np.cumsum(weights)
    cdf = cdf / cdf[-1]
    return np.interp(qs, cdf, values)


def exact_histogram(
    history: StreamHistory,
    dim: int,
    edges: Sequence[float],
    horizon: Optional[int] = None,
    t: Optional[int] = None,
) -> HistogramEstimate:
    """Ground-truth histogram over the horizon, same bin convention."""
    edges = np.asarray(edges, dtype=np.float64)
    start, stop = history.horizon_bounds(horizon, t)
    column = history.values()[start:stop, dim].astype(np.float64)
    if column.size == 0:
        return HistogramEstimate(edges, np.zeros(edges.size - 1), 0)
    clipped = np.clip(column, edges[0], edges[-1])
    masses, __ = np.histogram(clipped, bins=edges)
    densities = masses / masses.sum()
    return HistogramEstimate(edges, densities, int(column.size))


def exact_quantiles(
    history: StreamHistory,
    dim: int,
    qs: Sequence[float],
    horizon: Optional[int] = None,
    t: Optional[int] = None,
) -> np.ndarray:
    """Ground-truth quantiles over the horizon."""
    qs = np.asarray(qs, dtype=np.float64)
    start, stop = history.horizon_bounds(horizon, t)
    column = history.values()[start:stop, dim].astype(np.float64)
    if column.size == 0:
        return np.full(qs.shape, np.nan)
    return np.quantile(column, qs)
