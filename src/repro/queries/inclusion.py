"""Standalone inclusion-probability models.

The samplers expose their own ``inclusion_probabilities``; this module
provides the same models as free functions keyed by parameters rather than
sampler instances, for use in tests, the Lemma 4.1 exact-variance
computation, and anywhere a model is needed without a live reservoir.

Models
------
* Property 2.1 (unbiased): ``p(r, t) = min(1, n/t)``.
* Theorem 2.2 (Algorithm 2.1): ``p(r, t) = exp(-(t - r)/n)``.
* Theorem 3.1 (Algorithm 3.1): ``p(r, t) = p_in exp(-p_in (t - r)/n)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.theory import (
    expected_inclusion_exponential,
    expected_inclusion_space_constrained,
    expected_inclusion_unbiased,
)

__all__ = [
    "unbiased_model",
    "exponential_model",
    "space_constrained_model",
    "exact_variance",
]

InclusionModel = Callable[[np.ndarray, int], np.ndarray]


def unbiased_model(n: int) -> InclusionModel:
    """Property 2.1 model as a ``(r, t) -> p`` callable."""
    return lambda r, t: expected_inclusion_unbiased(n, r, t)


def exponential_model(n: int) -> InclusionModel:
    """Theorem 2.2 model as a ``(r, t) -> p`` callable."""
    return lambda r, t: expected_inclusion_exponential(n, r, t)


def space_constrained_model(n: int, p_in: float) -> InclusionModel:
    """Theorem 3.1 model as a ``(r, t) -> p`` callable."""
    return lambda r, t: expected_inclusion_space_constrained(n, p_in, r, t)


def exact_variance(
    coefficients: np.ndarray,
    h_values: np.ndarray,
    probabilities: np.ndarray,
) -> np.ndarray:
    """Lemma 4.1 evaluated over the *whole stream*.

    ``Var[H(t)] = sum_r c_r^2 h(X_r)^2 (1/p(r,t) - 1)``.

    Parameters
    ----------
    coefficients:
        ``c_r`` for every stream point, shape ``(t,)``.
    h_values:
        ``h(X_r)`` for every stream point, shape ``(t,)`` or ``(t, d)``.
    probabilities:
        ``p(r, t)`` for every stream point, shape ``(t,)``.

    Returns the per-component variance vector. This is the population
    quantity the paper analyzes (dominated by ``1/p`` for old points, but
    multiplied by ``c_r = 0`` outside the horizon — the cancellation that
    favors biased sampling for recent-horizon queries).
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    h_values = np.asarray(h_values, dtype=np.float64)
    if h_values.ndim == 1:
        h_values = h_values[:, None]
    if not (
        coefficients.shape[0]
        == probabilities.shape[0]
        == h_values.shape[0]
    ):
        raise ValueError("coefficients, h_values, probabilities must align")
    if np.any(probabilities <= 0.0) and np.any(
        coefficients[probabilities <= 0.0] != 0.0
    ):
        raise ValueError(
            "zero inclusion probability with non-zero coefficient: "
            "the estimator is undefined for this design"
        )
    safe_p = np.where(probabilities > 0.0, probabilities, 1.0)
    terms = (coefficients[:, None] * h_values) ** 2 * (
        1.0 / safe_p - 1.0
    )[:, None]
    return terms.sum(axis=0)
