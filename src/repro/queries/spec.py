"""Query specifications: the paper's linear queries and their ratios.

Section 4 frames every query as a linear functional of the stream,

    G(t) = sum_{i <= t} c_i * h(X_i)                       (Equation 17)

where ``h`` maps a point to a (possibly vector) value and ``c_i`` is a
per-point coefficient — typically the indicator of a *user-defined horizon*
(``c_r = 1`` iff ``t - r < h``). Count, sum, range-selectivity, and
class-distribution queries are all instances.

The experiments actually report *normalized* quantities (averages and
fractions), which are ratios of two linear queries; :class:`RatioQuery`
captures that so the estimator can apply self-normalized (Hájek) weighting,
which is what keeps fraction estimates inside ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.streams.point import StreamPoint

__all__ = [
    "LinearQuery",
    "RatioQuery",
    "count_query",
    "sum_query",
    "average_query",
    "range_count_query",
    "range_selectivity_query",
    "class_count_query",
    "class_distribution_query",
]


@dataclass(frozen=True)
class LinearQuery:
    """A linear query ``G(t) = sum_r c(r, t) * h(X_r)``.

    Attributes
    ----------
    name:
        Human-readable identifier (shows up in experiment output).
    value:
        The ``h`` function: maps a :class:`StreamPoint` to a float vector of
        fixed length :attr:`output_dim`. Scalar queries use length-1 vectors.
    horizon:
        When set, restricts the query to the most recent ``horizon``
        arrivals: ``c(r, t) = 1`` iff ``t - r < horizon``. ``None`` means
        the whole stream (``c = 1``).
    output_dim:
        Length of the vector returned by ``value``.
    dims, low, high:
        Optional structural metadata set by the builder functions
        (:func:`sum_query`, :func:`range_count_query`). Engines use it for
        vectorized fast paths; ``value`` remains the semantic definition,
        so custom queries may leave these ``None``.
    values_batch:
        Optional vectorized ``h``: maps resident columns
        ``(values (k, d), labels (k,))`` to the ``(k, output_dim)`` matrix
        whose row ``i`` equals ``value(point_i)`` bit for bit. Every
        builder query sets one; custom queries may leave it ``None`` and
        engines fall back to the per-point ``value`` path
        (:meth:`values_matrix`).
    """

    name: str
    value: Callable[[StreamPoint], np.ndarray]
    output_dim: int
    horizon: Optional[int] = None
    dims: Optional[tuple] = None
    low: Optional[tuple] = None
    high: Optional[tuple] = None
    values_batch: Optional[
        Callable[[np.ndarray, np.ndarray], np.ndarray]
    ] = None

    def __post_init__(self) -> None:
        if self.output_dim < 1:
            raise ValueError(f"output_dim must be >= 1, got {self.output_dim}")
        if self.horizon is not None and self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")

    def coefficient(self, r: int, t: int) -> float:
        """``c(r, t)``: the horizon indicator (or 1 for whole-stream)."""
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        if self.horizon is None:
            return 1.0
        return 1.0 if t - r < self.horizon else 0.0

    def coefficients(self, r: np.ndarray, t: int) -> np.ndarray:
        """Vectorized :meth:`coefficient`."""
        r = np.asarray(r, dtype=np.int64)
        if self.horizon is None:
            return np.ones(r.shape)
        return ((t - r) < self.horizon).astype(np.float64)

    def values_matrix(
        self,
        values: np.ndarray,
        labels: np.ndarray,
        arrivals: np.ndarray,
    ) -> np.ndarray:
        """The ``(k, output_dim)`` matrix of ``h(X_r)`` over resident columns.

        Dispatches to the vectorized :attr:`values_batch` kernel when the
        query carries one; otherwise reconstructs each row through the
        per-point :attr:`value` fallback (labels ``-1`` decode to
        ``None``). Both paths produce bitwise-identical matrices for the
        builder queries — the kernels select and compare the exact same
        float64 elements the per-point path does. Kernel output is
        normalized to C order: column fancy-indexing (``values[:, dims]``)
        yields F-ordered arrays, and downstream BLAS reductions associate
        differently over those, which would break the bitwise guarantee
        one step later.
        """
        if self.values_batch is not None:
            return np.ascontiguousarray(
                np.asarray(self.values_batch(values, labels), dtype=np.float64)
            )
        if arrivals.shape[0] == 0:
            return np.zeros((0, self.output_dim))
        return np.vstack(
            [
                self.value(
                    StreamPoint(
                        int(r), v, None if lab < 0 else int(lab)
                    )
                )
                for r, v, lab in zip(arrivals, values, labels)
            ]
        )

    def with_horizon(self, horizon: Optional[int]) -> "LinearQuery":
        """Copy of this query with a different horizon."""
        return LinearQuery(
            self.name,
            self.value,
            self.output_dim,
            horizon,
            self.dims,
            self.low,
            self.high,
            self.values_batch,
        )


@dataclass(frozen=True)
class RatioQuery:
    """A normalized query ``numerator(t) / denominator(t)``.

    Both parts must share the same horizon so the normalization is over the
    same population; the constructor enforces this.
    """

    name: str
    numerator: LinearQuery
    denominator: LinearQuery

    def __post_init__(self) -> None:
        if self.numerator.horizon != self.denominator.horizon:
            raise ValueError(
                "numerator and denominator must share a horizon: "
                f"{self.numerator.horizon} != {self.denominator.horizon}"
            )

    @property
    def horizon(self) -> Optional[int]:
        return self.numerator.horizon

    def with_horizon(self, horizon: Optional[int]) -> "RatioQuery":
        """Copy of this query with a different horizon on both parts."""
        return RatioQuery(
            self.name,
            self.numerator.with_horizon(horizon),
            self.denominator.with_horizon(horizon),
        )


# --------------------------------------------------------------------- #
# Builders for the paper's query types
# --------------------------------------------------------------------- #


def count_query(horizon: Optional[int] = None) -> LinearQuery:
    """COUNT over the horizon: ``h(X) = 1``."""

    def one(_: StreamPoint) -> np.ndarray:
        return np.ones(1)

    def ones_batch(values: np.ndarray, _: np.ndarray) -> np.ndarray:
        return np.ones((values.shape[0], 1))

    return LinearQuery("count", one, 1, horizon, values_batch=ones_batch)


def sum_query(horizon: Optional[int], dims: Sequence[int]) -> LinearQuery:
    """Per-dimension SUM over the horizon: ``h(X) = X[dims]``.

    ``dims`` is explicit (pass ``range(d)`` for all dimensions) so the
    query's ``output_dim`` is known without seeing a point.
    """
    dims = list(dims)
    if not dims:
        raise ValueError("dims must be non-empty")

    def select(point: StreamPoint) -> np.ndarray:
        return point.values[dims]

    def select_batch(values: np.ndarray, _: np.ndarray) -> np.ndarray:
        return values[:, dims]

    return LinearQuery(
        "sum",
        select,
        len(dims),
        horizon,
        dims=tuple(dims),
        values_batch=select_batch,
    )


def average_query(horizon: Optional[int], dims: Sequence[int]) -> RatioQuery:
    """Per-dimension AVERAGE over the horizon (the paper's "sum query"
    experiments report the average of the points in the horizon).
    """
    return RatioQuery(
        "average", sum_query(horizon, dims), count_query(horizon)
    )


def range_count_query(
    horizon: Optional[int],
    dims: Sequence[int],
    low: Sequence[float],
    high: Sequence[float],
) -> LinearQuery:
    """COUNT of points whose selected dims all lie in ``[low, high]``."""
    dims = list(dims)
    low_arr = np.asarray(low, dtype=np.float64)
    high_arr = np.asarray(high, dtype=np.float64)
    if low_arr.shape != (len(dims),) or high_arr.shape != (len(dims),):
        raise ValueError("low/high must match the number of dims")
    if np.any(low_arr > high_arr):
        raise ValueError("low must be <= high elementwise")

    def in_range(point: StreamPoint) -> np.ndarray:
        v = point.values[dims]
        inside = np.all((v >= low_arr) & (v <= high_arr))
        return np.array([1.0 if inside else 0.0])

    def in_range_batch(values: np.ndarray, _: np.ndarray) -> np.ndarray:
        sub = values[:, dims]
        inside = np.all((sub >= low_arr) & (sub <= high_arr), axis=1)
        return inside.astype(np.float64)[:, None]

    return LinearQuery(
        "range_count",
        in_range,
        1,
        horizon,
        dims=tuple(dims),
        low=tuple(low_arr.tolist()),
        high=tuple(high_arr.tolist()),
        values_batch=in_range_batch,
    )


def range_selectivity_query(
    horizon: Optional[int],
    dims: Sequence[int],
    low: Sequence[float],
    high: Sequence[float],
) -> RatioQuery:
    """Fraction of horizon points inside the range (Figure 5's query)."""
    return RatioQuery(
        "range_selectivity",
        range_count_query(horizon, dims, low, high),
        count_query(horizon),
    )


def class_count_query(horizon: Optional[int], n_classes: int) -> LinearQuery:
    """Per-class COUNT over the horizon: ``h(X) = onehot(label)``."""
    n_classes = int(n_classes)
    if n_classes < 1:
        raise ValueError(f"n_classes must be >= 1, got {n_classes}")

    def onehot(point: StreamPoint) -> np.ndarray:
        out = np.zeros(n_classes)
        if point.label is not None and 0 <= point.label < n_classes:
            out[point.label] = 1.0
        return out

    def onehot_batch(values: np.ndarray, labels: np.ndarray) -> np.ndarray:
        out = np.zeros((values.shape[0], n_classes))
        rows = np.flatnonzero((labels >= 0) & (labels < n_classes))
        out[rows, labels[rows]] = 1.0
        return out

    return LinearQuery(
        "class_count", onehot, n_classes, horizon, values_batch=onehot_batch
    )


def class_distribution_query(
    horizon: Optional[int], n_classes: int
) -> RatioQuery:
    """Fractional class distribution over the horizon (Figure 4's query)."""
    return RatioQuery(
        "class_distribution",
        class_count_query(horizon, n_classes),
        count_query(horizon),
    )
