"""Section 4's variance argument, as executable analysis.

Lemma 4.1 gives the design variance of the HT estimator,
``Var[H(t)] = sum_r c_r^2 h^2 (1/p(r,t) - 1)``. The paper's qualitative
reading: the summand is dominated by ``1/p(r, t)``, which is huge for old
points — but for *recent-horizon* queries ``c_r`` is zero exactly where
``1/p`` explodes under the biased design, while the unbiased design pays
``t/n`` for every point in the horizon.

This module computes the predicted variance of a horizon-``h`` count query
under each sampling design (unit ``h``, so the numbers are comparable), so
the trade-off can be *plotted* rather than argued:

* unbiased: ``p = n/t`` for all points, so ``Var = h (t/n - 1)`` — grows
  linearly in the stream length at fixed horizon (the analytical form of
  Figure 6's degradation);
* exponential (Algorithm 2.1): ``p = e^{-a/n}`` at age ``a``, so
  ``Var = sum_{a<h} (e^{a/n} - 1)`` — independent of ``t``, finite for all
  ``h``, but growing *exponentially* in ``h/n`` (the analytical form of
  the large-horizon crossover in Figures 2-5);
* space-constrained (Algorithm 3.1): the same with
  ``p = p_in e^{-a p_in/n}``.

``crossover_horizon`` solves for the horizon where the two designs'
variances meet — the predicted location of the empirical crossover.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = [
    "count_variance_unbiased",
    "count_variance_unbiased_exact",
    "count_variance_exponential",
    "count_variance_space_constrained",
    "crossover_horizon",
]


def _validate(h: int, t: int) -> None:
    if not 1 <= h <= t:
        raise ValueError(f"require 1 <= h <= t, got h={h}, t={t}")


def count_variance_unbiased(n: int, h: int, t: int) -> float:
    """Lemma 4.1 for a horizon-``h`` count under Property 2.1's design.

    ``sum_{a<h} (1/(n/t) - 1) = h (t/n - 1)`` — linear in ``t``.
    """
    _validate(h, t)
    if n >= t:
        return 0.0  # everything is retained, estimator exact
    return h * (t / n - 1.0)


def count_variance_unbiased_exact(n: int, h: int, t: int) -> float:
    """Exact variance for Algorithm R's *fixed-size* sample.

    Lemma 4.1 assumes independent inclusions; a uniform fixed-size-``n``
    sample is hypergeometric, whose negative dependence shrinks the
    variance by the finite-population correction:

        Var = n (h/t)(1 - h/t) (t-n)/(t-1) * (t/n)^2

    For ``h << t`` this coincides with Lemma 4.1's ``h (t/n - 1)``; at
    large ``h/t`` the correction matters (the ``ablation_variance_
    prediction`` benchmark measures exactly this gap).
    """
    _validate(h, t)
    if n >= t or t == 1:
        return 0.0
    frac = h / t
    support_var = n * frac * (1.0 - frac) * (t - n) / (t - 1)
    return support_var * (t / n) ** 2


def count_variance_exponential(n: int, h: int, t: int) -> float:
    """Lemma 4.1 under Theorem 2.2's design: ``sum_{a<h} (e^{a/n} - 1)``.

    Geometric-series closed form; independent of the stream length ``t``
    (only the horizon and the reservoir size matter).
    """
    _validate(h, t)
    # sum_{a=0}^{h-1} e^{a/n} = (e^{h/n} - 1) / (e^{1/n} - 1)
    growth = math.expm1(h / n) / math.expm1(1.0 / n)
    return growth - h


def count_variance_space_constrained(
    n: int, p_in: float, h: int, t: int
) -> float:
    """Lemma 4.1 under Theorem 3.1's design:
    ``sum_{a<h} (e^{a p_in/n}/p_in - 1)``."""
    _validate(h, t)
    if not 0.0 < p_in <= 1.0:
        raise ValueError(f"p_in must lie in (0, 1], got {p_in}")
    lam = p_in / n
    growth = math.expm1(h * lam) / math.expm1(lam)
    return growth / p_in - h


def crossover_horizon(
    n: int,
    t: int,
    p_in: Optional[float] = None,
    max_horizon: Optional[int] = None,
) -> Optional[int]:
    """Smallest horizon where the biased design's predicted variance
    exceeds the unbiased design's.

    Below the crossover, biased sampling is the better design for the
    query; above it, unbiased wins — the analytical counterpart of the
    empirical crossovers in Figures 2-5. Returns ``None`` when no
    crossover occurs at or below ``max_horizon`` (default ``t``).
    """
    max_horizon = t if max_horizon is None else min(int(max_horizon), t)
    lo, hi = 1, max_horizon

    def biased(h: int) -> float:
        if p_in is None:
            return count_variance_exponential(n, h, t)
        return count_variance_space_constrained(n, p_in, h, t)

    if biased(hi) <= count_variance_unbiased(n, hi, t):
        return None
    if biased(lo) > count_variance_unbiased(n, lo, t):
        return lo
    # The variance ratio is monotone in h; bisect for the crossing.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if biased(mid) > count_variance_unbiased(n, mid, t):
            hi = mid
        else:
            lo = mid
    return hi


def variance_profile(
    n: int,
    t: int,
    horizons: np.ndarray,
    p_in: Optional[float] = None,
) -> np.ndarray:
    """Predicted (biased, unbiased) variance pairs over a horizon sweep.

    Returns an array of shape ``(len(horizons), 2)`` with columns
    ``[biased, unbiased]``.
    """
    horizons = np.asarray(horizons, dtype=np.int64)
    out = np.empty((horizons.size, 2))
    for i, h in enumerate(horizons):
        if p_in is None:
            out[i, 0] = count_variance_exponential(n, int(h), t)
        else:
            out[i, 0] = count_variance_space_constrained(
                n, p_in, int(h), t
            )
        out[i, 1] = count_variance_unbiased(n, int(h), t)
    return out
