"""Sharded parallel ingestion of exponentially biased reservoir samples.

Public surface:

* :class:`ShardedReservoir` — the facade: partition a stream across ``W``
  shard workers, each a local biased reservoir, with the union provably
  equal in law to one global reservoir (see
  :mod:`repro.shard.coordinator` for the argument) and a ``fold()`` that
  collapses the shards into a single live sampler via Theorem 3.3
  thinning.
* :class:`RoundRobinPartitioner` / :class:`HashByKeyPartitioner` — stream
  routing policies (:mod:`repro.shard.partition`).
* :class:`ArrayExponentialShard` / :class:`ShardWorker` — the local
  samplers and their global-axis bookkeeping (:mod:`repro.shard.worker`).
"""

from repro.shard.coordinator import ShardedReservoir
from repro.shard.partition import (
    HashByKeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.shard.worker import ArrayExponentialShard, ShardWorker

__all__ = [
    "ShardedReservoir",
    "Partitioner",
    "RoundRobinPartitioner",
    "HashByKeyPartitioner",
    "ArrayExponentialShard",
    "ShardWorker",
]
