"""Sharded ingestion coordinator: partition, feed workers, fold.

Why sharding preserves the exponential design
---------------------------------------------

Round-robin a stream over ``W`` workers, each an Algorithm 2.1 reservoir
of capacity ``m = n / W``. A point with global age ``a = t - r`` has seen
exactly ``floor(a / W)`` arrivals *on its own worker*, so its local
survival probability is ``(1 - 1/m)^floor(a / W) ~ exp(-a / (m W)) =
exp(-a / n)`` — exactly the inclusion law of one global Algorithm 2.1
reservoir of capacity ``n`` (Theorem 2.2 with ``lambda = 1/n``). The same
argument with insertion gate ``p_in`` gives the Algorithm 3.1 law
``p_in * exp(-p_in * a / n)``. The union of the ``W`` worker reservoirs
*is* therefore already a valid global sample; no thinning is needed.

The fold makes that concrete: each worker is presented to
:func:`~repro.core.merge.fold_exponential_reservoirs` through a
:class:`_GlobalAxisView` that re-expresses its residents on the global
axis (``lam_g = p_in / n``, constant ``c_i = p_in``). Folding at capacity
``n`` targets ``c* = lam_g * n = p_in = c_i``, so ``keep_prob = 1`` —
Theorem 3.3 thinning degenerates to a pure union of at most
``W * m = n`` residents, and the result is a live
:class:`~repro.core.space_constrained.SpaceConstrainedReservoir` carrying
the whole sharded sample. Folding to a *smaller* capacity exercises the
genuine thinning path.

Backends
--------

``backend="inline"`` holds the ``W`` workers in-process (the default; on
a single core all the speedup comes from the workers' scatter kernel).
``backend="process"`` runs each worker in its own OS process, shipping
blocks over pipes and worker state back as
:meth:`~repro.core.reservoir.ReservoirSampler.state_dict` snapshots —
state-identical to the inline backend under the same seed, because worker
generators are spawned from the same seed sequence and blocks arrive in
the same order.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.core.columns import ResidentColumns, build_resident_columns
from repro.core.merge import fold_exponential_reservoirs
from repro.core.reservoir import SNAPSHOT_VERSION, SampleEntry
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.shard.partition import (
    HashByKeyPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from repro.shard.worker import ArrayExponentialShard, ShardWorker, _object_array
from repro.utils.rng import RngLike, as_generator, require_probability

__all__ = ["ShardedReservoir", "_GlobalAxisView"]


class _GlobalAxisView:
    """A worker reservoir re-expressed on the global arrival axis.

    Quacks like an exponentially biased reservoir for
    :func:`~repro.core.merge.fold_exponential_reservoirs`: global ``t``,
    global-arrival entries, design ``p(x) = p_in * exp(-lam * age)`` with
    ``lam`` the *global* rate ``p_in / n_total``.
    """

    exponential_design = True

    def __init__(
        self,
        entries: List[SampleEntry],
        lam: float,
        p_in: float,
        capacity: int,
        t: int,
    ) -> None:
        self._entries = entries
        self.lam = float(lam)
        self.p_in = float(p_in)
        self.capacity = int(capacity)
        self.t = int(t)

    def entries(self) -> List[SampleEntry]:
        return list(self._entries)


def _worker_loop(conn, initial_state: Dict[str, Any]) -> None:
    """Process-backend worker: apply ingest commands, reply with state."""
    worker = ShardWorker.from_state_dict(initial_state)
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "ingest":
            payloads, globs = msg[1], msg[2]
            worker.ingest(
                _object_array(payloads), np.asarray(globs, dtype=np.int64)
            )
        elif cmd == "state":
            conn.send(worker.state_dict())
        elif cmd == "close":
            conn.close()
            return


class ShardedReservoir:
    """Sharded exponentially biased reservoir over a partitioned stream.

    Parameters
    ----------
    capacity:
        Total reservoir size ``n``; must be a multiple of ``workers``
        (each worker holds ``m = n / W`` residents).
    workers:
        Number of shards ``W``.
    lam:
        Target global bias rate. For ``family="exponential"`` it is
        informational (the realized rate is ``1/capacity``, Observation
        2.1); for ``family="space_constrained"`` it is required and sets
        the insertion gate ``p_in = capacity * lam``.
    family:
        Local sampler family: ``"exponential"`` (Algorithm 2.1 via the
        scatter-kernel shard) or ``"space_constrained"`` (Algorithm 3.1).
    partitioner:
        A :class:`~repro.shard.partition.Partitioner`; defaults to
        round-robin. Its worker count must equal ``workers``.
    rng:
        Seed or generator. Worker ``i`` draws from spawn-child ``i`` of
        this seed and the coordinator's fold draws from child ``W``
        (:func:`~repro.utils.rng.spawn_generators` semantics), so results
        are reproducible and backend-independent.
    backend:
        ``"inline"`` (default) or ``"process"`` (one OS process per
        worker).
    flush_size:
        Per-worker buffer for the per-item :meth:`offer` path; buffered
        points are dispatched as one ``offer_many`` block when the buffer
        fills (or on :meth:`flush`/any state read). :meth:`offer_many`
        blocks are dispatched immediately.
    """

    def __init__(
        self,
        capacity: int,
        workers: int,
        lam: Optional[float] = None,
        family: str = "exponential",
        partitioner: Optional[Partitioner] = None,
        rng: RngLike = None,
        backend: str = "inline",
        flush_size: int = 8192,
    ) -> None:
        capacity = int(capacity)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < workers or capacity % workers != 0:
            raise ValueError(
                f"capacity ({capacity}) must be a positive multiple of "
                f"workers ({workers}) so every shard holds capacity/W "
                "residents"
            )
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {flush_size}")
        self.capacity = capacity
        self.workers = workers
        self.shard_capacity = capacity // workers
        self.family = family
        self.backend = backend
        self.flush_size = int(flush_size)
        self.t = 0
        self.requested_lam = None if lam is None else float(lam)

        if partitioner is None:
            partitioner = RoundRobinPartitioner(workers)
        if partitioner.workers != workers:
            raise ValueError(
                f"partitioner routes to {partitioner.workers} workers, "
                f"facade has {workers}"
            )
        self.partitioner = partitioner

        m = self.shard_capacity
        if family == "exponential":
            # Observation 2.1: the union's realized global rate is 1/n.
            self.p_in = 1.0
        elif family == "space_constrained":
            if lam is None:
                raise ValueError(
                    "family='space_constrained' requires lam (sets the "
                    "insertion gate p_in = capacity * lam)"
                )
            p_in = capacity * float(lam)
            if p_in > 1.0 + 1e-12:
                raise ValueError(
                    f"capacity {capacity} exceeds the natural size "
                    f"1/lambda = {1.0 / lam:.6g}; use family='exponential'"
                )
            self.p_in = require_probability(min(1.0, p_in), "p_in")
        else:
            raise ValueError(f"unknown shard family {family!r}")
        #: Realized global bias rate of the union sample.
        self.lam = self.p_in / capacity

        # Child i seeds worker i; child W seeds the coordinator's fold.
        seed_seq = self._seed_sequence(rng)
        children = seed_seq.spawn(workers + 1)
        self._fold_rng = np.random.default_rng(children[workers])
        local_workers = []
        for i in range(workers):
            child = np.random.default_rng(children[i])
            if family == "exponential":
                sampler = ArrayExponentialShard(capacity=m, rng=child)
            else:
                sampler = SpaceConstrainedReservoir(
                    capacity=m, p_in=self.p_in, rng=child
                )
            local_workers.append(ShardWorker(sampler, family))

        self._buf_payloads: List[List[Any]] = [[] for _ in range(workers)]
        self._buf_globals: List[List[int]] = [[] for _ in range(workers)]
        # Cached union-resident columnar view, keyed by stream position
        # (see `resident_columns`).
        self._columns_cache: Optional[tuple] = None
        if backend == "inline":
            self._workers = local_workers
            self._conns = None
            self._procs = None
        else:
            self._workers = None
            self._conns = []
            self._procs = []
            for w in local_workers:
                parent, child_conn = multiprocessing.Pipe()
                proc = multiprocessing.Process(
                    target=_worker_loop,
                    args=(child_conn, w.state_dict()),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent)
                self._procs.append(proc)

    @staticmethod
    def _seed_sequence(rng: RngLike) -> np.random.SeedSequence:
        """Normalize ``rng`` to a SeedSequence for worker spawning."""
        if isinstance(rng, np.random.SeedSequence):
            return rng
        if isinstance(rng, np.random.Generator):
            # Derive fresh entropy from the generator's stream.
            return np.random.SeedSequence(
                int(rng.integers(0, 2**63 - 1))
            )
        return np.random.SeedSequence(rng)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def offer(self, payload: Any) -> bool:
        """Route one arrival to its shard (buffered; see ``flush_size``)."""
        self.t += 1
        w = self.partitioner.assign(self.t, payload)
        self._buf_payloads[w].append(payload)
        self._buf_globals[w].append(self.t)
        if len(self._buf_payloads[w]) >= self.flush_size:
            self._flush_worker(w)
        return True

    def offer_many(self, payloads: Iterable[Any]) -> int:
        """Partition a block and feed every shard its sub-block at once.

        Pending per-item buffers are flushed first so each worker sees its
        sub-stream in global order. Returns the number of offers routed
        (every offer is stored for ``family="exponential"``; the
        space-constrained gate drops points inside the workers).
        """
        block = (
            payloads
            if isinstance(payloads, (list, tuple))
            else list(payloads)
        )
        b = len(block)
        if b == 0:
            return 0
        self.flush()
        t0 = self.t
        ids = self.partitioner.assign_block(t0, block)
        arr = _object_array(block)
        globs = t0 + 1 + np.arange(b, dtype=np.int64)
        self.t = t0 + b
        for w in range(self.workers):
            pos = np.nonzero(ids == w)[0]
            if len(pos):
                self._dispatch(w, arr[pos], globs[pos])
        return b

    def extend(self, payloads: Iterable[Any]) -> int:
        """Alias for :meth:`offer_many` (facade has no per-item variant)."""
        return self.offer_many(payloads)

    def flush(self) -> None:
        """Dispatch every worker's buffered per-item offers."""
        for w in range(self.workers):
            if self._buf_payloads[w]:
                self._flush_worker(w)

    def _flush_worker(self, w: int) -> None:
        payloads = _object_array(self._buf_payloads[w])
        globs = np.asarray(self._buf_globals[w], dtype=np.int64)
        self._buf_payloads[w] = []
        self._buf_globals[w] = []
        self._dispatch(w, payloads, globs)

    def _dispatch(
        self, w: int, payloads: np.ndarray, globs: np.ndarray
    ) -> None:
        if self._workers is not None:
            self._workers[w].ingest(payloads, globs)
        else:
            self._conns[w].send(
                ("ingest", payloads.tolist(), globs.tolist())
            )

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    def worker_states(self) -> List[Dict[str, Any]]:
        """Current :class:`ShardWorker` snapshots (flushes buffers)."""
        self.flush()
        if self._workers is not None:
            return [w.state_dict() for w in self._workers]
        states = []
        for conn in self._conns:
            conn.send(("state",))
            states.append(conn.recv())  # FIFO: follows queued ingests
        return states

    def _current_workers(self) -> List[ShardWorker]:
        self.flush()
        if self._workers is not None:
            return self._workers
        return [ShardWorker.from_state_dict(s) for s in self.worker_states()]

    def entries(self) -> List[SampleEntry]:
        """Residents as ``SampleEntry(global_arrival, payload)``,
        worker-major order."""
        out: List[SampleEntry] = []
        for worker in self._current_workers():
            out.extend(
                SampleEntry(g, p) for g, p in worker.entries_global()
            )
        return out

    def payloads(self) -> List[Any]:
        """Resident payloads across all shards (worker-major order)."""
        return [e.payload for e in self.entries()]

    def arrival_indices(self) -> np.ndarray:
        """Global arrival indices across all shards."""
        return np.asarray(
            [e.arrival for e in self.entries()], dtype=np.int64
        )

    def ages(self) -> np.ndarray:
        """Global ages ``t - r`` across all shards."""
        return self.t - self.arrival_indices()

    def resident_columns(self) -> ResidentColumns:
        """Columnar view of the union sample (worker-major storage order).

        Shard-aware analogue of
        :meth:`~repro.core.reservoir.ReservoirSampler.resident_columns`:
        pending per-item buffers are flushed (via :meth:`entries`) and the
        materialization is cached against the facade's stream position —
        worker state is a pure function of the offers ingested, so with no
        new offers the union residents cannot have changed. Requires
        :class:`~repro.streams.point.StreamPoint` payloads.
        """
        cached = self._columns_cache
        if cached is not None and cached[0] == self.t:
            return cached[1]
        entries = self.entries()
        columns = build_resident_columns(
            [e.payload for e in entries],
            np.asarray([e.arrival for e in entries], dtype=np.int64),
        )
        self._columns_cache = (self.t, columns)
        return columns

    @property
    def size(self) -> int:
        return len(self.entries())

    @property
    def is_full(self) -> bool:
        return self.size >= self.capacity

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self.payloads())

    # ------------------------------------------------------------------ #
    # Inclusion model
    # ------------------------------------------------------------------ #

    def inclusion_probability(self, r: int, t: Optional[int] = None) -> float:
        """Sharded inclusion model for global arrival ``r`` at time ``t``.

        Round-robin partitioning admits an *exact* closed form: arrival
        ``r`` has seen ``k = floor((t - r)/W)`` subsequent arrivals on its
        own shard, each applying local survival ``1 - p_in/m``, so

            p(r, t) = p_in * (1 - p_in/m)^floor((t - r)/W)
                    ~ p_in * exp(-lam * (t - r)),   lam = p_in/n.

        Hash partitioning only guarantees the exponential form in
        expectation (per-worker arrival counts fluctuate), so it falls
        back to the smooth model.
        """
        t = self.t if t is None else int(t)
        if not 1 <= r <= t:
            raise ValueError(f"require 1 <= r <= t, got r={r}, t={t}")
        if getattr(self.partitioner, "exact_schedule", False):
            k = (t - r) // self.workers
            return self.p_in * (
                1.0 - self.p_in / self.shard_capacity
            ) ** k
        return self.p_in * float(np.exp(-self.lam * (t - r)))

    def inclusion_probabilities(
        self, r: np.ndarray, t: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized :meth:`inclusion_probability`."""
        t = self.t if t is None else int(t)
        r = np.asarray(r, dtype=np.int64)
        if np.any(r < 1) or np.any(r > t):
            raise ValueError("require 1 <= r <= t")
        if getattr(self.partitioner, "exact_schedule", False):
            k = (t - r) // self.workers
            base = 1.0 - self.p_in / self.shard_capacity
            return self.p_in * base ** k
        return self.p_in * np.exp(-self.lam * (t - r).astype(np.float64))

    # ------------------------------------------------------------------ #
    # Fold
    # ------------------------------------------------------------------ #

    def fold(
        self, capacity: Optional[int] = None, rng: RngLike = None
    ) -> SpaceConstrainedReservoir:
        """Collapse all shards into one live global reservoir.

        At the default ``capacity`` (the facade's own ``n``) the fold is a
        pure union — see the module docstring; a smaller capacity engages
        Theorem 3.3 thinning. The fold does not consume the workers; the
        facade remains live.
        """
        views = []
        for worker in self._current_workers():
            entries = [
                SampleEntry(g, p) for g, p in worker.entries_global()
            ]
            views.append(
                _GlobalAxisView(
                    entries,
                    lam=self.lam,
                    p_in=self.p_in,
                    capacity=self.shard_capacity,
                    t=self.t,
                )
            )
        generator = self._fold_rng if rng is None else as_generator(rng)
        return fold_exponential_reservoirs(
            views,
            capacity=self.capacity if capacity is None else capacity,
            rng=generator,
        )

    # ------------------------------------------------------------------ #
    # Snapshots / lifecycle
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, Any]:
        """Facade snapshot: config + per-worker sampler snapshots.

        Buffers are flushed first, so the snapshot is exactly the state a
        restart resumes from. Custom ``HashByKeyPartitioner`` key
        callables are not serialized — pass the partitioner explicitly to
        :meth:`from_state_dict` in that case.
        """
        if isinstance(self.partitioner, RoundRobinPartitioner):
            part = "round_robin"
        elif isinstance(self.partitioner, HashByKeyPartitioner):
            part = "hash"
        else:
            part = type(self.partitioner).__name__
        return {
            "version": SNAPSHOT_VERSION,
            "class": "ShardedReservoir",
            "capacity": self.capacity,
            "workers": self.workers,
            "family": self.family,
            "requested_lam": self.requested_lam,
            "flush_size": self.flush_size,
            "partitioner": part,
            "t": self.t,
            "fold_rng_state": self._fold_rng.bit_generator.state,
            "worker_states": self.worker_states(),
        }

    @classmethod
    def from_state_dict(
        cls,
        state: Dict[str, Any],
        partitioner: Optional[Partitioner] = None,
        backend: str = "inline",
    ) -> "ShardedReservoir":
        """Rebuild a facade from :meth:`state_dict` (default inline)."""
        if state.get("class") != "ShardedReservoir":
            raise ValueError("not a ShardedReservoir snapshot")
        version = state.get("version", 1)
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {version!r} is not supported by this "
                f"library (expected {SNAPSHOT_VERSION}); it was probably "
                "written by a newer release"
            )
        workers = int(state["workers"])
        if partitioner is None:
            if state["partitioner"] == "hash":
                partitioner = HashByKeyPartitioner(workers)
            elif state["partitioner"] == "round_robin":
                partitioner = RoundRobinPartitioner(workers)
            else:
                raise ValueError(
                    f"cannot rebuild partitioner {state['partitioner']!r}; "
                    "pass one explicitly"
                )
        obj = cls(
            capacity=state["capacity"],
            workers=workers,
            lam=state["requested_lam"],
            family=state["family"],
            partitioner=partitioner,
            rng=0,  # placeholder; every generator state is overwritten below
            backend="inline",
            flush_size=state["flush_size"],
        )
        obj.t = int(state["t"])
        obj._fold_rng.bit_generator.state = state["fold_rng_state"]
        obj._workers = [
            ShardWorker.from_state_dict(s) for s in state["worker_states"]
        ]
        if backend == "process":
            raise NotImplementedError(
                "restore into the process backend is not supported; "
                "restore inline and keep offering"
            )
        return obj

    def close(self) -> None:
        """Shut down process-backend workers (no-op for inline)."""
        if self._conns is not None:
            for conn in self._conns:
                try:
                    conn.send(("close",))
                    conn.close()
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
            self._conns = None
            self._procs = None

    def __enter__(self) -> "ShardedReservoir":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedReservoir(capacity={self.capacity}, "
            f"workers={self.workers}, family={self.family!r}, "
            f"backend={self.backend!r}, t={self.t})"
        )
