"""Stream partitioners for sharded ingestion.

A partitioner routes each stream arrival (identified by its 1-based global
arrival index plus the payload itself) to one of ``W`` workers. Routing
must be a pure function of ``(index, payload)`` so that the inline and
process backends — and any two runs with the same seed — shard the stream
identically.

Two policies:

* :class:`RoundRobinPartitioner` — arrival ``r`` goes to worker
  ``(r - 1) % W``. Each worker sees *exactly* every ``W``-th arrival, which
  is what makes the sharded exponential design analyzable in closed form
  (see :mod:`repro.shard.coordinator`): a resident of global age ``a`` has
  seen exactly ``floor(a / W)`` subsequent local arrivals.
* :class:`HashByKeyPartitioner` — arrival goes to
  ``crc32(key(payload)) % W``. Keeps all points of one key on one worker
  (useful when per-key state or locality matters); the per-worker arrival
  counts are only *approximately* ``t / W``, so the global inclusion law
  holds in expectation rather than exactly.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

__all__ = ["Partitioner", "RoundRobinPartitioner", "HashByKeyPartitioner"]


class Partitioner(ABC):
    """Deterministic assignment of stream arrivals to ``W`` workers."""

    def __init__(self, workers: int) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @abstractmethod
    def assign(self, index: int, payload: Any) -> int:
        """Worker id in ``[0, workers)`` for the 1-based arrival ``index``."""

    def assign_block(self, start_t: int, block: Sequence[Any]) -> np.ndarray:
        """Worker ids for arrivals ``start_t + 1 .. start_t + len(block)``.

        The base implementation loops over :meth:`assign`; subclasses with
        index-only policies override it with a closed form.
        """
        return np.fromiter(
            (
                self.assign(start_t + j + 1, payload)
                for j, payload in enumerate(block)
            ),
            dtype=np.int64,
            count=len(block),
        )


class RoundRobinPartitioner(Partitioner):
    """Arrival ``r`` goes to worker ``(r - 1) % W`` (payload-independent)."""

    #: Round-robin keeps per-worker arrival counts exact, so closed-form
    #: inclusion models apply (see ShardedReservoir.inclusion_probability).
    exact_schedule = True

    def assign(self, index: int, payload: Any) -> int:
        return (int(index) - 1) % self.workers

    def assign_block(self, start_t: int, block: Sequence[Any]) -> np.ndarray:
        return (start_t + np.arange(len(block), dtype=np.int64)) % self.workers


class HashByKeyPartitioner(Partitioner):
    """Route by a stable hash of ``key(payload)`` (index-independent).

    Parameters
    ----------
    workers:
        Number of workers ``W``.
    key:
        Callable extracting the routing key from a payload; defaults to the
        payload itself. The key's ``str()`` must be stable across processes
        (ints, strings, tuples of those are fine; objects with default
        ``repr`` are not) — the hash is CRC-32 of that text, *not* Python's
        salted ``hash()``.
    """

    exact_schedule = False

    def __init__(
        self, workers: int, key: Optional[Callable[[Any], Any]] = None
    ) -> None:
        super().__init__(workers)
        self.key = key

    def assign(self, index: int, payload: Any) -> int:
        key = payload if self.key is None else self.key(payload)
        return zlib.crc32(str(key).encode("utf-8")) % self.workers


def split_by_worker(
    worker_ids: np.ndarray, block: Sequence[Any], workers: int
) -> List[np.ndarray]:
    """Positions (into ``block``) routed to each worker, order-preserving.

    Returns one int64 position array per worker; concatenating them in
    worker order and sorting recovers ``arange(len(block))``.
    """
    if len(worker_ids) != len(block):
        raise ValueError("one worker id per block item required")
    return [
        np.nonzero(worker_ids == w)[0] for w in range(workers)
    ]
