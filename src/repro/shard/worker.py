"""Shard workers: local samplers plus global-arrival bookkeeping.

Each shard maintains an ordinary exponentially biased reservoir over the
*sub-stream* routed to it, but every resident must remember its **global**
arrival index so the coordinator can fold worker samples onto the common
age axis (:mod:`repro.shard.coordinator`).

Two local sampler families are supported:

* ``"exponential"`` — :class:`ArrayExponentialShard`, a storage-optimized
  Algorithm 2.1 reservoir. It consumes exactly the same random sequence as
  :class:`~repro.core.biased.ExponentialReservoir`'s batched path (one
  bulk ``integers(0, n, size=b)`` draw per block) and reaches an identical
  observable state, but replaces the double ``np.unique`` + Python-loop
  writes with O(b + n) fancy-index scatters into preallocated numpy
  arrays. On one core this kernel — not process parallelism — is what
  makes the sharded engine several times faster than the serial
  ``offer_many`` path.
* ``"space_constrained"`` — a plain
  :class:`~repro.core.space_constrained.SpaceConstrainedReservoir` whose
  payloads are wrapped as ``(global_index, payload)`` pairs; the wrapper
  unwraps them at inspection/fold time.

Workers cross process boundaries as
:meth:`~repro.core.reservoir.ReservoirSampler.state_dict` snapshots, so
the process backend is state-identical to the inline one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.biased import ExponentialReservoir
from repro.core.reservoir import SampleEntry, from_state_dict
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.utils.rng import RngLike

__all__ = ["ArrayExponentialShard", "ShardWorker"]


def _object_array(block: List[Any]) -> np.ndarray:
    """1-D object array of ``block`` (safe for tuple payloads)."""
    arr = np.empty(len(block), dtype=object)
    arr[:] = block
    return arr


class ArrayExponentialShard(ExponentialReservoir):
    """Algorithm 2.1 on preallocated arrays with scatter-based block ingest.

    Distribution, counters, resident ordering, and RNG consumption are
    identical to :class:`ExponentialReservoir`'s ``offer_many`` path — the
    virtual-slot kernel draws the same single bulk victim vector and keeps
    each slot's last writer, with newly occupied slots compacted to the
    tail in first-hit order. Only the data movement differs: per-slot
    Python list writes become three fancy-index scatters.

    Every resident additionally carries its global arrival index
    (:meth:`global_arrivals`), fed in through :meth:`ingest`; the plain
    ``offer``/``offer_many`` paths default the global axis to the local
    one, which is exact for ``W = 1``.
    """

    supports_mutation_log = False  # writes land via bulk scatters

    def __init__(
        self,
        lam: Optional[float] = None,
        capacity: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(lam=lam, capacity=capacity, rng=rng)
        n = self.capacity
        self._pay = np.empty(n, dtype=object)
        self._arr = np.zeros(n, dtype=np.int64)
        self._glob = np.zeros(n, dtype=np.int64)
        self._size_n = 0
        self._scratch_last = np.empty(n, dtype=np.int64)
        self._scratch_first = np.empty(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest(self, payloads: np.ndarray, global_indices: np.ndarray) -> int:
        """Block ingest with explicit global arrival indices.

        ``payloads`` must be a 1-D object array and ``global_indices`` the
        matching global (whole-stream) arrival index per item, in stream
        order. Returns the number of offers (all are stored under
        Algorithm 2.1).
        """
        b = len(payloads)
        if b:
            self._kernel(payloads, np.asarray(global_indices, dtype=np.int64))
        return b

    def offer(self, payload: Any) -> bool:
        """Single arrival via the block kernel (global index = local)."""
        g = np.asarray([self.t + 1], dtype=np.int64)
        self._kernel(_object_array([payload]), g)
        return True

    def _offer_block(self, block: List[Any]) -> int:
        g = self.t + 1 + np.arange(len(block), dtype=np.int64)
        self._kernel(_object_array(block), g)
        return len(block)

    def _kernel(self, pay: np.ndarray, glob: np.ndarray) -> None:
        """Virtual-slot block step (see ExponentialReservoir._offer_block).

        ``last[victims] = arange(b)`` relies on numpy fancy-index scatter
        semantics (duplicate indices keep the last write) to find each
        slot's final writer in O(b); the reversed scatter finds each new
        slot's *first* hit, which fixes the append order.
        """
        n = self.capacity
        b = len(pay)
        t0 = self.t
        s0 = self._size_n
        victims = self.rng.integers(0, n, size=b)
        last = self._scratch_last
        last.fill(-1)
        last[victims] = np.arange(b)
        if s0 == n:
            # Steady state: every touched slot is an in-place replacement.
            touched = np.nonzero(last >= 0)[0]
            w = last[touched]
            new_count = 0
            self._pay[touched] = pay[w]
            self._arr[touched] = t0 + 1 + w
            self._glob[touched] = glob[w]
        else:
            first = self._scratch_first
            first.fill(-1)
            first[victims[::-1]] = np.arange(b - 1, -1, -1)
            touched = np.nonzero(last >= 0)[0]
            existing = touched[touched < s0]
            w = last[existing]
            self._pay[existing] = pay[w]
            self._arr[existing] = t0 + 1 + w
            self._glob[existing] = glob[w]
            new_slots = touched[touched >= s0]
            order = np.argsort(first[new_slots], kind="stable")
            wn = last[new_slots[order]]
            new_count = len(wn)
            dest = np.arange(s0, s0 + new_count)
            self._pay[dest] = pay[wn]
            self._arr[dest] = t0 + 1 + wn
            self._glob[dest] = glob[wn]
            self._size_n = s0 + new_count
        self.t = t0 + b
        self.offers += b
        self.insertions += b
        self.ejections += b - new_count

    # ------------------------------------------------------------------ #
    # Inspection (array-backed overrides)
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return self._size_n

    def payloads(self) -> List[Any]:
        return self._pay[: self._size_n].tolist()

    def arrival_indices(self) -> np.ndarray:
        return self._arr[: self._size_n].copy()

    def global_arrivals(self) -> np.ndarray:
        """Global (whole-stream) arrival index per resident."""
        return self._glob[: self._size_n].copy()

    def entries(self) -> List[SampleEntry]:
        return [
            SampleEntry(int(a), p)
            for a, p in zip(self._arr[: self._size_n], self._pay[: self._size_n])
        ]

    def __len__(self) -> int:
        return self._size_n

    def __iter__(self):
        return iter(self.payloads())

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def _storage_state(self) -> Dict[str, Any]:
        return {
            "payloads": self.payloads(),
            "arrivals": [int(a) for a in self._arr[: self._size_n]],
        }

    def _restore_storage(self, state: Dict[str, Any]) -> None:
        payloads = state["payloads"]
        k = len(payloads)
        # Elementwise object assignment (tuple payloads must not broadcast).
        self._pay[:k] = _object_array(payloads)
        self._arr[:k] = state["arrivals"]
        self._size_n = k

    def _extra_state(self) -> Dict[str, Any]:
        state = super()._extra_state()
        state["global_arrivals"] = [int(g) for g in self._glob[: self._size_n]]
        return state

    def _restore_extra(self, state: Dict[str, Any]) -> None:
        super()._restore_extra(state)
        self._glob[: self._size_n] = state["global_arrivals"]


class ShardWorker:
    """One shard: a local sampler plus the global-axis adapter around it.

    Parameters
    ----------
    sampler:
        The local reservoir (:class:`ArrayExponentialShard` or
        :class:`SpaceConstrainedReservoir`).
    family:
        ``"exponential"`` or ``"space_constrained"`` — decides how global
        arrival indices are attached to residents.
    """

    def __init__(self, sampler, family: str) -> None:
        if family not in ("exponential", "space_constrained"):
            raise ValueError(f"unknown shard family {family!r}")
        self.sampler = sampler
        self.family = family

    def ingest(self, payloads: np.ndarray, global_indices: np.ndarray) -> int:
        """Feed a block of the worker's sub-stream, in stream order."""
        if self.family == "exponential":
            return self.sampler.ingest(payloads, global_indices)
        wrapped = [
            (int(g), p) for g, p in zip(global_indices, payloads)
        ]
        return self.sampler.offer_many(wrapped)

    def entries_global(self) -> List[Tuple[int, Any]]:
        """Residents as ``(global_arrival, payload)`` pairs."""
        if self.family == "exponential":
            return [
                (int(g), p)
                for g, p in zip(
                    self.sampler.global_arrivals(), self.sampler.payloads()
                )
            ]
        return [tuple(entry.payload) for entry in self.sampler.entries()]

    @property
    def local_p_in(self) -> float:
        """Local proportionality constant (1 for Algorithm 2.1)."""
        return float(getattr(self.sampler, "p_in", 1.0))

    def state_dict(self) -> Dict[str, Any]:
        return {"family": self.family, "sampler": self.sampler.state_dict()}

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "ShardWorker":
        return cls(from_state_dict(state["sampler"]), state["family"])
