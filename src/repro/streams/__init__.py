"""Stream substrates: point model, generators, transforms, persistence."""

from repro.streams.base import StreamGenerator, materialize, stream_to_arrays
from repro.streams.intrusion import INTRUSION_CLASSES, IntrusionStream
from repro.streams.io import (
    load_stream_csv,
    load_stream_csv_chunks,
    save_stream_csv,
)
from repro.streams.kdd99 import Kdd99LabelMap, load_kdd99
from repro.streams.point import StreamPoint
from repro.streams.synthetic import EvolvingClusterStream
from repro.streams.transforms import (
    chunked,
    normalize_unit_variance,
    project,
    relabel,
    skip,
    take,
    with_poisson_timestamps,
    zscore_online,
)

__all__ = [
    "StreamPoint",
    "StreamGenerator",
    "materialize",
    "stream_to_arrays",
    "EvolvingClusterStream",
    "IntrusionStream",
    "INTRUSION_CLASSES",
    "save_stream_csv",
    "load_stream_csv",
    "load_stream_csv_chunks",
    "load_kdd99",
    "Kdd99LabelMap",
    "take",
    "skip",
    "chunked",
    "project",
    "relabel",
    "zscore_online",
    "normalize_unit_variance",
    "with_poisson_timestamps",
]
