"""Stream protocol and generator base class.

A *stream* is simply an iterable of :class:`~repro.streams.point.StreamPoint`
with monotonically increasing ``index``. :class:`StreamGenerator` is the base
for the synthetic sources: it owns the RNG, hands out points lazily (chunked
internally so numpy vectorization pays off), and knows its dimensionality
and label alphabet.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.streams.point import StreamPoint
from repro.utils.rng import RngLike, as_generator

__all__ = ["StreamGenerator", "materialize", "stream_to_arrays"]


class StreamGenerator(ABC):
    """Base class for synthetic stream sources.

    Subclasses implement :meth:`_generate_chunk`, producing a
    ``(values, labels)`` batch; this class slices the batch into
    :class:`StreamPoint` records with correct global arrival indices.

    Parameters
    ----------
    length:
        Total number of points the stream will emit.
    dimensions:
        Feature dimensionality.
    rng:
        Seed or generator. Two generators constructed with the same seed
        emit identical streams.
    chunk_size:
        Internal vectorization batch; has no observable effect other than
        speed.
    """

    def __init__(
        self,
        length: int,
        dimensions: int,
        rng: RngLike = None,
        chunk_size: int = 2048,
    ) -> None:
        length = int(length)
        dimensions = int(dimensions)
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.length = length
        self.dimensions = dimensions
        self.chunk_size = int(chunk_size)
        self._rng_spec = rng
        self.rng = as_generator(rng)

    @abstractmethod
    def _generate_chunk(self, size: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Produce the next ``size`` points as ``(values, labels)``.

        ``values`` has shape ``(size, dimensions)``; ``labels`` is an int
        array of length ``size`` or ``None`` for unlabeled streams. Called
        sequentially; generators may carry evolution state between calls.
        """

    @property
    def n_classes(self) -> Optional[int]:
        """Size of the label alphabet, or ``None`` if unlabeled."""
        return None

    def __iter__(self) -> Iterator[StreamPoint]:
        emitted = 0
        while emitted < self.length:
            size = min(self.chunk_size, self.length - emitted)
            values, labels = self._generate_chunk(size)
            if values.shape != (size, self.dimensions):
                raise RuntimeError(
                    f"{type(self).__name__}._generate_chunk returned shape "
                    f"{values.shape}, expected {(size, self.dimensions)}"
                )
            for i in range(size):
                emitted += 1
                label = None if labels is None else int(labels[i])
                yield StreamPoint(emitted, values[i], label)

    def __len__(self) -> int:
        return self.length


def materialize(stream: Iterable[StreamPoint]) -> List[StreamPoint]:
    """Drain a stream into a list (for offline ground-truth computation)."""
    return list(stream)


def stream_to_arrays(
    stream: Iterable[StreamPoint],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drain a stream into ``(indices, values, labels)`` arrays.

    ``labels`` is filled with ``-1`` where points are unlabeled. Intended
    for the exact query engine and for tests that need whole-stream views.
    """
    indices: List[int] = []
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for point in stream:
        indices.append(point.index)
        rows.append(point.values)
        labels.append(-1 if point.label is None else point.label)
    if not rows:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, 0)),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.asarray(indices, dtype=np.int64),
        np.vstack(rows),
        np.asarray(labels, dtype=np.int64),
    )
