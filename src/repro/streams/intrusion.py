"""Synthetic substitute for the KDD CUP 1999 network-intrusion stream.

The paper's real data set (KDD'99 from the UCI repository, streamified as in
the CluStream paper, normalized to unit variance per dimension) is not
redistributable here, so this module regenerates its *stream-relevant
structure* synthetically:

* **Severe class skew** — a handful of attack classes (smurf-, neptune-like
  floods) dominate the stream, with several rare classes (the real data is
  ~57% smurf, ~22% of neptune, ~19% normal, the rest under 2% combined).
* **Temporal burstiness** — attacks arrive in long contiguous bursts
  (regime-switching with class-specific dwell times), so the class mixture
  over any recent horizon differs sharply from the lifetime mixture. This
  is exactly the evolution that makes an unbiased reservoir stale.
* **Distinct class signatures with slow drift** — each class has its own
  feature centroid and scale; centroids random-walk slowly so even the
  dominant classes evolve.
* **34 continuous dimensions** (matching KDD'99's continuous-feature count)
  on roughly unit scale; pair with
  :func:`repro.streams.transforms.zscore_online` for the paper's
  unit-variance normalization.

Every comparison in the paper's experiments is *relative* (biased versus
unbiased sample over the identical stream), so preserving these structural
properties preserves the phenomena being measured.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.streams.base import StreamGenerator
from repro.utils.rng import RngLike

__all__ = ["IntrusionStream", "INTRUSION_CLASSES"]

# (name, long-run weight, mean burst length). Weights mimic KDD'99 skew.
INTRUSION_CLASSES: List[Tuple[str, float, int]] = [
    ("normal", 0.195, 800),
    ("smurf", 0.570, 2500),
    ("neptune", 0.215, 1500),
    ("back", 0.004, 150),
    ("satan", 0.003, 120),
    ("ipsweep", 0.003, 120),
    ("portsweep", 0.002, 100),
    ("warezclient", 0.002, 80),
    ("teardrop", 0.002, 80),
    ("pod", 0.001, 50),
    ("guess_passwd", 0.001, 40),
    ("buffer_overflow", 0.001, 30),
    ("land", 0.0005, 25),
    ("ftp_write", 0.0005, 20),
]


class IntrusionStream(StreamGenerator):
    """Regime-switching, skewed-class stream modelled on KDD CUP 1999.

    Parameters
    ----------
    length:
        Number of points (the real stream has 494,021; the default matches).
    dimensions:
        Continuous feature count (KDD'99 has 34).
    drift_scale:
        Per-point standard deviation of each class centroid's random walk.
        The cumulative drift over the stream is what the Figure 6/7
        experiments feel as concept drift.
    burst_scale:
        Multiplier on all mean burst lengths; smaller values switch regimes
        faster (more evolution per unit time).
    centroid_scale:
        Standard deviation of the per-class centroid draws. Together with
        ``scale_log_mean`` this sets class overlap; the defaults are
        calibrated so a 1-NN classifier over a 1000-point reservoir lands
        in the paper's Figure 7 accuracy band (~0.88-0.97) rather than
        saturating at 1.0.
    scale_log_mean, scale_log_sigma:
        Lognormal parameters of the per-class, per-dimension noise scales
        (heavy-tailed feature spreads, as in the real data).
    background_mix:
        Probability that any point is ordinary ``normal`` traffic
        interleaved into the active burst. Without it, a short horizon
        inside a burst is 100% one class and class-distribution queries
        become degenerate (trivially exact); the real stream always
        carries background flows.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        length: int = 494_021,
        dimensions: int = 34,
        drift_scale: float = 5e-4,
        burst_scale: float = 1.0,
        centroid_scale: float = 0.5,
        scale_log_mean: float = 0.0,
        scale_log_sigma: float = 0.5,
        background_mix: float = 0.15,
        rng: RngLike = None,
        chunk_size: int = 4096,
    ) -> None:
        super().__init__(length, dimensions, rng, chunk_size)
        if drift_scale < 0.0:
            raise ValueError(f"drift_scale must be >= 0, got {drift_scale}")
        if burst_scale <= 0.0:
            raise ValueError(f"burst_scale must be > 0, got {burst_scale}")
        self.class_names = [name for name, _, _ in INTRUSION_CLASSES]
        self._weights = np.array([w for _, w, _ in INTRUSION_CLASSES])
        self._weights = self._weights / self._weights.sum()
        self._mean_dwell = np.array(
            [max(2.0, d * burst_scale) for _, _, d in INTRUSION_CLASSES]
        )
        if centroid_scale <= 0.0:
            raise ValueError(
                f"centroid_scale must be > 0, got {centroid_scale}"
            )
        if not 0.0 <= background_mix < 1.0:
            raise ValueError(
                f"background_mix must lie in [0, 1), got {background_mix}"
            )
        self.background_mix = float(background_mix)
        self.drift_scale = float(drift_scale)
        k = len(INTRUSION_CLASSES)
        # Fixed per-class signatures: centroid and per-dimension scale.
        self.centroids = self.rng.normal(
            0.0, centroid_scale, size=(k, self.dimensions)
        )
        self.scales = self.rng.lognormal(
            mean=scale_log_mean, sigma=scale_log_sigma, size=(k, self.dimensions)
        )
        # Regime state.
        self._regime = self._draw_regime()
        self._dwell_left = self._draw_dwell(self._regime)

    @property
    def n_classes(self) -> Optional[int]:
        return len(self.class_names)

    def _draw_regime(self) -> int:
        """Pick the next regime; entry probability proportional to
        long-run weight divided by mean dwell (so time share ~ weight)."""
        entry = self._weights / self._mean_dwell
        entry = entry / entry.sum()
        return int(self.rng.choice(len(entry), p=entry))

    def _draw_dwell(self, regime: int) -> int:
        """Geometric dwell with the regime's mean burst length."""
        mean = self._mean_dwell[regime]
        return 1 + int(self.rng.geometric(1.0 / mean))

    def _generate_chunk(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        values = np.empty((size, self.dimensions))
        labels = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            batch = min(size - filled, self._dwell_left)
            c = self._regime
            noise = self.rng.normal(size=(batch, self.dimensions))
            values[filled : filled + batch] = (
                self.centroids[c] + noise * self.scales[c]
            )
            labels[filled : filled + batch] = c
            # Interleave background traffic into the burst.
            if self.background_mix > 0.0 and c != 0:
                bg = self.rng.random(batch) < self.background_mix
                n_bg = int(bg.sum())
                if n_bg:
                    bg_noise = self.rng.normal(size=(n_bg, self.dimensions))
                    rows = filled + np.flatnonzero(bg)
                    values[rows] = (
                        self.centroids[0] + bg_noise * self.scales[0]
                    )
                    labels[rows] = 0
            # Slow concept drift of the active class's centroid.
            if self.drift_scale > 0.0:
                self.centroids[c] += self.rng.normal(
                    0.0, self.drift_scale * np.sqrt(batch), size=self.dimensions
                )
            filled += batch
            self._dwell_left -= batch
            if self._dwell_left <= 0:
                self._regime = self._draw_regime()
                self._dwell_left = self._draw_dwell(self._regime)
        return values, labels

    def class_name(self, label: int) -> str:
        """Human-readable name for a class label."""
        return self.class_names[label]
