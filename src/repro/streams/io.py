"""CSV persistence for streams.

Lets examples and experiments snapshot a generated stream to disk and
replay it later (e.g. to compare samplers on the byte-identical stream, or
to feed an externally produced data set into the library).

Format: header ``index,label,v0,...,v{d-1}``; ``label`` is empty for
unlabeled points.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, List, Union

import numpy as np

from repro.streams.point import StreamPoint

__all__ = ["save_stream_csv", "load_stream_csv", "load_stream_csv_chunks"]

PathLike = Union[str, Path]


def save_stream_csv(stream: Iterable[StreamPoint], path: PathLike) -> int:
    """Write ``stream`` to ``path``; returns the number of points written."""
    path = Path(path)
    count = 0
    dimensions = None
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for point in stream:
            if dimensions is None:
                dimensions = point.dimensions
                header = ["index", "label"] + [
                    f"v{i}" for i in range(dimensions)
                ]
                writer.writerow(header)
            elif point.dimensions != dimensions:
                raise ValueError(
                    f"inconsistent dimensionality: point {point.index} has "
                    f"{point.dimensions} dims, expected {dimensions}"
                )
            label = "" if point.label is None else point.label
            # repr(float(...)) round-trips exactly (and avoids numpy 2.x
            # scalar reprs like "np.float64(1.5)").
            writer.writerow(
                [point.index, label] + [repr(float(v)) for v in point.values]
            )
            count += 1
    return count


def load_stream_csv(path: PathLike) -> Iterator[StreamPoint]:
    """Lazily read a stream written by :func:`save_stream_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return
        if header[:2] != ["index", "label"]:
            raise ValueError(f"{path} is not a stream CSV (header={header!r})")
        for row in reader:
            index = int(row[0])
            label = None if row[1] == "" else int(row[1])
            values = np.array([float(v) for v in row[2:]])
            yield StreamPoint(index, values, label)


def load_stream_csv_chunks(
    path: PathLike, chunk_size: int = 4096
) -> Iterator[List[StreamPoint]]:
    """Lazily read a stream CSV as lists of up to ``chunk_size`` points.

    The batched counterpart of :func:`load_stream_csv`, shaped for
    :meth:`~repro.core.reservoir.ReservoirSampler.offer_many`: each yielded
    chunk can be handed to a sampler whole, so file replay runs at the
    block-ingestion rate instead of one ``offer`` call per row.
    """
    from repro.streams.transforms import chunked

    yield from chunked(load_stream_csv(path), chunk_size)
