"""Loader for the real KDD CUP 1999 data file.

The reproduction ships a synthetic stand-in
(:class:`~repro.streams.intrusion.IntrusionStream`) because the UCI data
cannot be bundled. Users who have the original file (``kddcup.data`` /
``kddcup.data_10_percent``, optionally gzipped) can load it here and run
every experiment against the true stream the paper used.

Format: 42 comma-separated fields per line — 41 features (mixed continuous
and symbolic) plus a trailing label like ``smurf.``. Following the paper
("we normalized the data stream, so that the variance along each dimension
was one unit" over the continuous attributes), this loader keeps the 34
continuous features by default and can standardize them on the fly.

Labels are mapped to dense integer ids in order of first appearance; the
mapping is exposed so class-distribution queries can be decoded.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.streams.point import StreamPoint
from repro.streams.transforms import zscore_online

__all__ = ["KDD99_CONTINUOUS_COLUMNS", "load_kdd99", "Kdd99LabelMap"]

PathLike = Union[str, Path]

# 0-based indices of the continuous attributes among KDD'99's 41 features
# (everything except protocol_type(1), service(2), flag(3), land(6),
# logged_in(11), is_host_login(20), is_guest_login(21)).
KDD99_CONTINUOUS_COLUMNS: Tuple[int, ...] = tuple(
    i for i in range(41) if i not in (1, 2, 3, 6, 11, 20, 21)
)


class Kdd99LabelMap:
    """Dense label ids assigned in order of first appearance."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}

    def id_for(self, name: str) -> int:
        """Return (assigning if new) the integer id for a label string."""
        name = name.rstrip(".")
        if name not in self._ids:
            self._ids[name] = len(self._ids)
        return self._ids[name]

    def names(self) -> List[str]:
        """Label strings in id order."""
        return sorted(self._ids, key=self._ids.get)

    def __len__(self) -> int:
        return len(self._ids)


def _open_maybe_gzip(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return path.open("rt")


def load_kdd99(
    path: PathLike,
    columns: Tuple[int, ...] = KDD99_CONTINUOUS_COLUMNS,
    normalize: bool = True,
    limit: Optional[int] = None,
    label_map: Optional[Kdd99LabelMap] = None,
) -> Iterator[StreamPoint]:
    """Stream the KDD'99 file as :class:`StreamPoint` records.

    Parameters
    ----------
    path:
        Path to ``kddcup.data`` (or the 10% subset), plain or ``.gz``.
    columns:
        Feature columns to keep (default: the 34 continuous ones).
    normalize:
        Apply one-pass unit-variance standardization
        (:func:`~repro.streams.transforms.zscore_online`), matching the
        paper's preprocessing.
    limit:
        Optional cap on the number of records.
    label_map:
        Reusable label mapping (pass your own to share ids across files);
        a fresh one is created otherwise. Access it afterwards via the
        generator's ``label_map`` attribute is not possible for plain
        generators — pass one in when you need the decoded names.

    Yields
    ------
    StreamPoint
        With 1-based arrival indices, the selected feature columns, and
        dense integer labels.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — download kddcup.data from the UCI "
            "repository, or use repro.streams.IntrusionStream for the "
            "synthetic stand-in"
        )
    mapping = label_map if label_map is not None else Kdd99LabelMap()
    column_list = list(columns)

    def raw() -> Iterator[StreamPoint]:
        emitted = 0
        with _open_maybe_gzip(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                fields = line.split(",")
                if len(fields) != 42:
                    raise ValueError(
                        f"malformed KDD'99 record with {len(fields)} "
                        f"fields (expected 42): {line[:80]!r}"
                    )
                try:
                    values = np.array(
                        [float(fields[i]) for i in column_list]
                    )
                except ValueError as exc:
                    raise ValueError(
                        f"non-numeric value in selected columns: {exc}"
                    ) from None
                emitted += 1
                yield StreamPoint(
                    emitted, values, mapping.id_for(fields[41])
                )
                if limit is not None and emitted >= limit:
                    return

    stream = raw()
    if normalize:
        stream = zscore_online(stream)
    return stream
