"""The unit of data flowing through every stream in this library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["StreamPoint"]


@dataclass(frozen=True)
class StreamPoint:
    """One multi-dimensional stream record.

    Attributes
    ----------
    index:
        1-based arrival index — the paper's ``r``. In the paper's temporal
        model the arrival index *is* the timestamp; Section 5.2 notes the
        timestamp must be kept for horizon queries in both the biased and
        unbiased reservoirs, so it is a first-class field here.
    values:
        Feature vector (read-only float64 array).
    label:
        Optional class label (intrusion class / generating-cluster id);
        ``None`` for unlabeled streams.
    """

    index: int
    values: np.ndarray
    label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"index must be >= 1, got {self.index}")
        arr = np.asarray(self.values, dtype=np.float64)
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    @property
    def dimensions(self) -> int:
        """Number of features."""
        return int(self.values.shape[0])

    def distance_to(self, other: "StreamPoint") -> float:
        """Euclidean distance between the feature vectors."""
        return float(np.linalg.norm(self.values - other.values))

    def __repr__(self) -> str:
        head = np.array2string(self.values[:3], precision=3)
        return (
            f"StreamPoint(index={self.index}, label={self.label}, "
            f"values={head}{'...' if self.dimensions > 3 else ''})"
        )
