"""The paper's synthetic data set: evolving Gaussian clusters (Section 5.1).

From the paper: a 10-dimensional stream generated from ``k = 4`` clusters
whose centers are chosen at random in the unit cube; the average radius of
each cluster is 0.2 (points may fall outside the cube, clusters overlap
considerably); after each *set* of points the center of every cluster moves
by an independent uniform amount in ``[-0.05, 0.05]`` per dimension. The
cluster id is used as the class label for the classification and evolution
experiments, and the continuous random walk of the centers is what makes
the stream *evolve*: clusters gradually drift apart, old reservoir points
become stale, and a biased sample tracks the motion while an unbiased one
mixes the full history.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.streams.base import StreamGenerator
from repro.utils.rng import RngLike

__all__ = ["EvolvingClusterStream"]


class EvolvingClusterStream(StreamGenerator):
    """Evolving-Gaussian-cluster stream generator.

    Parameters
    ----------
    length:
        Number of points to emit (the paper uses ``4 * 10**5``).
    n_clusters:
        ``k`` — number of generating clusters (paper: 4).
    dimensions:
        Feature dimensionality (paper: 10).
    radius:
        Average cluster radius: the expected Euclidean distance of a point
        from its cluster center (paper: 0.2). Internally the per-dimension
        Gaussian scale is ``radius / sqrt(dimensions)`` so the expected
        radius matches in any dimensionality.
    drift:
        Half-width of the per-epoch, per-dimension uniform center
        displacement (paper: 0.05).
    drift_every:
        Epoch length — number of points between center movements ("each set
        of data points" in the paper's description).
    cluster_weights:
        Relative frequency of each cluster; defaults to uniform.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        length: int = 400_000,
        n_clusters: int = 4,
        dimensions: int = 10,
        radius: float = 0.2,
        drift: float = 0.05,
        drift_every: int = 100,
        cluster_weights: Optional[np.ndarray] = None,
        rng: RngLike = None,
        chunk_size: int = 2048,
    ) -> None:
        super().__init__(length, dimensions, rng, chunk_size)
        n_clusters = int(n_clusters)
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if radius <= 0.0:
            raise ValueError(f"radius must be > 0, got {radius}")
        if drift < 0.0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        if drift_every < 1:
            raise ValueError(f"drift_every must be >= 1, got {drift_every}")
        self.n_clusters_ = n_clusters
        self.radius = float(radius)
        # Per-dimension Gaussian scale such that E[||x - c||] == radius:
        # the norm of a d-dim isotropic Gaussian is sigma * chi_d, with
        # E[chi_d] = sqrt(2) Gamma((d+1)/2) / Gamma(d/2).
        chi_mean = math.sqrt(2.0) * math.exp(
            math.lgamma((self.dimensions + 1) / 2)
            - math.lgamma(self.dimensions / 2)
        )
        self.sigma = self.radius / chi_mean
        self.drift = float(drift)
        self.drift_every = int(drift_every)
        if cluster_weights is None:
            weights = np.full(n_clusters, 1.0 / n_clusters)
        else:
            weights = np.asarray(cluster_weights, dtype=np.float64)
            if weights.shape != (n_clusters,):
                raise ValueError(
                    f"cluster_weights must have shape ({n_clusters},)"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("cluster_weights must be non-negative")
            weights = weights / weights.sum()
        self.cluster_weights = weights
        # Initial centers: uniform in the unit cube.
        self.centers = self.rng.random((n_clusters, self.dimensions))
        self.initial_centers = self.centers.copy()
        self._since_drift = 0

    @property
    def n_classes(self) -> Optional[int]:
        return self.n_clusters_

    def _drift_centers(self) -> None:
        """Move every center by U[-drift, drift] per dimension."""
        step = self.rng.uniform(
            -self.drift, self.drift, size=self.centers.shape
        )
        self.centers = self.centers + step

    def _generate_chunk(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        values = np.empty((size, self.dimensions))
        labels = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            # Generate up to the next drift boundary in one vectorized shot.
            until_drift = self.drift_every - self._since_drift
            batch = min(size - filled, until_drift)
            ids = self.rng.choice(
                self.n_clusters_, size=batch, p=self.cluster_weights
            )
            noise = self.rng.normal(
                0.0, self.sigma, size=(batch, self.dimensions)
            )
            values[filled : filled + batch] = self.centers[ids] + noise
            labels[filled : filled + batch] = ids
            filled += batch
            self._since_drift += batch
            if self._since_drift >= self.drift_every:
                self._drift_centers()
                self._since_drift = 0
        return values, labels

    def center_spread(self) -> float:
        """Mean pairwise distance between current cluster centers.

        Grows roughly like ``drift * sqrt(epochs / 3)`` as the random walks
        diverge — the quantitative face of "clusters drift apart".
        """
        k = self.n_clusters_
        if k < 2:
            return 0.0
        dists = [
            float(np.linalg.norm(self.centers[i] - self.centers[j]))
            for i in range(k)
            for j in range(i + 1, k)
        ]
        return float(np.mean(dists))
