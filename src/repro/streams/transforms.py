"""Composable stream transforms.

All transforms take and return iterables of
:class:`~repro.streams.point.StreamPoint` and evaluate lazily, so they can
be chained in front of a sampler without materializing the stream.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
)

import numpy as np

from repro.streams.point import StreamPoint

__all__ = [
    "take",
    "skip",
    "chunked",
    "project",
    "relabel",
    "zscore_online",
    "normalize_unit_variance",
    "with_poisson_timestamps",
]

T = TypeVar("T")


def chunked(stream: Iterable[T], size: int) -> Iterator[List[T]]:
    """Group ``stream`` into consecutive lists of up to ``size`` items.

    The bridge between lazy point-at-a-time streams and the samplers'
    batched ingestion path
    (:meth:`~repro.core.reservoir.ReservoirSampler.offer_many`): order is
    preserved, every item appears in exactly one chunk, and only the final
    chunk may be short. Works on any iterable, not just ``StreamPoint``s.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    buffer: List[T] = []
    for item in stream:
        buffer.append(item)
        if len(buffer) >= size:
            yield buffer
            buffer = []
    if buffer:
        yield buffer


def take(stream: Iterable[StreamPoint], n: int) -> Iterator[StreamPoint]:
    """Yield the first ``n`` points of ``stream``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    for i, point in enumerate(stream):
        if i >= n:
            return
        yield point


def skip(stream: Iterable[StreamPoint], n: int) -> Iterator[StreamPoint]:
    """Discard the first ``n`` points, yield the rest (indices unchanged)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    for i, point in enumerate(stream):
        if i >= n:
            yield point


def project(
    stream: Iterable[StreamPoint], dims: Sequence[int]
) -> Iterator[StreamPoint]:
    """Keep only the feature dimensions in ``dims`` (in the given order)."""
    dims = list(dims)
    for point in stream:
        yield StreamPoint(point.index, point.values[dims], point.label)


def relabel(
    stream: Iterable[StreamPoint], mapper: Callable[[Optional[int]], Optional[int]]
) -> Iterator[StreamPoint]:
    """Apply ``mapper`` to every label (e.g. to merge rare classes)."""
    for point in stream:
        yield StreamPoint(point.index, point.values, mapper(point.label))


def zscore_online(stream: Iterable[StreamPoint]) -> Iterator[StreamPoint]:
    """One-pass per-dimension standardization (the paper's unit-variance
    normalization, done streamingly).

    Uses Welford accumulators over everything seen so far; early points
    are standardized by whatever statistics have accumulated (variance
    floored at a small epsilon), after which the estimates stabilize. This
    keeps the transform one-pass, matching the stream model; for offline
    parity use :func:`normalize_unit_variance`.
    """
    count = 0
    mean: Optional[np.ndarray] = None
    m2: Optional[np.ndarray] = None
    eps = 1e-9
    for point in stream:
        x = point.values
        if mean is None:
            mean = np.zeros_like(x)
            m2 = np.zeros_like(x)
        count += 1
        delta = x - mean
        mean = mean + delta / count
        m2 = m2 + delta * (x - mean)
        if count < 2:
            std = np.ones_like(x)
        else:
            std = np.sqrt(np.maximum(m2 / (count - 1), eps))
        yield StreamPoint(point.index, (x - mean) / std, point.label)


def normalize_unit_variance(points: List[StreamPoint]) -> List[StreamPoint]:
    """Offline per-dimension standardization over a materialized stream.

    Matches Section 5.1: "we normalized the data stream, so that the
    variance along each dimension was one unit". Zero-variance dimensions
    are left centered but unscaled.
    """
    if not points:
        return []
    matrix = np.vstack([p.values for p in points])
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0.0] = 1.0
    scaled = (matrix - mean) / std
    return [
        StreamPoint(p.index, scaled[i], p.label) for i, p in enumerate(points)
    ]


def with_poisson_timestamps(
    stream: Iterable[StreamPoint],
    rate: float,
    rng=None,
) -> Iterator[tuple]:
    """Attach Poisson-process arrival times: yields ``(point, timestamp)``.

    Bridges index-based streams to the wall-clock samplers
    (:class:`~repro.core.timestamped.TimestampedExponentialReservoir`,
    :class:`~repro.core.time_proportional.TimeDecayReservoir`): interarrival
    gaps are Exponential(``rate``), so arrivals form a rate-``rate`` Poisson
    process. ``rate`` may also be a callable ``index -> rate`` for
    non-homogeneous processes (bursts, diurnal cycles).
    """
    from repro.utils.rng import as_generator

    generator = as_generator(rng)
    fixed_rate = None if callable(rate) else float(rate)
    if fixed_rate is not None and fixed_rate <= 0.0:
        raise ValueError(f"rate must be > 0, got {rate}")
    now = 0.0
    for point in stream:
        current = fixed_rate if fixed_rate is not None else float(rate(point.index))
        if current <= 0.0:
            raise ValueError(f"rate must stay > 0, got {current}")
        now += generator.exponential(1.0 / current)
        yield point, now
