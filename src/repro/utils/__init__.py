"""Shared utilities: RNG normalization and running statistics."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.running_stats import RunningStats, ExponentialMovingAverage

__all__ = [
    "as_generator",
    "spawn_generators",
    "RunningStats",
    "ExponentialMovingAverage",
]
