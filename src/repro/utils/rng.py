"""Random-number-generator plumbing.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator` through a single ``rng`` parameter. This
module centralizes the normalization so that experiments are reproducible
and components can share or fork generators without global state.

Seeding contract
----------------

The library promises *bit-level determinism under a fixed seed*:

1. A sampler constructed with ``rng=<int>`` and fed a given stream —
   whether item by item through ``offer`` or in arbitrary batch splits
   through ``offer_many`` — always reaches an identical observable state
   (payloads, arrival indices, counters). Samplers with vectorized
   ``offer_many`` fast paths pre-draw randomness in bulk, so their
   batched state may differ from their per-item state at the same seed;
   but each ingestion path is individually deterministic, and batch
   *boundaries* never matter. ``tests/test_determinism.py`` regresses
   this for every sampler family.
2. Passing an existing :class:`~numpy.random.Generator` shares that
   stream: determinism then extends over everything else consuming the
   same generator, in call order.
3. Parallel/replicated work derives child generators with
   :func:`spawn_generators` (:class:`numpy.random.SeedSequence`
   spawning), never by arithmetic on seeds — spawned children are
   non-overlapping no matter how much randomness each consumes. The
   ``repro.verify`` runner extends this with a per-spec ``spawn_key``
   (CRC-32 of the spec name) so every conformance spec draws an
   independent, jobs-count-invariant replicate sequence.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream of randomness).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_generators(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so that children do not
    overlap regardless of how much randomness each consumes. When ``rng`` is
    already a generator, children are seeded from its bit stream.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(rng, np.random.Generator):
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(child) for child in rng.spawn(count)]
    seq = np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value
