"""Streaming statistics accumulators.

These are used throughout the experiment harness (windowed accuracy, error
averaging) and by the stream normalizers. They are deliberately tiny,
allocation-free per update, and numerically stable (Welford's method).
"""

from __future__ import annotations

import math


class RunningStats:
    """Welford running mean/variance over a scalar sequence.

    Examples
    --------
    >>> s = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.update(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        """Sample mean, or 0.0 when empty."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation seen (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation seen (``-inf`` when empty)."""
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class ExponentialMovingAverage:
    """Exponentially weighted moving average with decay ``alpha``.

    ``alpha`` is the weight of the newest observation; the EMA after the
    first observation equals that observation exactly.
    """

    __slots__ = ("alpha", "_value", "count")

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value = 0.0
        self.count = 0

    def update(self, value: float) -> float:
        """Fold one observation in and return the updated average."""
        if self.count == 0:
            self._value = float(value)
        else:
            self._value += self.alpha * (float(value) - self._value)
        self.count += 1
        return self._value

    @property
    def value(self) -> float:
        """Current average (0.0 before any observation)."""
        return self._value if self.count else 0.0
