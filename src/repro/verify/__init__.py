"""Statistical conformance verification (``repro verify``).

The correctness backstop for every optimisation PR: declarative
conformance specs pair each sampler family with its closed-form model
from the paper (:mod:`repro.core.theory`), a seeded Monte-Carlo runner
fans replicates out over worker processes, and the result is a
machine-readable report (``VERIFY_report.json``) of per-spec statistics,
p-values, confidence bands, and verdicts — plus adversarial-stream
invariant checks that gate structural breakage on hostile inputs.

Layers
------
* :mod:`repro.verify.stats` — numpy-only test statistics (chi-square,
  KS, binomial tails, normal tails).
* :mod:`repro.verify.spec` — :class:`ConformanceSpec` and the verdict
  checks (:class:`FrequencyCheck`, :class:`MeanBandCheck`,
  :class:`InclusionBandCheck`).
* :mod:`repro.verify.registry` — built-in specs for every sampler
  family, and the shared sampler-family factories.
* :mod:`repro.verify.runner` — the seeded ``multiprocessing`` replicate
  runner.
* :mod:`repro.verify.adversarial` — hostile stream generators and
  property-style invariant checks.
* :mod:`repro.verify.report` — JSON report assembly and rendering.

Adding a spec for a new sampler
-------------------------------
Write a module-level replicate function (build the sampler from the
given generator, feed a stream, return an observation array), choose a
check against the sampler's closed-form model, and register a
:class:`ConformanceSpec` in :mod:`repro.verify.registry`. The CLI, the
pytest ``statistical`` tier, and the JSON report all pick it up from the
registry automatically.
"""

from repro.verify.adversarial import (
    ADVERSARIAL_STREAMS,
    InvariantResult,
    adversarial_stream,
    check_state_invariants,
    run_all_invariants,
    run_invariant_case,
)
from repro.verify.registry import (
    SAMPLER_FAMILIES,
    SPECS,
    all_spec_names,
    get_spec,
    specs_for,
)
from repro.verify.report import build_report, render_report, write_report
from repro.verify.runner import run_spec, run_specs
from repro.verify.spec import (
    Check,
    CheckResult,
    ConformanceSpec,
    FrequencyCheck,
    InclusionBandCheck,
    MeanBandCheck,
    SpecResult,
)

__all__ = [
    "ADVERSARIAL_STREAMS",
    "SAMPLER_FAMILIES",
    "SPECS",
    "Check",
    "CheckResult",
    "ConformanceSpec",
    "FrequencyCheck",
    "InclusionBandCheck",
    "InvariantResult",
    "MeanBandCheck",
    "SpecResult",
    "adversarial_stream",
    "all_spec_names",
    "build_report",
    "check_state_invariants",
    "get_spec",
    "render_report",
    "run_all_invariants",
    "run_invariant_case",
    "run_spec",
    "run_specs",
    "specs_for",
    "write_report",
]
