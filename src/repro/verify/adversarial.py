"""Adversarial stream generators and property-style invariant checks.

The statistical specs in :mod:`repro.verify.registry` verify that each
sampler maintains the *right distribution* on well-behaved streams; this
module verifies that every sampler maintains a *valid state* on hostile
ones. The generators produce deterministic (seeded) pathological
streams — bursts, duplicated payloads, constant values, adversarial
timestamp patterns — and the harness drives every sampler family over
every stream, checking structural invariants at checkpoints:

* the reservoir never exceeds its capacity;
* arrival indices are valid (within ``[1, t]``) and counters are
  consistent (``offers == t``, ``insertions - ejections == size``);
* storage views agree (``payloads``/``arrival_indices``/``entries`` have
  one row per resident);
* two runs with the same seed produce identical reservoir state
  (determinism — the contract every regression test leans on);
* timestamped samplers reject decreasing timestamps.

These checks are cheap (no replicates), run in the fast pytest tier on
every push, and are embedded in the ``repro verify`` JSON report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.time_proportional import TimeDecayReservoir
from repro.core.timestamped import TimestampedExponentialReservoir
from repro.verify.registry import SAMPLER_FAMILIES

__all__ = [
    "ADVERSARIAL_STREAMS",
    "adversarial_stream",
    "check_state_invariants",
    "run_invariant_case",
    "run_all_invariants",
    "InvariantResult",
]


# ---------------------------------------------------------------------- #
# Stream generators
# ---------------------------------------------------------------------- #

def _burst_stream(length: int, rng: np.random.Generator) -> List[float]:
    """Quiet singles punctuated by bursts of 50-200 identical values."""
    out: List[float] = []
    while len(out) < length:
        if rng.random() < 0.1:
            out.extend([float(rng.integers(10))] * int(rng.integers(50, 200)))
        else:
            out.append(float(rng.random()))
    return out[:length]


def _duplicate_stream(length: int, rng: np.random.Generator) -> List[float]:
    """Every value drawn from a tiny alphabet — heavy duplication."""
    return [float(v) for v in rng.integers(0, 3, size=length)]


def _constant_stream(length: int, rng: np.random.Generator) -> List[float]:
    """One constant value repeated for the whole stream."""
    return [7.0] * length


def _alternating_extremes(length: int, rng: np.random.Generator) -> List[float]:
    """Alternating numeric extremes (overflow / comparison hazards)."""
    hi, lo = 1e300, -1e300
    return [hi if i % 2 == 0 else lo for i in range(length)]


ADVERSARIAL_STREAMS: Dict[str, Callable[[int, np.random.Generator], List[float]]] = {
    "bursts": _burst_stream,
    "duplicates": _duplicate_stream,
    "constant": _constant_stream,
    "extremes": _alternating_extremes,
}


def adversarial_stream(
    name: str, length: int = 1500, seed: int = 0
) -> List[float]:
    """Materialize one named adversarial stream deterministically."""
    try:
        generator = ADVERSARIAL_STREAMS[name]
    except KeyError:
        known = ", ".join(sorted(ADVERSARIAL_STREAMS))
        raise KeyError(
            f"unknown stream {name!r}; known streams: {known}"
        ) from None
    return generator(length, np.random.default_rng(seed))


# ---------------------------------------------------------------------- #
# Invariant checks
# ---------------------------------------------------------------------- #

def check_state_invariants(sampler) -> List[str]:
    """Structural invariants on a live sampler; returns violations."""
    violations: List[str] = []
    size = sampler.size
    if size > sampler.capacity:
        violations.append(
            f"size {size} exceeds capacity {sampler.capacity}"
        )
    if sampler.offers != sampler.t:
        violations.append(
            f"offers {sampler.offers} != t {sampler.t}"
        )
    payloads = sampler.payloads()
    arrivals = sampler.arrival_indices()
    entries = sampler.entries()
    if not (len(payloads) == arrivals.size == len(entries) == size):
        violations.append(
            "storage views disagree: "
            f"payloads={len(payloads)}, arrivals={arrivals.size}, "
            f"entries={len(entries)}, size={size}"
        )
    if arrivals.size:
        if arrivals.min() < 1 or arrivals.max() > sampler.t:
            violations.append(
                f"arrival indices outside [1, {sampler.t}]: "
                f"[{arrivals.min()}, {arrivals.max()}]"
            )
    ages = sampler.ages()
    if ages.size and ages.min() < 0:
        violations.append(f"negative resident age {ages.min()}")
    # Chain samplers rebuild storage wholesale; the insertion/ejection
    # ledger only balances for samplers on the shared storage layer.
    if type(sampler).__name__ != "ChainSampler":
        net = sampler.insertions - sampler.ejections
        if net != size:
            violations.append(
                f"insertions - ejections = {net} != size {size}"
            )
    if not 0.0 <= sampler.fill_fraction <= 1.0 + 1e-12:
        violations.append(f"fill_fraction {sampler.fill_fraction} invalid")
    return violations


def _state_fingerprint(sampler):
    return (
        sampler.t,
        sampler.offers,
        sampler.insertions,
        sampler.ejections,
        tuple(sampler.payloads()),
        tuple(sampler.arrival_indices().tolist()),
    )


@dataclass
class InvariantResult:
    """Outcome of one (family, stream) invariant case."""

    family: str
    stream: str
    checkpoints: int
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "stream": self.stream,
            "checkpoints": self.checkpoints,
            "passed": self.passed,
            "violations": list(self.violations),
        }


def run_invariant_case(
    family: str,
    stream_name: str,
    length: int = 1500,
    seed: int = 0,
    checkpoint_every: int = 250,
) -> InvariantResult:
    """Drive one sampler family over one adversarial stream.

    The stream is fed in checkpoint-sized slices (mixing ``offer_many``
    and per-item ``offer`` so both ingestion paths face the hostile
    input), invariants are checked at every checkpoint, and the whole
    run is repeated at the same seed to assert determinism.
    """
    factory = SAMPLER_FAMILIES[family]
    stream = adversarial_stream(stream_name, length=length, seed=seed)
    checkpoints = len(range(0, len(stream), checkpoint_every))
    result = InvariantResult(
        family=family, stream=stream_name, checkpoints=checkpoints
    )

    def one_run():
        sampler = factory(seed)
        for i, start in enumerate(range(0, len(stream), checkpoint_every)):
            block = stream[start : start + checkpoint_every]
            if i % 2 == 0:
                sampler.offer_many(block)
            else:
                for item in block:
                    sampler.offer(item)
            for violation in check_state_invariants(sampler):
                result.violations.append(
                    f"t={sampler.t}: {violation}"
                )
        return sampler

    first = one_run()
    second = one_run()
    if _state_fingerprint(first) != _state_fingerprint(second):
        result.violations.append(
            "non-deterministic: two runs at the same seed diverged"
        )
    if first.t != len(stream):
        result.violations.append(
            f"stream not fully consumed: t={first.t} != {len(stream)}"
        )
    return result


def _timestamp_ordering_cases(seed: int = 0) -> List[InvariantResult]:
    """Reversed/decreasing timestamps must be rejected, not corrupt state."""
    results: List[InvariantResult] = []
    for family, factory in (
        ("timestamped", SAMPLER_FAMILIES["timestamped"]),
        ("time_decay", SAMPLER_FAMILIES["time_decay"]),
    ):
        result = InvariantResult(
            family=family, stream="reversed-timestamps", checkpoints=1
        )
        sampler = factory(seed)
        assert isinstance(
            sampler, (TimestampedExponentialReservoir, TimeDecayReservoir)
        )
        sampler.offer_at(1.0, 10.0)
        before = _state_fingerprint(sampler)
        try:
            sampler.offer_at(2.0, 5.0)  # time runs backwards
        except ValueError:
            if _state_fingerprint(sampler) != before:
                result.violations.append(
                    "rejected decreasing timestamp but mutated state"
                )
        else:
            result.violations.append(
                "decreasing timestamp accepted (must raise ValueError)"
            )
        results.append(result)
    return results


def run_all_invariants(
    length: int = 1500, seed: int = 0
) -> List[InvariantResult]:
    """Every sampler family x every adversarial stream, plus the
    timestamp-ordering cases."""
    results = [
        run_invariant_case(family, stream_name, length=length, seed=seed)
        for family in sorted(SAMPLER_FAMILIES)
        for stream_name in sorted(ADVERSARIAL_STREAMS)
    ]
    results.extend(_timestamp_ordering_cases(seed=seed))
    return results
