"""Built-in conformance specs: every sampler family vs its paper model.

Each spec pairs one sampler family (and one ingestion path) with the
closed-form model that :mod:`repro.core.theory` and the sampler's own
``survival_probability`` expose:

* Algorithm R / skip-optimized Algorithm X — Property 2.1 uniformity of
  resident arrival indices, plus an exact per-arrival binomial
  inclusion band.
* Algorithm 2.1 — Theorem 2.2 stationary age law. The *exact* per-step
  survival is ``(1 - 1/n)`` (the theorem's exponential is its large-n
  approximation), so the model pmf is truncated-geometric with
  ``q = 1 - 1/n``; the per-resident hazard is exactly ``1/n`` at every
  fill level because the eject coin ``F(t)`` and the uniform victim
  choice cancel (``F/size = 1/n``).
* Algorithm 3.1 — Theorem 3.1 with exact survival ``1 - p_in/n``; also
  the Theorem 3.2 fill-trajectory expectation (an exact linear
  recurrence, so the replicate-mean z-test is honest).
* Variable reservoir sampling — Theorem 3.3: hazard exactly ``lambda``
  in every phase, and phase thinnings are uniform, so the age law stays
  truncated-geometric with ``q = 1 - lambda``.
* Timestamped hybrid — unit-spaced arrivals give per-step survival
  ``exp(-lam_time) * (1 - 1/n)`` (Poisson-mgf time factor times the
  deterministic-insertion replacement factor).
* Rate-adaptive time decay — verified in its sparse regime
  (``rho << n * lam_time``) where insertion never fills the reservoir
  and retention is pure wall-clock decay ``exp(-lam_time * age)``.
* Chain sampling — uniformity of the sample position over the window.
* Merge — thinning/union preserves the inputs' truncated-geometric age
  law (the Theorem 3.3 proportionality argument).
* Horvitz-Thompson estimation — the count estimator's exact expectation
  under the Algorithm 2.1 policy (including the documented Theorem 2.2
  approximation factor), as a replicate-mean z-test.

Batched (``offer_many``) variants re-run the age/uniformity checks
through the vectorized fast paths, so any future optimisation that
breaks the sampling distribution fails conformance here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.core.biased import ExponentialReservoir
from repro.core.merge import merge_exponential_reservoirs
from repro.core.sliding_window import ChainSampler, WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.theory import expected_fill_trajectory
from repro.core.time_proportional import TimeDecayReservoir
from repro.core.timestamped import TimestampedExponentialReservoir
from repro.core.unbiased import SkipUnbiasedReservoir, UnbiasedReservoir
from repro.core.variable import VariableReservoir
from repro.utils.rng import RngLike
from repro.verify.spec import (
    ConformanceSpec,
    FrequencyCheck,
    InclusionBandCheck,
    MeanBandCheck,
    select_specs,
)

__all__ = ["SPECS", "SAMPLER_FAMILIES", "get_spec", "all_spec_names", "specs_for"]

_BATCH = 256


# ---------------------------------------------------------------------- #
# Sampler family factories (shared with the adversarial invariant layer)
# ---------------------------------------------------------------------- #

SAMPLER_FAMILIES: Dict[str, Callable[[RngLike], object]] = {
    "unbiased": lambda rng: UnbiasedReservoir(20, rng=rng),
    "skip": lambda rng: SkipUnbiasedReservoir(20, rng=rng),
    "exponential": lambda rng: ExponentialReservoir(capacity=50, rng=rng),
    "space_constrained": lambda rng: SpaceConstrainedReservoir(
        capacity=50, p_in=0.4, rng=rng
    ),
    "variable": lambda rng: VariableReservoir(lam=1e-2, capacity=50, rng=rng),
    "timestamped": lambda rng: TimestampedExponentialReservoir(
        lam_time=0.01, capacity=50, rng=rng
    ),
    "time_decay": lambda rng: TimeDecayReservoir(
        lam_time=0.1, capacity=50, rng=rng
    ),
    "window_buffer": lambda rng: WindowBuffer(50, rng=rng),
    "chain": lambda rng: ChainSampler(4, window=25, rng=rng),
}


# ---------------------------------------------------------------------- #
# Model pmfs
# ---------------------------------------------------------------------- #

def _geometric_age_pmf(q: float, t: int) -> np.ndarray:
    """Truncated-geometric resident-age pmf ``P(age=a) ∝ q^a, a < t``."""
    ages = np.arange(t, dtype=np.float64)
    pmf = q**ages
    return pmf / pmf.sum()


def _uniform_pmf(size: int) -> np.ndarray:
    return np.full(size, 1.0 / size)


# ---------------------------------------------------------------------- #
# Replicate procedures (module-level: workers resolve specs by name)
# ---------------------------------------------------------------------- #

def _feed(sampler, t: int, batched: bool) -> None:
    if batched:
        for start in range(0, t, _BATCH):
            sampler.offer_many(range(start, min(start + _BATCH, t)))
    else:
        sampler.extend(range(t))


def _uniform_arrivals(factory, t, batched):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        res = factory(rng)
        _feed(res, t, batched)
        return res.arrival_indices() - 1  # 0-based for the pmf support

    return replicate


def _ages(factory, t, batched):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        res = factory(rng)
        _feed(res, t, batched)
        return res.ages()

    return replicate


def _inclusion_arrivals(factory, t):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        res = factory(rng)
        res.extend(range(t))
        return res.arrival_indices()

    return replicate


def _fill_size(factory, t):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        res = factory(rng)
        res.extend(range(t))
        return np.asarray([res.size], dtype=np.float64)

    return replicate


def _ht_count(capacity, t, horizon):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        from repro.queries.estimator import QueryEstimator
        from repro.queries.spec import count_query

        res = ExponentialReservoir(capacity=capacity, rng=rng)
        res.extend(range(t))
        est = QueryEstimator(res).estimate(count_query(horizon=horizon))
        return np.asarray([est.estimate[0]], dtype=np.float64)

    return replicate


def _merged_ages(lam, capacity, p_in, t):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        a = SpaceConstrainedReservoir(
            lam=lam, capacity=capacity, p_in=p_in, rng=rng
        )
        b = SpaceConstrainedReservoir(
            lam=lam, capacity=capacity, p_in=p_in, rng=rng
        )
        a.extend(range(t))
        b.extend(range(t))
        merged = merge_exponential_reservoirs(a, b, rng=rng)
        return merged.ages()

    return replicate


def _sharded_arrivals(capacity, workers, t):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        from repro.shard import ShardedReservoir

        fac = ShardedReservoir(capacity=capacity, workers=workers, rng=rng)
        for start in range(0, t, _BATCH):
            fac.offer_many(range(start, min(start + _BATCH, t)))
        # End-to-end: collapse the shards through the Theorem 3.3 fold
        # (a pure union at the facade's own capacity) before observing.
        return fac.fold().arrival_indices()

    return replicate


def _sharded_inclusion_model(capacity, workers, t):
    """Exact round-robin inclusion: ``(1 - 1/m)^floor((t - r)/W)``."""
    m = capacity // workers

    def probability(r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.int64)
        p = (1.0 - 1.0 / m) ** ((t - r) // workers)
        # The newest arrival on each shard is deterministically resident
        # (p = 1 exactly); binom_interval needs p in (0, 1), and the
        # clamped band degenerates to {replicates}, which the
        # deterministic count always hits.
        return np.minimum(p, 1.0 - 1e-12)

    return probability


def _chain_window_positions(capacity, window, t):
    def replicate(rng: np.random.Generator) -> np.ndarray:
        cs = ChainSampler(capacity, window=window, rng=rng)
        cs.extend(range(t))
        return cs.t - cs.arrival_indices()  # position in window, 0-based

    return replicate


def _recovery_equivalence(t, capacity, workers):
    """Kill/recover a durable run at a random record boundary and compare.

    Each replicate draws a fresh sampler seed, batch split, checkpoint
    cadence, engine kind (serial Algorithm 2.1 vs the sharded facade),
    and crash position; runs the stream once uninterrupted and once
    through crash -> ``DurableReservoir.recover`` -> resume; and returns
    1.0 iff the two final ``state_dict()`` payloads (storage, counters,
    and RNG bit-generator state) are byte-identical under pickle.
    """

    def replicate(rng: np.random.Generator) -> np.ndarray:
        import pickle
        import tempfile
        from pathlib import Path

        from repro.persist import DurableReservoir

        seed = int(rng.integers(2**31))
        batch = int(rng.integers(8, 48))
        cadence = int(rng.integers(2, 9))
        sharded = bool(rng.integers(2))
        blocks = [
            list(range(lo, min(lo + batch, t))) for lo in range(0, t, batch)
        ]
        crash_at = int(rng.integers(1, len(blocks)))

        def make():
            if sharded:
                from repro.shard import ShardedReservoir

                return ShardedReservoir(
                    capacity=capacity, workers=workers, rng=seed
                )
            return ExponentialReservoir(capacity=capacity, rng=seed)

        reference = make()
        for block in blocks:
            reference.offer_many(block)

        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "journal"
            engine = DurableReservoir(
                make(),
                journal,
                wal_sync="never",
                checkpoint_every_records=cadence,
            )
            for block in blocks[:crash_at]:
                engine.offer_many(block)
            # Kill: no close(), no final checkpoint — the WAL tail is
            # all recovery has.
            del engine
            recovered = DurableReservoir.recover(journal, wal_sync="never")
            for block in blocks[crash_at:]:
                recovered.offer_many(block)
            identical = pickle.dumps(
                recovered.sampler.state_dict()
            ) == pickle.dumps(reference.state_dict())
            recovered.close(final_checkpoint=False)
        return np.asarray([1.0 if identical else 0.0])

    return replicate


def _exact_ht_count_expectation(n: int, horizon: int) -> float:
    """``sum_{a<h} (1 - 1/n)^a / exp(-a/n)``: exact survival over the
    Theorem 2.2 model the estimator divides by."""
    ages = np.arange(horizon, dtype=np.float64)
    return float(np.sum(((1.0 - 1.0 / n) * np.exp(1.0 / n)) ** ages))


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #

def _build_specs() -> Dict[str, ConformanceSpec]:
    specs: List[ConformanceSpec] = []

    # --- uniform families (Property 2.1) --------------------------------
    n_u, t_u = 20, 400
    for name, factory, batched in (
        ("unbiased-uniform", lambda rng: UnbiasedReservoir(n_u, rng=rng), False),
        (
            "unbiased-uniform-batched",
            lambda rng: UnbiasedReservoir(n_u, rng=rng),
            True,
        ),
        ("skip-uniform", lambda rng: SkipUnbiasedReservoir(n_u, rng=rng), False),
        (
            "skip-uniform-batched",
            lambda rng: SkipUnbiasedReservoir(n_u, rng=rng),
            True,
        ),
    ):
        specs.append(
            ConformanceSpec(
                name=name,
                family="skip" if "skip" in name else "unbiased",
                theory="Property 2.1",
                description=(
                    "resident arrival indices are uniform over [1, t] "
                    f"(n={n_u}, t={t_u})"
                ),
                replicate=_uniform_arrivals(factory, t_u, batched),
                check=FrequencyCheck(_uniform_pmf(t_u), alpha=1e-4),
                ingest="batched" if batched else "per-item",
            )
        )

    n_b, t_b = 10, 100
    specs.append(
        ConformanceSpec(
            name="unbiased-inclusion-band",
            family="unbiased",
            theory="Property 2.1",
            description=(
                "every arrival's inclusion count across replicates sits in "
                f"the exact Binomial(reps, n/t) band (n={n_b}, t={t_b})"
            ),
            replicate=_inclusion_arrivals(
                lambda rng: UnbiasedReservoir(n_b, rng=rng), t_b
            ),
            check=InclusionBandCheck(
                positions=t_b,
                probability=lambda r: np.full_like(
                    np.asarray(r, dtype=np.float64), n_b / t_b
                ),
                alpha=1e-4,
            ),
        )
    )

    # --- Algorithm 2.1 (Theorem 2.2) ------------------------------------
    n_e, t_e = 50, 2000
    q_e = 1.0 - 1.0 / n_e
    for name, batched in (
        ("exponential-age", False),
        ("exponential-age-batched", True),
    ):
        specs.append(
            ConformanceSpec(
                name=name,
                family="exponential",
                theory="Theorem 2.2",
                description=(
                    "resident ages follow the truncated-geometric law "
                    f"q=1-1/n (n={n_e}, t={t_e})"
                ),
                replicate=_ages(
                    lambda rng: ExponentialReservoir(capacity=n_e, rng=rng),
                    t_e,
                    batched,
                ),
                check=FrequencyCheck(_geometric_age_pmf(q_e, t_e), alpha=1e-4),
                ingest="batched" if batched else "per-item",
            )
        )

    h_ht = 200
    specs.append(
        ConformanceSpec(
            name="exponential-ht-count",
            family="exponential",
            theory="Theorem 2.2 + Horvitz-Thompson",
            description=(
                "HT horizon-count estimates match the exact expectation "
                f"(n={n_e}, t=1000, horizon={h_ht})"
            ),
            replicate=_ht_count(n_e, 1000, h_ht),
            check=MeanBandCheck(
                expected=_exact_ht_count_expectation(n_e, h_ht), alpha=1e-5
            ),
        )
    )

    # --- Algorithm 3.1 (Theorems 3.1 / 3.2) -----------------------------
    n_s, p_in_s, t_s = 50, 0.4, 3000
    specs.append(
        ConformanceSpec(
            name="space-constrained-age",
            family="space_constrained",
            theory="Theorem 3.1",
            description=(
                "resident ages follow the truncated-geometric law "
                f"q=1-p_in/n (n={n_s}, p_in={p_in_s}, t={t_s})"
            ),
            replicate=_ages(
                lambda rng: SpaceConstrainedReservoir(
                    capacity=n_s, p_in=p_in_s, rng=rng
                ),
                t_s,
                False,
            ),
            check=FrequencyCheck(
                _geometric_age_pmf(1.0 - p_in_s / n_s, t_s), alpha=1e-4
            ),
        )
    )

    n_f, p_in_f, t_f = 40, 0.5, 200
    specs.append(
        ConformanceSpec(
            name="space-constrained-fill",
            family="space_constrained",
            theory="Theorem 3.2",
            description=(
                "mean fill after t arrivals matches the exact trajectory "
                f"n(1-(1-p_in/n)^t) (n={n_f}, p_in={p_in_f}, t={t_f})"
            ),
            replicate=_fill_size(
                lambda rng: SpaceConstrainedReservoir(
                    capacity=n_f, p_in=p_in_f, rng=rng
                ),
                t_f,
            ),
            check=MeanBandCheck(
                expected=float(expected_fill_trajectory(n_f, p_in_f, t_f)),
                alpha=1e-5,
            ),
        )
    )

    # --- variable reservoir sampling (Theorem 3.3) ----------------------
    lam_v, n_v, t_v = 1e-2, 50, 3000
    specs.append(
        ConformanceSpec(
            name="variable-age",
            family="variable",
            theory="Theorem 3.3",
            description=(
                "resident ages stay truncated-geometric with q=1-lambda "
                f"across phase transitions (lam={lam_v}, n={n_v}, t={t_v})"
            ),
            replicate=_ages(
                lambda rng: VariableReservoir(lam=lam_v, capacity=n_v, rng=rng),
                t_v,
                False,
            ),
            check=FrequencyCheck(
                _geometric_age_pmf(1.0 - lam_v, t_v), alpha=1e-4
            ),
        )
    )

    # --- timestamped hybrid decay ---------------------------------------
    # The hybrid model (*) is exact in the two regimes its docstring
    # names; mid-regime the insertion-replacement hazard scales with the
    # (analytically open) stationary P(full), so conformance pins the
    # limits. Sparse: rho << n*lam, the reservoir never fills and decay
    # is pure wall-clock, q = exp(-lam). Dense: rho >> n*lam, memory
    # pressure dominates and the policy degrades to Algorithm 2.1,
    # q = exp(-lam)(1-1/n) with exp(-lam) ~ 1.
    lam_sp, n_sp, t_sp = 0.1, 50, 600
    specs.append(
        ConformanceSpec(
            name="timestamped-age-sparse",
            family="timestamped",
            theory="hybrid decay model (*), sparse regime",
            description=(
                "with rho << n*lam the reservoir never fills and ages are "
                f"pure-exponential q=exp(-lam) (lam={lam_sp}, n={n_sp}, "
                f"t={t_sp})"
            ),
            replicate=_ages(
                lambda rng: TimestampedExponentialReservoir(
                    lam_time=lam_sp, capacity=n_sp, rng=rng
                ),
                t_sp,
                False,
            ),
            check=FrequencyCheck(
                _geometric_age_pmf(float(np.exp(-lam_sp)), t_sp), alpha=1e-4
            ),
        )
    )
    lam_t, n_t, t_t = 1e-4, 50, 2000
    q_t = float(np.exp(-lam_t)) * (1.0 - 1.0 / n_t)
    for name, batched in (
        ("timestamped-age-dense", False),
        ("timestamped-age-dense-batched", True),
    ):
        specs.append(
            ConformanceSpec(
                name=name,
                family="timestamped",
                theory="hybrid decay model (*), dense regime",
                description=(
                    "with rho >> n*lam memory pressure dominates and ages "
                    f"follow Algorithm 2.1's law q=exp(-lam)(1-1/n) "
                    f"(lam={lam_t}, n={n_t}, t={t_t})"
                ),
                replicate=_ages(
                    lambda rng: TimestampedExponentialReservoir(
                        lam_time=lam_t, capacity=n_t, rng=rng
                    ),
                    t_t,
                    batched,
                ),
                check=FrequencyCheck(_geometric_age_pmf(q_t, t_t), alpha=1e-4),
                ingest="batched" if batched else "per-item",
            )
        )

    # --- rate-adaptive time decay (sparse regime) -----------------------
    lam_d, n_d, t_d = 0.1, 50, 600
    specs.append(
        ConformanceSpec(
            name="time-decay-age",
            family="time_decay",
            theory="pure wall-clock decay (sparse regime)",
            description=(
                "with rho << n*lam the reservoir never fills and ages are "
                f"pure-exponential q=exp(-lam) (lam={lam_d}, n={n_d}, t={t_d})"
            ),
            replicate=_ages(
                lambda rng: TimeDecayReservoir(
                    lam_time=lam_d, capacity=n_d, rng=rng
                ),
                t_d,
                False,
            ),
            check=FrequencyCheck(
                _geometric_age_pmf(float(np.exp(-lam_d)), t_d), alpha=1e-4
            ),
        )
    )

    # --- sliding-window chain sampling ----------------------------------
    k_c, w_c, t_c = 4, 25, 100
    specs.append(
        ConformanceSpec(
            name="chain-window-uniform",
            family="chain",
            theory="Babcock et al. chain sampling",
            description=(
                "each chain's sample is uniform over the window "
                f"(k={k_c}, W={w_c}, t={t_c})"
            ),
            replicate=_chain_window_positions(k_c, w_c, t_c),
            check=FrequencyCheck(_uniform_pmf(w_c), alpha=1e-4),
        )
    )

    # --- sharded ingestion (union of W shards == one global reservoir) --
    n_sh, w_sh, t_sh = 48, 4, 240
    m_sh = n_sh // w_sh
    specs.append(
        ConformanceSpec(
            name="sharded_exponential_inclusion",
            family="sharded",
            theory="Theorem 2.2 over round-robin shards + Theorem 3.3 fold",
            description=(
                "end-to-end sharded sample (round-robin over W workers, "
                "folded to one reservoir) keeps every arrival inside the "
                f"exact inclusion band (1-1/m)^floor((t-r)/W) "
                f"(n={n_sh}, W={w_sh}, m={m_sh}, t={t_sh})"
            ),
            replicate=_sharded_arrivals(n_sh, w_sh, t_sh),
            check=InclusionBandCheck(
                positions=t_sh,
                probability=_sharded_inclusion_model(n_sh, w_sh, t_sh),
                alpha=1e-4,
            ),
            ingest="batched",
        )
    )

    # --- durable persistence (crash/recover byte-equivalence) -----------
    t_p, n_p, w_p = 400, 24, 4
    specs.append(
        ConformanceSpec(
            name="recovery_equivalence",
            family="persist",
            theory="WAL replay determinism (checkpoint + tail replay)",
            description=(
                "killing a durable run at a random record boundary, "
                "recovering, and resuming reaches a state_dict byte-"
                "identical to the uninterrupted run (serial and sharded; "
                f"t={t_p}, n={n_p}, W={w_p})"
            ),
            replicate=_recovery_equivalence(t_p, n_p, w_p),
            check=MeanBandCheck(expected=1.0, alpha=1e-5),
            default_replicates=40,
            test_replicates=12,
            ingest="batched",
        )
    )

    # --- merge (Theorem 3.3 proportionality) ----------------------------
    lam_m, n_m, p_in_m, t_m = 1e-2, 50, 0.5, 2000
    specs.append(
        ConformanceSpec(
            name="merge-age",
            family="merge",
            theory="Theorem 3.3 (uniform thinning)",
            description=(
                "merged-reservoir ages keep the inputs' truncated-geometric "
                f"law q=1-p_in/n (lam={lam_m}, n={n_m}, p_in={p_in_m})"
            ),
            replicate=_merged_ages(lam_m, n_m, p_in_m, t_m),
            check=FrequencyCheck(
                _geometric_age_pmf(1.0 - p_in_m / n_m, t_m), alpha=1e-4
            ),
        )
    )

    return {spec.name: spec for spec in specs}


SPECS: Dict[str, ConformanceSpec] = _build_specs()


def get_spec(name: str) -> ConformanceSpec:
    """Look up one spec by name."""
    try:
        return SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SPECS))
        raise KeyError(f"unknown spec {name!r}; known specs: {known}") from None


def all_spec_names() -> List[str]:
    """Sorted names of every built-in spec."""
    return sorted(SPECS)


def specs_for(names) -> List[ConformanceSpec]:
    """Resolve a user selection against the built-in registry."""
    return select_specs(SPECS, list(names))
