"""Machine-readable verification reports (``VERIFY_report.json``).

One report captures a full ``repro verify`` run: per-spec statistics,
p-values, confidence bands and verdicts, plus the adversarial invariant
results — everything a CI job (or a human diffing two runs) needs to
decide whether a change broke the sampling distribution.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.verify.adversarial import InvariantResult
from repro.verify.spec import SpecResult

__all__ = ["build_report", "write_report", "render_report"]

SCHEMA = "repro.verify/1"


def build_report(
    spec_results: Sequence[SpecResult],
    invariant_results: Sequence[InvariantResult],
    seed: int,
    jobs: int,
    elapsed_seconds: float,
) -> Dict[str, object]:
    """Assemble the JSON-ready report dict."""
    specs = [r.to_dict() for r in spec_results]
    invariants = [r.to_dict() for r in invariant_results]
    passed = all(r.passed for r in spec_results) and all(
        r.passed for r in invariant_results
    )
    return {
        "schema": SCHEMA,
        "seed": int(seed),
        "jobs": int(jobs),
        "elapsed_seconds": float(elapsed_seconds),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "specs": specs,
        "invariants": invariants,
        "specs_passed": sum(1 for r in spec_results if r.passed),
        "specs_total": len(specs),
        "invariants_passed": sum(1 for r in invariant_results if r.passed),
        "invariants_total": len(invariants),
        "passed": passed,
    }


def write_report(
    report: Dict[str, object], path: Union[str, Path]
) -> Path:
    """Write the report as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def _fmt_p(p: float) -> str:
    return f"{p:.3g}" if p >= 1e-3 else f"{p:.1e}"


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary table of a report dict."""
    lines: List[str] = []
    name_width = max(
        [len(str(s["name"])) for s in report["specs"]] + [4]
    )
    header = (
        f"{'spec':<{name_width}}  {'stat':>10}  {'p-value':>9}  "
        f"{'alpha':>7}  {'reps':>5}  verdict"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for s in report["specs"]:
        verdict = "pass" if s["passed"] else "FAIL"
        lines.append(
            f"{s['name']:<{name_width}}  {s['statistic_value']:>10.3f}  "
            f"{_fmt_p(s['p_value']):>9}  {s['alpha']:>7.0e}  "
            f"{s['replicates']:>5}  {verdict}"
        )
    inv_failed = [i for i in report["invariants"] if not i["passed"]]
    lines.append("")
    lines.append(
        f"invariants: {report['invariants_passed']}/"
        f"{report['invariants_total']} passed"
    )
    for inv in inv_failed:
        lines.append(f"  FAIL {inv['family']} x {inv['stream']}:")
        for violation in inv["violations"]:
            lines.append(f"    - {violation}")
    lines.append(
        f"specs: {report['specs_passed']}/{report['specs_total']} passed; "
        f"overall: {'PASS' if report['passed'] else 'FAIL'} "
        f"({report['elapsed_seconds']:.1f}s, jobs={report['jobs']}, "
        f"seed={report['seed']})"
    )
    return "\n".join(lines)


def load_report(path: Union[str, Path]) -> Dict[str, object]:
    """Read a previously written report."""
    return json.loads(Path(path).read_text())


def default_report_path() -> Optional[Path]:
    """Canonical report location at the repo root (cwd-based)."""
    return Path("VERIFY_report.json")
