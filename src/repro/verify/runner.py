"""Seeded Monte-Carlo replicate runner with a multiprocessing fan-out.

Seeding contract
----------------
One base seed drives the whole run. Replicate ``i`` of a spec gets the
``i``-th child of ``SeedSequence(base_seed).spawn(...)`` derived from the
spec's *name*, so:

* results are bit-identical for the same (spec, seed, replicates)
  regardless of ``jobs`` — workers only change *where* a replicate runs,
  never which generator it uses, and aggregation preserves submission
  order;
* adding or removing specs never perturbs another spec's replicates.

Workers receive ``(spec_name, seed_sequence)`` pairs and re-resolve the
spec from :mod:`repro.verify.registry`, so spec objects (with their
closures) never cross process boundaries.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import time
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.verify.registry import get_spec
from repro.verify.spec import ConformanceSpec, SpecResult

__all__ = ["run_spec", "run_specs", "spec_seed_sequences"]


def spec_seed_sequences(
    spec_name: str, base_seed: int, replicates: int
) -> List[np.random.SeedSequence]:
    """Per-replicate child seeds for one spec (see module docstring).

    The spec name is folded into the spawn key via CRC-32 (stable across
    runs and interpreters, unlike Python's randomized ``hash``) so each
    spec draws from its own independent stream.
    """
    spec_key = zlib.crc32(spec_name.encode("utf-8"))
    root = np.random.SeedSequence(entropy=base_seed, spawn_key=(spec_key,))
    return root.spawn(replicates)


def _replicate_worker(
    task: Tuple[str, np.random.SeedSequence]
) -> np.ndarray:
    """Run one replicate of one spec (top-level: picklable for Pool)."""
    spec_name, seed_seq = task
    spec = get_spec(spec_name)
    return spec.replicate(np.random.default_rng(seed_seq))


def _run_observations(
    spec: ConformanceSpec,
    replicates: int,
    jobs: int,
    base_seed: int,
    pool: Optional[multiprocessing.pool.Pool],
) -> List[np.ndarray]:
    tasks = [
        (spec.name, seq)
        for seq in spec_seed_sequences(spec.name, base_seed, replicates)
    ]
    if pool is None:
        return [_replicate_worker(task) for task in tasks]
    chunksize = max(1, replicates // (jobs * 4))
    return pool.map(_replicate_worker, tasks, chunksize=chunksize)


def run_spec(
    spec: ConformanceSpec,
    replicates: Optional[int] = None,
    jobs: int = 1,
    seed: int = 0,
) -> SpecResult:
    """Run one spec end to end and return its verdict."""
    results = run_specs([spec], replicates=replicates, jobs=jobs, seed=seed)
    return results[0]


def run_specs(
    specs: Sequence[ConformanceSpec],
    replicates: Optional[int] = None,
    jobs: int = 1,
    seed: int = 0,
) -> List[SpecResult]:
    """Run several specs, sharing one worker pool across all of them.

    ``replicates=None`` uses each spec's own default budget. ``jobs=1``
    runs inline (no pool — simplest to debug and profile); ``jobs>1``
    fans replicates out over a process pool, one pool for the whole
    batch so startup cost is paid once.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    pool = None
    results: List[SpecResult] = []
    try:
        if jobs > 1:
            pool = multiprocessing.get_context().Pool(processes=jobs)
        for spec in specs:
            reps = (
                spec.default_replicates if replicates is None else int(replicates)
            )
            if reps < 1:
                raise ValueError(f"replicates must be >= 1, got {reps}")
            start = time.perf_counter()
            observations = _run_observations(spec, reps, jobs, seed, pool)
            check_result = spec.check.evaluate(observations)
            results.append(
                SpecResult(
                    spec=spec,
                    result=check_result,
                    replicates=reps,
                    seed=seed,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    return results
