"""Declarative conformance specs and their verdict checks.

A :class:`ConformanceSpec` is the unit of statistical verification: it
names a sampler family, a theoretical model from the paper, a replicate
procedure (build the sampler, feed a stream, return per-replicate
observations), and a :class:`Check` that turns pooled observations into
a statistic, a p-value, and a pass/fail verdict. The Monte-Carlo runner
(:mod:`repro.verify.runner`) owns seeding and the process fan-out; specs
stay pure descriptions so that they can be listed, selected, and
reported uniformly.

Checks
------
* :class:`FrequencyCheck` — bin pooled observations on an integer
  support, compare against the model pmf with Pearson chi-square.
  Adjacent support points are merged until every bin's expected count
  clears a floor, so the chi-square approximation is valid at any
  replicate budget. Inclusions within one replicate are weakly
  (negatively) dependent, so spec alphas are set loose — the check gates
  gross distributional breakage, not third-decimal purity.
* :class:`MeanBandCheck` — per-replicate scalar observations, CLT z-test
  of the replicate mean against an exact expectation. Replicates are
  fully independent, so this p-value is honest.
* :class:`InclusionBandCheck` — per-arrival inclusion counts across
  replicates are Binomial(replicates, p(r, t)); every position must land
  inside the exact central band, Bonferroni-corrected over positions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.verify import stats as vstats

__all__ = [
    "Check",
    "CheckResult",
    "ConformanceSpec",
    "SpecResult",
    "FrequencyCheck",
    "MeanBandCheck",
    "InclusionBandCheck",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of evaluating a check on pooled observations."""

    statistic: float
    p_value: float
    alpha: float
    passed: bool
    #: Acceptance region for the statistic at ``alpha`` (inclusive), when
    #: the check has a natural one; ``None`` otherwise.
    band: Optional[Tuple[float, float]]
    detail: Dict[str, object] = field(default_factory=dict)


class Check(ABC):
    """Turns pooled per-replicate observations into a verdict."""

    #: Short machine-readable statistic kind for reports.
    kind: str = "abstract"

    @abstractmethod
    def evaluate(self, observations: List[np.ndarray]) -> CheckResult:
        """Evaluate the check over one observation array per replicate."""


class FrequencyCheck(Check):
    """Chi-square frequency conformance against a model pmf.

    Parameters
    ----------
    pmf:
        Model probabilities over the integer support ``0..len(pmf)-1``
        (values are normalized; the support is the observation range).
    alpha:
        Verdict threshold on the chi-square p-value. Within-replicate
        dependence makes the null distribution only approximate, so use
        loose alphas (1e-6..1e-4).
    min_expected:
        Adjacent-bin merge floor for expected counts.
    """

    kind = "chi2"

    def __init__(
        self, pmf: np.ndarray, alpha: float = 1e-4, min_expected: float = 20.0
    ) -> None:
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.ndim != 1 or pmf.size < 2:
            raise ValueError("pmf must be a 1-D array with >= 2 entries")
        if np.any(pmf < 0.0) or pmf.sum() <= 0.0:
            raise ValueError("pmf must be non-negative with positive mass")
        self.pmf = pmf / pmf.sum()
        self.alpha = float(alpha)
        self.min_expected = float(min_expected)

    def _merged_bins(
        self, counts: np.ndarray, expected: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedily merge adjacent support points to clear the floor."""
        obs_bins: List[float] = []
        exp_bins: List[float] = []
        acc_o = acc_e = 0.0
        for o, e in zip(counts, expected):
            acc_o += o
            acc_e += e
            if acc_e >= self.min_expected:
                obs_bins.append(acc_o)
                exp_bins.append(acc_e)
                acc_o = acc_e = 0.0
        if acc_e > 0.0:
            if exp_bins:
                obs_bins[-1] += acc_o
                exp_bins[-1] += acc_e
            else:
                obs_bins.append(acc_o)
                exp_bins.append(acc_e)
        return np.asarray(obs_bins), np.asarray(exp_bins)

    def evaluate(self, observations: List[np.ndarray]) -> CheckResult:
        pooled = np.concatenate([np.asarray(o).ravel() for o in observations])
        pooled = pooled.astype(np.int64)
        support = self.pmf.size
        if pooled.size == 0:
            raise ValueError("no observations to check")
        if pooled.min() < 0 or pooled.max() >= support:
            raise ValueError(
                f"observations outside model support [0, {support})"
            )
        counts = np.bincount(pooled, minlength=support).astype(np.float64)
        expected = self.pmf * pooled.size
        obs_bins, exp_bins = self._merged_bins(counts, expected)
        if obs_bins.size < 2:
            raise ValueError(
                "fewer than 2 bins after merging; increase replicates"
            )
        stat, p_value = vstats.chisquare(obs_bins, exp_bins)
        critical = vstats.chi2_isf(self.alpha, obs_bins.size - 1)
        return CheckResult(
            statistic=stat,
            p_value=p_value,
            alpha=self.alpha,
            passed=p_value >= self.alpha,
            band=(0.0, critical),
            detail={
                "bins": int(obs_bins.size),
                "observations": int(pooled.size),
                "dof": int(obs_bins.size - 1),
            },
        )


class MeanBandCheck(Check):
    """CLT z-test of the replicate mean against an exact expectation."""

    kind = "z_mean"

    def __init__(self, expected: float, alpha: float = 1e-5) -> None:
        self.expected = float(expected)
        self.alpha = float(alpha)

    def evaluate(self, observations: List[np.ndarray]) -> CheckResult:
        values = np.asarray(
            [float(np.asarray(o).ravel()[0]) for o in observations]
        )
        reps = values.size
        if reps < 2:
            raise ValueError("need >= 2 replicates for a z-test")
        mean = float(values.mean())
        se = float(values.std(ddof=1) / np.sqrt(reps))
        if se == 0.0:
            z = 0.0 if mean == self.expected else float("inf")
        else:
            z = (mean - self.expected) / se
        p_value = 2.0 * vstats.normal_sf(abs(z))
        # Invert 2*Phi-bar(z) = alpha for the acceptance band half-width.
        lo, hi = 0.0, 50.0
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if 2.0 * vstats.normal_sf(mid) > self.alpha:
                lo = mid
            else:
                hi = mid
        z_crit = 0.5 * (lo + hi)
        return CheckResult(
            statistic=z,
            p_value=p_value,
            alpha=self.alpha,
            passed=p_value >= self.alpha,
            band=(-z_crit, z_crit),
            detail={
                "mean": mean,
                "expected": self.expected,
                "se": se,
                "replicates": int(reps),
            },
        )


class InclusionBandCheck(Check):
    """Per-arrival inclusion counts inside an exact binomial band.

    Observations are per-replicate arrays of resident arrival indices
    (1-based). The count of replicates retaining arrival ``r`` is
    Binomial(replicates, ``probability(r)``); each position must land in
    the exact central band at ``alpha / positions`` (Bonferroni), and
    the reported p-value is the Bonferroni-adjusted worst tail.
    """

    kind = "binom_band"

    def __init__(
        self,
        positions: int,
        probability: Callable[[np.ndarray], np.ndarray],
        alpha: float = 1e-4,
    ) -> None:
        if positions < 1:
            raise ValueError("positions must be >= 1")
        self.positions = int(positions)
        self.probability = probability
        self.alpha = float(alpha)

    def evaluate(self, observations: List[np.ndarray]) -> CheckResult:
        reps = len(observations)
        counts = np.zeros(self.positions, dtype=np.int64)
        for arrivals in observations:
            arrivals = np.asarray(arrivals, dtype=np.int64)
            if arrivals.size == 0:
                continue
            if arrivals.min() < 1 or arrivals.max() > self.positions:
                raise ValueError("arrival index outside [1, positions]")
            counts[arrivals - 1] += 1
        probs = np.asarray(
            self.probability(np.arange(1, self.positions + 1)),
            dtype=np.float64,
        )
        per_position_alpha = self.alpha / self.positions
        worst_p = 1.0
        worst_r = 0
        in_band = True
        bands_lo = np.zeros(self.positions, dtype=np.int64)
        bands_hi = np.zeros(self.positions, dtype=np.int64)
        for r in range(self.positions):
            p = float(probs[r])
            lo, hi = vstats.binom_interval(reps, p, per_position_alpha)
            bands_lo[r], bands_hi[r] = lo, hi
            tail = vstats.binom_two_sided_pvalue(int(counts[r]), reps, p)
            if tail < worst_p:
                worst_p, worst_r = tail, r + 1
            if not lo <= counts[r] <= hi:
                in_band = False
        adjusted = min(1.0, worst_p * self.positions)
        return CheckResult(
            statistic=float(counts[worst_r - 1]) if self.positions else 0.0,
            p_value=adjusted,
            alpha=self.alpha,
            passed=in_band,
            band=(float(bands_lo.min()), float(bands_hi.max())),
            detail={
                "worst_position": int(worst_r),
                "positions": int(self.positions),
                "replicates": int(reps),
            },
        )


@dataclass(frozen=True)
class ConformanceSpec:
    """One declarative sampler-vs-theory conformance statement.

    ``replicate`` builds the sampler, feeds it a stream, and returns the
    per-replicate observation array; it must draw all randomness from
    the generator it is given so runs are reproducible and
    parallelizable. Specs are registered by name in
    :mod:`repro.verify.registry`; worker processes re-resolve the spec
    from the registry, so ``replicate`` functions must be module-level
    (picklable by name is not required — only the spec *name* crosses
    process boundaries).
    """

    name: str
    family: str
    theory: str
    description: str
    replicate: Callable[[np.random.Generator], np.ndarray]
    check: Check
    default_replicates: int = 200
    #: Replicate budget used by the pytest ``statistical`` tier (smaller
    #: than the CLI default so the suite stays quick).
    test_replicates: int = 80
    #: Ingestion path exercised, for the report ("per-item"/"batched").
    ingest: str = "per-item"

    def describe(self) -> Dict[str, object]:
        """Static metadata for listings and reports."""
        return {
            "name": self.name,
            "family": self.family,
            "theory": self.theory,
            "description": self.description,
            "statistic": self.check.kind,
            "ingest": self.ingest,
            "default_replicates": self.default_replicates,
        }


@dataclass(frozen=True)
class SpecResult:
    """A spec's verdict plus run metadata, ready for JSON."""

    spec: ConformanceSpec
    result: CheckResult
    replicates: int
    seed: int
    elapsed_seconds: float

    @property
    def passed(self) -> bool:
        return self.result.passed

    def to_dict(self) -> Dict[str, object]:
        payload = dict(self.spec.describe())
        payload.update(
            {
                "replicates": int(self.replicates),
                "seed": int(self.seed),
                "statistic_value": float(self.result.statistic),
                "p_value": float(self.result.p_value),
                "alpha": float(self.result.alpha),
                "confidence_band": (
                    list(self.result.band)
                    if self.result.band is not None
                    else None
                ),
                "passed": bool(self.result.passed),
                "elapsed_seconds": float(self.elapsed_seconds),
                "detail": dict(self.result.detail),
            }
        )
        return payload


def select_specs(
    registry: Dict[str, ConformanceSpec], names: Sequence[str]
) -> List[ConformanceSpec]:
    """Resolve user-supplied spec names (empty selection = all specs)."""
    if not names:
        return [registry[name] for name in sorted(registry)]
    missing = [name for name in names if name not in registry]
    if missing:
        known = ", ".join(sorted(registry))
        raise KeyError(
            f"unknown spec(s) {missing}; known specs: {known}"
        )
    return [registry[name] for name in names]
