"""Numpy-only test statistics for the conformance runner.

The verification subsystem must run wherever the library runs, and the
library's only hard dependency is numpy — so the handful of special
functions needed for goodness-of-fit p-values (regularized incomplete
gamma for chi-square tails, the Kolmogorov distribution for KS tails,
binomial tails via log-gamma) are implemented here directly instead of
importing scipy. ``tests/test_verify_stats.py`` cross-checks every
function against scipy when scipy is installed.

All functions are deterministic pure functions of their inputs; the
Monte-Carlo layer above them owns every random draw.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

__all__ = [
    "gammainc_lower",
    "gammainc_upper",
    "chi2_sf",
    "chi2_isf",
    "chisquare",
    "normal_sf",
    "ks_statistic",
    "kolmogorov_sf",
    "binom_logpmf",
    "binom_cdf",
    "binom_sf",
    "binom_two_sided_pvalue",
    "binom_interval",
]

_MAX_ITER = 500
_EPS = 3e-14


def _gamma_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma ``P(a, x)`` by series (x < a+1)."""
    if x <= 0.0:
        return 0.0
    ap = a
    term = 1.0 / a
    total = term
    for _ in range(_MAX_ITER):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_cf(a: float, x: float) -> float:
    """Upper regularized incomplete gamma ``Q(a, x)`` by continued
    fraction (x >= a+1), modified Lentz algorithm."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def gammainc_lower(a: float, x: float) -> float:
    """Regularized lower incomplete gamma ``P(a, x)``."""
    if a <= 0.0:
        raise ValueError(f"a must be > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"x must be >= 0, got {x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return _gamma_series(a, x)
    return 1.0 - _gamma_cf(a, x)


def gammainc_upper(a: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(a, x) = 1 - P(a, x)``."""
    if a <= 0.0:
        raise ValueError(f"a must be > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"x must be >= 0, got {x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_cf(a, x)


def chi2_sf(x: float, df: float) -> float:
    """Chi-square survival function ``P(X > x)`` with ``df`` degrees."""
    if df <= 0:
        raise ValueError(f"df must be > 0, got {df}")
    if x <= 0.0:
        return 1.0
    return gammainc_upper(df / 2.0, x / 2.0)


def chi2_isf(p: float, df: float) -> float:
    """Inverse chi-square survival function (critical value) by bisection."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p}")
    lo, hi = 0.0, max(df, 1.0)
    while chi2_sf(hi, df) > p:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - absurd tail request
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if chi2_sf(mid, df) > p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def chisquare(
    observed: np.ndarray, expected: np.ndarray
) -> Tuple[float, float]:
    """Pearson chi-square statistic and p-value (``len - 1`` dof).

    Mirrors ``scipy.stats.chisquare`` for equal totals; callers are
    responsible for merging bins with tiny expected counts first.
    """
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must have the same shape")
    if observed.size < 2:
        raise ValueError("need at least 2 bins")
    if np.any(expected <= 0.0):
        raise ValueError("expected counts must be positive")
    stat = float(np.sum((observed - expected) ** 2 / expected))
    return stat, chi2_sf(stat, observed.size - 1)


def normal_sf(z: float) -> float:
    """Standard-normal survival function ``P(Z > z)``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def ks_statistic(
    data: np.ndarray, cdf: Callable[[np.ndarray], np.ndarray]
) -> float:
    """One-sample Kolmogorov-Smirnov statistic ``sup |F_n - F|``.

    ``cdf`` must be vectorized over a float array. For discrete models
    pass the right-continuous CDF; the statistic is then conservative.
    """
    data = np.sort(np.asarray(data, dtype=np.float64))
    n = data.size
    if n == 0:
        raise ValueError("need at least one observation")
    model = np.asarray(cdf(data), dtype=np.float64)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(
        max(np.max(ecdf_hi - model), np.max(model - ecdf_lo))
    )


def kolmogorov_sf(d: float, n: int) -> float:
    """Asymptotic KS p-value with Stephens' small-sample correction.

    ``Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`` at
    ``lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) d``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if d <= 0.0:
        return 1.0
    if d >= 1.0:
        return 0.0
    sqrt_n = math.sqrt(n)
    lam = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def binom_logpmf(k: np.ndarray, n: int, p: float) -> np.ndarray:
    """Vectorized binomial log-pmf via log-gamma."""
    k = np.asarray(k, dtype=np.float64)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p}")
    lgamma = np.vectorize(math.lgamma, otypes=[np.float64])
    return (
        lgamma(n + 1.0)
        - lgamma(k + 1.0)
        - lgamma(n - k + 1.0)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def _binom_cdf_table(n: int, p: float) -> np.ndarray:
    """Exact CDF over 0..n (cumsum of pmf, numerically renormalized)."""
    pmf = np.exp(binom_logpmf(np.arange(n + 1), n, p))
    cdf = np.cumsum(pmf)
    return np.minimum(cdf / cdf[-1], 1.0)


def binom_cdf(k: int, n: int, p: float) -> float:
    """Exact binomial CDF ``P(X <= k)``."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    return float(_binom_cdf_table(n, p)[int(k)])


def binom_sf(k: int, n: int, p: float) -> float:
    """Exact binomial survival ``P(X > k)``."""
    return 1.0 - binom_cdf(k, n, p)


def binom_two_sided_pvalue(k: int, n: int, p: float) -> float:
    """Two-sided tail p-value ``2 min(P(X <= k), P(X >= k))`` (capped)."""
    cdf = binom_cdf(k, n, p)
    sf_inclusive = 1.0 - binom_cdf(k - 1, n, p)
    return min(1.0, 2.0 * min(cdf, sf_inclusive))


def binom_interval(n: int, p: float, alpha: float) -> Tuple[int, int]:
    """Central interval ``[lo, hi]`` with each tail mass ``<= alpha/2``.

    The interval is the acceptance band of the two-sided equal-tail
    test: ``lo`` is the smallest k with ``P(X < lo) > alpha/2`` and
    ``hi`` the largest with ``P(X > hi) > alpha/2`` — matching
    ``scipy.stats.binom.ppf([alpha/2, 1-alpha/2])`` semantics.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    cdf = _binom_cdf_table(n, p)
    lo = int(np.searchsorted(cdf, alpha / 2.0, side="left"))
    hi = int(np.searchsorted(cdf, 1.0 - alpha / 2.0, side="left"))
    return lo, min(hi, n)
