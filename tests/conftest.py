"""Shared fixtures for the test suite.

Statistical tests use fixed seeds with tolerances sized so they pass
deterministically; nothing here relies on wall-clock or fresh entropy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import EvolvingClusterStream, IntrusionStream, materialize
from repro.streams.point import StreamPoint


@pytest.fixture
def rng():
    """A seeded generator for per-test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_synthetic_points():
    """2,000 evolving-cluster points (10-D, 4 clusters), materialized."""
    return materialize(EvolvingClusterStream(length=2000, rng=42))


@pytest.fixture
def small_intrusion_points():
    """2,000 intrusion points (34-D), materialized."""
    return materialize(IntrusionStream(length=2000, rng=43))


@pytest.fixture
def labeled_point():
    """A single labeled 3-D point."""
    return StreamPoint(1, np.array([1.0, 2.0, 3.0]), label=2)


def make_points(values, labels=None, start_index=1):
    """Build StreamPoints from a 2-D array (test helper)."""
    values = np.asarray(values, dtype=np.float64)
    out = []
    for i, row in enumerate(values):
        label = None if labels is None else int(labels[i])
        out.append(StreamPoint(start_index + i, row, label))
    return out
