"""Tests for repro.core.bias: bias functions and Theorem 2.1 machinery."""

import math

import numpy as np
import pytest

from repro.core.bias import (
    BiasFunction,
    ExponentialBias,
    PolynomialBias,
    UnbiasedBias,
)


class TestExponentialBias:
    def test_newest_point_weight_is_one(self):
        bias = ExponentialBias(1e-3)
        assert bias.weight(100, 100) == 1.0

    def test_decay_per_step(self):
        bias = ExponentialBias(0.1)
        assert bias.weight(99, 100) == pytest.approx(math.exp(-0.1))

    def test_callable_form(self):
        bias = ExponentialBias(0.1)
        assert bias(99, 100) == bias.weight(99, 100)

    def test_e_fold_at_inverse_lambda(self):
        lam = 1e-2
        bias = ExponentialBias(lam)
        assert bias.weight(1, 1 + round(1 / lam)) == pytest.approx(1 / math.e)

    def test_vectorized_matches_scalar(self):
        bias = ExponentialBias(5e-3)
        r = np.array([1, 10, 50, 100])
        vec = bias.weights(r, 100)
        scal = [bias.weight(int(x), 100) for x in r]
        np.testing.assert_allclose(vec, scal)

    def test_r_greater_than_t_raises(self):
        with pytest.raises(ValueError, match="r <= t"):
            ExponentialBias(0.1).weight(5, 4)

    def test_negative_lambda_raises(self):
        with pytest.raises(ValueError, match="lambda"):
            ExponentialBias(-1e-4)

    def test_monotonicity_validates(self):
        assert ExponentialBias(1e-2).validate_monotonicity(200)

    # --- Lemma 2.1 / Corollary 2.1 / Approximation 2.1 ------------------

    def test_requirement_closed_form_matches_generic_sum(self):
        bias = ExponentialBias(0.05)
        t = 150
        generic = sum(bias.weight(i, t) for i in range(1, t + 1))
        assert bias.max_reservoir_requirement(t) == pytest.approx(generic)

    def test_requirement_bounded_by_corollary(self):
        bias = ExponentialBias(1e-3)
        bound = bias.reservoir_capacity_bound()
        for t in (10, 1_000, 100_000, 10_000_000):
            assert bias.max_reservoir_requirement(t) <= bound + 1e-9

    def test_requirement_converges_to_bound(self):
        bias = ExponentialBias(1e-3)
        # For t >> 1/lambda the requirement is essentially the bound.
        assert bias.max_reservoir_requirement(100_000) == pytest.approx(
            bias.reservoir_capacity_bound(), rel=1e-6
        )

    def test_approximation_close_for_small_lambda(self):
        bias = ExponentialBias(1e-5)
        assert bias.approximate_capacity() == pytest.approx(
            bias.reservoir_capacity_bound(), rel=1e-4
        )

    def test_natural_reservoir_size(self):
        assert ExponentialBias(1e-3).natural_reservoir_size() == 1000
        assert ExponentialBias(0.3).natural_reservoir_size() == 4  # ceil(3.33)

    def test_half_life(self):
        bias = ExponentialBias(0.01)
        h = bias.half_life()
        assert bias.weight(1, 1 + round(h)) == pytest.approx(0.5, rel=1e-2)

    def test_incremental_weight_sum_matches_direct(self):
        bias = ExponentialBias(0.02)
        s = 0.0
        for t in range(1, 200):
            s = bias.incremental_weight_sum(s, t)
        direct = sum(bias.weight(i, 199) for i in range(1, 200))
        assert s == pytest.approx(direct)

    def test_requirement_invalid_t(self):
        with pytest.raises(ValueError, match="t must be >= 1"):
            ExponentialBias(0.1).max_reservoir_requirement(0)


class TestUnbiasedBias:
    def test_all_weights_one(self):
        bias = UnbiasedBias()
        assert bias.weight(1, 1000) == 1.0
        assert bias.weight(1000, 1000) == 1.0

    def test_requirement_is_stream_length(self):
        assert UnbiasedBias().max_reservoir_requirement(500) == 500.0

    def test_capacity_bound_infinite(self):
        assert UnbiasedBias().reservoir_capacity_bound() == math.inf
        assert UnbiasedBias().approximate_capacity() == math.inf

    def test_half_life_infinite(self):
        assert UnbiasedBias().half_life() == math.inf

    def test_no_natural_reservoir_size(self):
        with pytest.raises(ValueError, match="no finite"):
            UnbiasedBias().natural_reservoir_size()


class TestPolynomialBias:
    def test_newest_point_weight_is_one(self):
        assert PolynomialBias(1.5).weight(50, 50) == 1.0

    def test_decay_shape(self):
        bias = PolynomialBias(2.0)
        assert bias.weight(1, 10) == pytest.approx(1.0 / 100)

    def test_vectorized_matches_scalar(self):
        bias = PolynomialBias(0.7)
        r = np.arange(1, 30)
        np.testing.assert_allclose(
            bias.weights(r, 30),
            [bias.weight(int(x), 30) for x in r],
        )

    def test_requirement_matches_direct_sum(self):
        bias = PolynomialBias(1.2)
        t = 200
        direct = sum(bias.weight(i, t) for i in range(1, t + 1))
        assert bias.max_reservoir_requirement(t) == pytest.approx(direct)

    def test_requirement_converges_for_alpha_gt_1(self):
        bias = PolynomialBias(2.0)
        # zeta(2) = pi^2/6
        assert bias.max_reservoir_requirement(100_000) == pytest.approx(
            math.pi**2 / 6, rel=1e-4
        )

    def test_requirement_diverges_for_alpha_le_1(self):
        bias = PolynomialBias(0.5)
        assert bias.max_reservoir_requirement(
            10_000
        ) > bias.max_reservoir_requirement(1_000)

    def test_monotonicity_validates(self):
        assert PolynomialBias(1.0).validate_monotonicity(100)

    def test_incremental_weight_sum_matches_direct(self):
        bias = PolynomialBias(1.3)
        s = 0.0
        for t in range(1, 120):
            s = bias.incremental_weight_sum(s, t)
        direct = sum(bias.weight(i, 119) for i in range(1, 120))
        assert s == pytest.approx(direct)

    @pytest.mark.parametrize("alpha", [0.0, -1.0])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            PolynomialBias(alpha)

    def test_r_greater_than_t_raises(self):
        with pytest.raises(ValueError, match="r <= t"):
            PolynomialBias(1.0).weight(10, 9)


class TestGenericBiasMachinery:
    def test_generic_requirement_uses_loop_fallback(self):
        """A custom subclass without closed forms still gets Theorem 2.1."""

        class LinearDecay(BiasFunction):
            def weight(self, r, t):
                return (r / t) if t else 1.0

        bias = LinearDecay()
        # sum_{i<=t} (i/t) / (t/t) = (t+1)/2
        assert bias.max_reservoir_requirement(99) == pytest.approx(50.0)

    def test_generic_incremental_sum_not_implemented(self):
        class Opaque(BiasFunction):
            def weight(self, r, t):
                return 1.0

        with pytest.raises(NotImplementedError):
            Opaque().incremental_weight_sum(0.0, 1)
