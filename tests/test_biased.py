"""Tests for Algorithm 2.1 (ExponentialReservoir) — Theorem 2.2 et al."""

import math

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir


class TestConstruction:
    def test_capacity_from_lambda(self):
        res = ExponentialReservoir(lam=1e-3)
        assert res.capacity == 1000

    def test_capacity_ceil(self):
        res = ExponentialReservoir(lam=0.3)
        assert res.capacity == 4

    def test_explicit_capacity_sets_effective_lambda(self):
        """Observation 2.1: the size decides the bias rate."""
        res = ExponentialReservoir(capacity=500)
        assert res.lam == pytest.approx(1 / 500)

    def test_capacity_overrides_lambda(self):
        res = ExponentialReservoir(lam=1e-3, capacity=200)
        assert res.capacity == 200
        assert res.lam == pytest.approx(1 / 200)
        assert res.requested_lam == 1e-3

    def test_requires_some_parameter(self):
        with pytest.raises(ValueError, match="lam and/or capacity"):
            ExponentialReservoir()


class TestPolicy:
    def test_every_offer_is_inserted(self):
        """Algorithm 2.1 insertion is deterministic."""
        res = ExponentialReservoir(capacity=50, rng=0)
        assert res.extend(range(5000)) == 5000
        assert res.insertions == 5000

    def test_size_bounded_by_capacity(self):
        res = ExponentialReservoir(capacity=50, rng=0)
        res.extend(range(5000))
        assert res.size == 50

    def test_reservoir_fills_quickly(self):
        """With F(t)-gated ejection the fill is near-deterministic early."""
        res = ExponentialReservoir(capacity=100, rng=1)
        res.extend(range(150))
        # Expected fill after 150 points: 100 (1 - (1 - 1/100)^150) ~ 78.
        assert 55 <= res.size <= 100

    def test_newest_point_always_resident(self):
        res = ExponentialReservoir(capacity=20, rng=2)
        res.extend(range(500))
        assert 499 in res.payloads()  # last offered payload
        assert res.t in res.arrival_indices()

    def test_ejection_hazard_is_one_over_n(self):
        """Measured per-offer ejection rate once full must be ~1/n ... = 1
        ejection per offer when full (every insert replaces)."""
        res = ExponentialReservoir(capacity=100, rng=3)
        res.extend(range(100))  # roughly fills
        before = res.ejections
        res.extend(range(1000))
        # Once full, every insertion ejects exactly one: rate 1 per offer.
        assert res.ejections - before >= 900

    def test_mean_age_approximates_capacity(self):
        """Stationary age distribution ~ Exp(1/n): mean age ~ n."""
        ages = []
        for seed in range(10):
            res = ExponentialReservoir(capacity=200, rng=seed)
            res.extend(range(5000))
            ages.append(float(res.ages().mean()))
        # Truncated-geometric mean ~ n (1 - small corrections).
        assert np.mean(ages) == pytest.approx(200, rel=0.15)

    @pytest.mark.statistical
    def test_age_distribution_is_exponential(self):
        """Theorem 2.2: P(age = a) proportional to (1 - 1/n)^a."""
        n = 100
        all_ages = []
        for seed in range(60):
            res = ExponentialReservoir(capacity=n, rng=seed)
            res.extend(range(3000))
            all_ages.extend(res.ages().tolist())
        all_ages = np.asarray(all_ages)
        # Compare bucket masses against the geometric model.
        edges = [0, 50, 100, 200, 400, 3000]
        total_mass = 1 - (1 - 1 / n) ** 3000
        for lo, hi in zip(edges[:-1], edges[1:]):
            expected = (
                (1 - 1 / n) ** lo - (1 - 1 / n) ** hi
            ) / total_mass
            observed = float(np.mean((all_ages >= lo) & (all_ages < hi)))
            assert observed == pytest.approx(expected, abs=0.03)


class TestInclusionModel:
    def test_matches_theorem_2_2(self):
        res = ExponentialReservoir(capacity=100, rng=0)
        res.extend(range(500))
        assert res.inclusion_probability(500) == 1.0
        assert res.inclusion_probability(400) == pytest.approx(
            math.exp(-100 / 100)
        )

    def test_vectorized_matches_scalar(self):
        res = ExponentialReservoir(capacity=100, rng=0)
        res.extend(range(500))
        r = np.array([1, 100, 250, 500])
        np.testing.assert_allclose(
            res.inclusion_probabilities(r),
            [res.inclusion_probability(int(x)) for x in r],
        )

    def test_survival_close_to_exponential_approximation(self):
        res = ExponentialReservoir(capacity=1000)
        exact = res.survival_probability(1000)
        approx = math.exp(-1.0)
        assert exact == pytest.approx(approx, rel=1e-3)

    def test_survival_negative_age_raises(self):
        with pytest.raises(ValueError, match="age"):
            ExponentialReservoir(capacity=10).survival_probability(-1)

    def test_bad_r_raises(self):
        res = ExponentialReservoir(capacity=10, rng=0)
        res.extend(range(5))
        with pytest.raises(ValueError):
            res.inclusion_probability(6)

    @pytest.mark.statistical
    def test_empirical_inclusion_matches_model(self):
        """Monte-Carlo check of Theorem 2.2 at a few reference ages."""
        n, t, reps = 50, 1000, 500
        target_ages = np.array([0, 25, 50, 100, 200])
        hits = np.zeros(len(target_ages))
        for seed in range(reps):
            res = ExponentialReservoir(capacity=n, rng=seed)
            res.extend(range(t))
            ages = set(res.ages().tolist())
            for i, a in enumerate(target_ages):
                if int(a) in ages:
                    hits[i] += 1
        observed = hits / reps
        expected = np.exp(-target_ages / n)
        np.testing.assert_allclose(observed, expected, atol=0.08)
