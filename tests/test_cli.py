"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.streams import load_stream_csv, save_stream_csv
from repro.streams.synthetic import EvolvingClusterStream


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.csv"])
        assert args.kind == "clusters"
        assert args.length == 10_000

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_sample_algorithm_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sample", "-i", "a", "-o", "b", "--algorithm", "bogus"]
            )


class TestGenerate:
    def test_generates_csv(self, tmp_path, capsys):
        out = tmp_path / "stream.csv"
        code = main(
            ["generate", "--length", "50", "--seed", "3", "-o", str(out)]
        )
        assert code == 0
        points = list(load_stream_csv(out))
        assert len(points) == 50
        assert "wrote 50 points" in capsys.readouterr().out

    def test_generate_intrusion(self, tmp_path):
        out = tmp_path / "net.csv"
        main(
            [
                "generate",
                "--kind",
                "intrusion",
                "--length",
                "30",
                "-o",
                str(out),
            ]
        )
        points = list(load_stream_csv(out))
        assert points[0].dimensions == 34

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--length", "20", "--seed", "5", "-o", str(a)])
        main(["generate", "--length", "20", "--seed", "5", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestSample:
    @pytest.fixture
    def stream_csv(self, tmp_path):
        path = tmp_path / "in.csv"
        save_stream_csv(EvolvingClusterStream(length=500, rng=1), path)
        return path

    def test_biased_sampling(self, stream_csv, tmp_path, capsys):
        out = tmp_path / "sample.csv"
        code = main(
            [
                "sample",
                "-i",
                str(stream_csv),
                "--algorithm",
                "biased",
                "--capacity",
                "50",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        residents = list(load_stream_csv(out))
        assert len(residents) == 50
        assert "streamed 500 points" in capsys.readouterr().out

    def test_unbiased_sampling(self, stream_csv, tmp_path):
        out = tmp_path / "u.csv"
        main(
            [
                "sample",
                "-i",
                str(stream_csv),
                "--algorithm",
                "unbiased",
                "--capacity",
                "30",
                "-o",
                str(out),
            ]
        )
        assert len(list(load_stream_csv(out))) == 30

    def test_variable_requires_lam(self, stream_csv, tmp_path):
        with pytest.raises(SystemExit, match="--lam is required"):
            main(
                [
                    "sample",
                    "-i",
                    str(stream_csv),
                    "--algorithm",
                    "variable",
                    "-o",
                    str(tmp_path / "v.csv"),
                ]
            )

    def test_variable_with_lam(self, stream_csv, tmp_path):
        out = tmp_path / "v.csv"
        code = main(
            [
                "sample",
                "-i",
                str(stream_csv),
                "--algorithm",
                "variable",
                "--capacity",
                "40",
                "--lam",
                "1e-4",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert len(list(load_stream_csv(out))) >= 39

    def test_space_constrained(self, stream_csv, tmp_path):
        out = tmp_path / "s.csv"
        code = main(
            [
                "sample",
                "-i",
                str(stream_csv),
                "--algorithm",
                "space-constrained",
                "--capacity",
                "40",
                "--lam",
                "1e-3",
                "-o",
                str(out),
            ]
        )
        assert code == 0


class TestExperiment:
    def test_runs_tiny_fig1(self, capsys):
        code = main(
            ["experiment", "fig1", "--length", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "variable_fill" in out

    def test_markdown_output(self, capsys):
        main(["experiment", "fig1", "--length", "2000", "--markdown"])
        out = capsys.readouterr().out
        assert "### fig1" in out

    def test_writes_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig1.txt"
        main(
            [
                "experiment",
                "fig1",
                "--length",
                "2000",
                "-o",
                str(out_file),
            ]
        )
        assert "variable_fill" in out_file.read_text()
        assert "wrote 1 experiment" in capsys.readouterr().out


class TestTheory:
    def test_prints_requirement(self, capsys):
        code = main(["theory", "--lam", "1e-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max reservoir requirement" in out

    def test_budget_below_requirement(self, capsys):
        main(["theory", "--lam", "1e-4", "--budget", "1000"])
        out = capsys.readouterr().out
        assert "Algorithm 3.1" in out
        assert "p_in = 0.1000" in out

    def test_budget_above_requirement(self, capsys):
        main(["theory", "--lam", "1e-2", "--budget", "5000"])
        out = capsys.readouterr().out
        assert "Algorithm 2.1" in out


class TestPaperScale:
    def test_paper_scale_presets_cover_all_figures(self):
        from repro.experiments import ALL_EXPERIMENTS
        from repro.experiments.paper_scale import PAPER_SCALE

        assert set(PAPER_SCALE) == set(ALL_EXPERIMENTS)

    def test_paper_scale_kwargs_copy(self):
        from repro.experiments.paper_scale import paper_scale_kwargs

        kwargs = paper_scale_kwargs("fig2")
        kwargs["length"] = 1  # mutating the copy must not leak
        assert paper_scale_kwargs("fig2")["length"] == 494_021

    def test_paper_scale_unknown_figure(self):
        from repro.experiments.paper_scale import paper_scale_kwargs

        with pytest.raises(KeyError):
            paper_scale_kwargs("fig99")

    def test_cli_paper_scale_with_length_override(self, capsys):
        """--paper-scale composes with --length (length wins)."""
        code = main(
            [
                "experiment",
                "fig1",
                "--paper-scale",
                "--length",
                "2000",
            ]
        )
        assert code == 0
        assert "length=2000" in capsys.readouterr().out


class TestReport:
    def test_report_from_results_dir(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1.txt").write_text("== fig1 ==\ntable\n")
        (results / "ablation_x.txt").write_text("== ablation ==\nrows\n")
        code = main(["report", "--results-dir", str(results)])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Figures" in out
        assert "## Ablations" in out
        assert "== fig1 ==" in out

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig2.txt").write_text("data\n")
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--results-dir",
                str(results),
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        assert "data" in out_file.read_text()

    def test_report_missing_dir_fails(self, tmp_path, capsys):
        code = main(
            ["report", "--results-dir", str(tmp_path / "nope")]
        )
        assert code == 1
        assert "no results" in capsys.readouterr().err

    def test_report_empty_dir_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["report", "--results-dir", str(empty)])
        assert code == 1


class TestVerify:
    def test_list_prints_every_spec(self, capsys):
        from repro.verify import SPECS

        code = main(["verify", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in SPECS:
            assert name in out

    def test_runs_selected_spec_and_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "VERIFY_report.json"
        code = main(
            [
                "verify",
                "unbiased-uniform",
                "--replicates",
                "30",
                "--skip-invariants",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.verify/1"
        assert report["specs_total"] == 1
        assert report["specs"][0]["name"] == "unbiased-uniform"
        assert report["passed"] is True
        assert "unbiased-uniform" in capsys.readouterr().out

    def test_json_output_mode(self, capsys):
        import json

        code = main(
            [
                "verify",
                "unbiased-uniform",
                "--replicates",
                "30",
                "--skip-invariants",
                "--json",
                "-o",
                "-",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["specs"][0]["passed"] is True

    def test_unknown_spec_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "no-such-spec", "--skip-invariants"])

    def test_verify_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.specs == []
        assert args.replicates is None
        assert args.jobs == 1
        assert args.seed == 0
        assert args.output == "VERIFY_report.json"


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "theory", "--lam", "1e-3"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "max reservoir requirement" in result.stdout


class TestSampleKdd99Format:
    def test_kdd99_input(self, tmp_path, capsys):
        from tests.test_streams_kdd99 import kdd_line

        rng = np.random.default_rng(0)
        data = tmp_path / "kddcup.data"
        data.write_text(
            "\n".join(kdd_line(rng, "normal.") for _ in range(100)) + "\n"
        )
        out = tmp_path / "sample.csv"
        code = main(
            [
                "sample",
                "-i",
                str(data),
                "--format",
                "kdd99",
                "--capacity",
                "20",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        residents = list(load_stream_csv(out))
        assert len(residents) == 20
        assert residents[0].dimensions == 34


class TestDurableSample:
    @pytest.fixture
    def stream_csv(self, tmp_path):
        path = tmp_path / "in.csv"
        save_stream_csv(EvolvingClusterStream(length=400, rng=1), path)
        return path

    def test_sample_with_checkpoint_dir_writes_journal(
        self, stream_csv, tmp_path, capsys
    ):
        out = tmp_path / "sample.csv"
        journal = tmp_path / "journal"
        code = main(
            [
                "sample",
                "-i", str(stream_csv),
                "--capacity", "25",
                "--seed", "3",
                "-o", str(out),
                "--checkpoint-dir", str(journal),
                "--wal-sync", "never",
                "--checkpoint-every", "10",
            ]
        )
        assert code == 0
        assert f"journal at {journal}" in capsys.readouterr().out
        assert list(journal.glob("ckpt-*.ckpt"))
        assert list(journal.glob("wal-main-*.log"))
        assert len(list(load_stream_csv(out))) == 25

    def test_sample_refuses_existing_journal(
        self, stream_csv, tmp_path
    ):
        out = tmp_path / "sample.csv"
        journal = tmp_path / "journal"
        args = [
            "sample",
            "-i", str(stream_csv),
            "--capacity", "25",
            "-o", str(out),
            "--checkpoint-dir", str(journal),
        ]
        assert main(args) == 0
        with pytest.raises(SystemExit, match="already holds a journal"):
            main(args)

    def test_sample_rejects_bad_checkpoint_every(self, stream_csv, tmp_path):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(
                [
                    "sample",
                    "-i", str(stream_csv),
                    "-o", str(tmp_path / "x.csv"),
                    "--checkpoint-dir", str(tmp_path / "j"),
                    "--checkpoint-every", "0",
                ]
            )


class TestRecover:
    @pytest.fixture
    def stream_csv(self, tmp_path):
        path = tmp_path / "in.csv"
        save_stream_csv(EvolvingClusterStream(length=400, rng=1), path)
        return path

    def _sample(self, stream_csv, tmp_path):
        out = tmp_path / "sample.csv"
        journal = tmp_path / "journal"
        main(
            [
                "sample",
                "-i", str(stream_csv),
                "--capacity", "25",
                "--seed", "3",
                "-o", str(out),
                "--checkpoint-dir", str(journal),
                "--wal-sync", "never",
                "--checkpoint-every", "10",
            ]
        )
        return out, journal

    def test_recover_reproduces_sample(
        self, stream_csv, tmp_path, capsys
    ):
        out, journal = self._sample(stream_csv, tmp_path)
        recovered = tmp_path / "recovered.csv"
        code = main(
            ["recover", "--checkpoint-dir", str(journal),
             "-o", str(recovered)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "recovered from checkpoint seq" in text
        assert "recovered reservoir at t=400" in text
        assert recovered.read_text() == out.read_text()

    def test_recover_resumes_from_input(
        self, stream_csv, tmp_path, capsys
    ):
        _out, journal = self._sample(stream_csv, tmp_path)
        more = tmp_path / "more.csv"
        save_stream_csv(EvolvingClusterStream(length=100, rng=2), more)
        recovered = tmp_path / "recovered.csv"
        code = main(
            [
                "recover",
                "--checkpoint-dir", str(journal),
                "-i", str(more),
                "-o", str(recovered),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "resumed 100 points" in text
        assert "t=500" in text
        assert len(list(load_stream_csv(recovered))) == 25

    def test_recover_missing_journal_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to recover"):
            main(
                [
                    "recover",
                    "--checkpoint-dir", str(tmp_path / "nope"),
                    "-o", str(tmp_path / "out.csv"),
                ]
            )

    def test_recover_requires_checkpoint_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["recover", "-o", str(tmp_path / "out.csv")])
