"""Determinism regression: fixed seed => identical state, every sampler.

The seeding contract (see :mod:`repro.utils.rng`) promises bit-level
reproducibility per ingestion path: running any sampler twice with the
same seed over the same stream — per item or batched — must produce
identical payloads, arrival indices, and counters. A regression here
breaks replicate-based verification (``repro verify``) and every seeded
experiment in the repo, so each family is pinned explicitly.
"""

import numpy as np
import pytest

from repro.core import (
    ChainSampler,
    ExponentialBias,
    ExponentialReservoir,
    GeneralBiasSampler,
    SkipUnbiasedReservoir,
    SpaceConstrainedReservoir,
    TimeDecayReservoir,
    TimestampedExponentialReservoir,
    UnbiasedReservoir,
    VariableReservoir,
    WindowBuffer,
)

FACTORIES = {
    "unbiased": lambda seed: UnbiasedReservoir(20, rng=seed),
    "skip_unbiased": lambda seed: SkipUnbiasedReservoir(20, rng=seed),
    "exponential": lambda seed: ExponentialReservoir(capacity=30, rng=seed),
    "space_constrained": lambda seed: SpaceConstrainedReservoir(
        lam=1e-2, capacity=40, rng=seed
    ),
    "variable": lambda seed: VariableReservoir(lam=1e-2, capacity=40, rng=seed),
    "timestamped": lambda seed: TimestampedExponentialReservoir(
        lam_time=0.05, capacity=30, rng=seed
    ),
    "time_decay": lambda seed: TimeDecayReservoir(
        lam_time=0.05, capacity=30, rng=seed
    ),
    "window_buffer": lambda seed: WindowBuffer(25, rng=seed),
    "chain": lambda seed: ChainSampler(8, window=60, rng=seed),
    "general_bias": lambda seed: GeneralBiasSampler(
        ExponentialBias(1e-2), target_size=25, rng=seed
    ),
}

STREAM = list(range(700))
SEEDS = [0, 17]


def _state(sampler):
    return (
        sampler.t,
        sampler.offers,
        sampler.insertions,
        sampler.ejections,
        sampler.size,
        sampler.payloads(),
        sampler.arrival_indices().tolist(),
    )


def _run(name, seed, batched):
    sampler = FACTORIES[name](seed)
    if batched:
        for lo in range(0, len(STREAM), 64):
            sampler.offer_many(STREAM[lo : lo + 64])
    else:
        for item in STREAM:
            sampler.offer(item)
    return sampler


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_per_item_runs_are_identical(name, seed):
    assert _state(_run(name, seed, False)) == _state(_run(name, seed, False))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_batched_runs_are_identical(name, seed):
    assert _state(_run(name, seed, True)) == _state(_run(name, seed, True))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_different_seeds_differ(name):
    """Sanity check that the seed actually reaches the sampler: two seeds
    must not replay the same random choices (payload sets differ for any
    sampler that makes random decisions; deterministic windows at least
    share contents, so they are exempt)."""
    if name == "window_buffer":
        pytest.skip("WindowBuffer is deterministic; seed has no effect")
    a = _run(name, 0, False)
    b = _run(name, 1, False)
    assert _state(a) != _state(b)


@pytest.mark.parametrize("name", ["timestamped", "time_decay"])
@pytest.mark.parametrize("seed", SEEDS)
def test_timestamped_paths_are_identical(name, seed):
    """The wall-clock ingestion path (offer_at) is deterministic too."""
    stamps = np.cumsum(np.full(400, 0.25))

    def run():
        sampler = FACTORIES[name](seed)
        for item, stamp in zip(range(400), stamps):
            sampler.offer_at(item, float(stamp))
        return sampler

    assert _state(run()) == _state(run())
