"""Documentation health tests.

Docs rot silently; these tests keep the README's code honest and enforce
docstrings on the public API.
"""

import inspect
import re
from pathlib import Path

import pytest

import repro
import repro.core
import repro.experiments
import repro.mining
import repro.queries
import repro.streams

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestReadmeCode:
    def test_quickstart_block_executes(self):
        """Run the README's quickstart code block end to end."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README has no python code block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_readme_mentions_every_example(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for example in (REPO_ROOT / "examples").glob("*.py"):
            assert example.name in readme, (
                f"examples/{example.name} missing from README"
            )

    def test_experiments_md_covers_every_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for i in range(1, 10):
            assert f"Figure {i}" in text


class TestPackageDoctest:
    def test_module_docstring_examples(self):
        """The package docstring's doctest must pass."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0


PUBLIC_MODULES = [
    repro.core,
    repro.streams,
    repro.queries,
    repro.mining,
    repro.experiments,
]


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "module", PUBLIC_MODULES, ids=lambda m: m.__name__
    )
    def test_every_public_symbol_documented(self, module):
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
                if inspect.isclass(obj):
                    for meth_name, meth in inspect.getmembers(
                        obj, inspect.isfunction
                    ):
                        if meth_name.startswith("_"):
                            continue
                        if meth.__qualname__.split(".")[0] != obj.__name__:
                            continue  # inherited
                        if not (meth.__doc__ or "").strip():
                            missing.append(f"{name}.{meth_name}")
        assert not missing, f"undocumented public symbols: {missing}"

    def test_all_source_modules_have_docstrings(self):
        src = REPO_ROOT / "src" / "repro"
        bare = []
        for path in src.rglob("*.py"):
            head = path.read_text().lstrip()
            if not head.startswith(('"""', "'''", "#")):
                bare.append(str(path.relative_to(REPO_ROOT)))
        assert not bare, f"modules without docstrings: {bare}"
