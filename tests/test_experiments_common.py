"""Tests for the shared experiment machinery."""

import numpy as np
import pytest

from repro.core import SpaceConstrainedReservoir, UnbiasedReservoir
from repro.experiments.common import (
    QUERY_CAPACITY,
    QUERY_LAMBDA,
    drive,
    horizon_error_rows,
    horizon_win_notes,
    make_sampler_pair,
    progression_error_rows,
)
from repro.queries import StreamHistory, average_query
from repro.streams import EvolvingClusterStream
from tests.conftest import make_points


class TestMakeSamplerPair:
    def test_pair_composition(self):
        pair = make_sampler_pair(100, 1e-3, seed=0)
        assert isinstance(pair["biased"], SpaceConstrainedReservoir)
        assert isinstance(pair["unbiased"], UnbiasedReservoir)

    def test_equal_capacity(self):
        pair = make_sampler_pair(123, 1e-3, seed=1)
        assert pair["biased"].capacity == pair["unbiased"].capacity == 123

    def test_derived_p_in(self):
        pair = make_sampler_pair(1000, 1e-4, seed=2)
        assert pair["biased"].p_in == pytest.approx(0.1)

    def test_deterministic_by_seed(self):
        a = make_sampler_pair(50, 1e-3, seed=3)
        b = make_sampler_pair(50, 1e-3, seed=3)
        a["biased"].extend(range(1000))
        b["biased"].extend(range(1000))
        assert a["biased"].payloads() == b["biased"].payloads()

    def test_paper_constants(self):
        assert QUERY_CAPACITY == 1000
        assert QUERY_LAMBDA == 1e-4


class TestDrive:
    def test_feeds_all_samplers_and_history(self, rng):
        points = make_points(rng.normal(size=(50, 3)))
        hist = StreamHistory(3)
        samplers = make_sampler_pair(10, 1e-2, seed=4)
        count = drive(points, samplers, hist)
        assert count == 50
        assert hist.t == 50
        assert all(s.t == 50 for s in samplers.values())

    def test_checkpoints_fire_in_order(self, rng):
        points = make_points(rng.normal(size=(30, 2)))
        fired = []
        drive(
            points,
            {},
            checkpoints=[10, 20, 30],
            on_checkpoint=fired.append,
        )
        assert fired == [10, 20, 30]

    def test_checkpoint_sees_consistent_state(self, rng):
        points = make_points(rng.normal(size=(25, 2)))
        hist = StreamHistory(2)
        seen = {}

        def capture(t):
            seen[t] = hist.t

        drive(points, {}, hist, checkpoints=[10, 25], on_checkpoint=capture)
        assert seen == {10: 10, 25: 25}

    def test_no_history_no_checkpoints(self, rng):
        points = make_points(rng.normal(size=(5, 2)))
        assert drive(points, {}) == 5


class TestHorizonMachinery:
    def test_horizon_error_rows_structure(self):
        rows = horizon_error_rows(
            stream_factory=lambda seed: EvolvingClusterStream(
                length=3000, rng=seed
            ),
            query_for_horizon=lambda h: average_query(h, range(10)),
            horizons=[100, 1000],
            dimensions=10,
            capacity=50,
            lam=1e-3,
            seeds=(5,),
        )
        assert [r["horizon"] for r in rows] == [100, 1000]
        for row in rows:
            assert set(row) == {
                "horizon",
                "biased_error",
                "unbiased_error",
                "biased_support",
                "unbiased_support",
            }
            assert np.isfinite(row["biased_error"])

    def test_progression_error_rows_structure(self):
        rows = progression_error_rows(
            stream_factory=lambda seed: EvolvingClusterStream(
                length=4000, rng=seed
            ),
            query_for_horizon=lambda h: average_query(h, range(10)),
            horizon=500,
            checkpoints=[2000, 4000],
            dimensions=10,
            capacity=50,
            lam=1e-3,
            seeds=(6,),
        )
        assert [r["t"] for r in rows] == [2000, 4000]

    def test_win_notes_biased_wins(self):
        rows = [
            {"horizon": 100, "biased_error": 0.1, "unbiased_error": 0.5},
            {"horizon": 1000, "biased_error": 0.2, "unbiased_error": 0.25},
        ]
        notes = horizon_win_notes(rows)
        assert "biased wins by 5.0x" in notes[0]
        assert "within 20%" in notes[1]

    def test_win_notes_unbiased_wins_flagged(self):
        rows = [
            {"horizon": 100, "biased_error": 0.9, "unbiased_error": 0.5},
            {"horizon": 1000, "biased_error": 0.2, "unbiased_error": 0.2},
        ]
        notes = horizon_win_notes(rows)
        assert "unexpectedly" in notes[0]


class TestRowHelpersJobsInvariance:
    """horizon/progression row builders must report identical numbers for
    any worker count — per-seed trials are pure functions of the seed."""

    def test_horizon_rows_jobs_invariant(self):
        from repro.experiments.common import horizon_error_rows
        from repro.queries import average_query
        from repro.streams import EvolvingClusterStream

        kwargs = dict(
            stream_factory=lambda seed: EvolvingClusterStream(
                length=3000, dimensions=4, rng=seed
            ),
            query_for_horizon=lambda h: average_query(h, range(4)),
            horizons=[200, 1000],
            dimensions=4,
            capacity=100,
            lam=1e-3,
            seeds=(5, 6, 7),
        )
        serial = horizon_error_rows(jobs=1, **kwargs)
        parallel = horizon_error_rows(jobs=3, **kwargs)
        assert serial == parallel

    def test_progression_rows_jobs_invariant(self):
        from repro.experiments.common import progression_error_rows
        from repro.queries import average_query
        from repro.streams import EvolvingClusterStream

        kwargs = dict(
            stream_factory=lambda seed: EvolvingClusterStream(
                length=3000, dimensions=4, rng=seed
            ),
            query_for_horizon=lambda h: average_query(h, range(4)),
            horizon=300,
            checkpoints=[1000, 2000, 3000],
            dimensions=4,
            capacity=100,
            lam=1e-3,
            seeds=(5, 6),
        )
        serial = progression_error_rows(jobs=1, **kwargs)
        parallel = progression_error_rows(jobs=2, **kwargs)
        assert serial == parallel
