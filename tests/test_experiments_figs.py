"""Smoke + shape tests for every figure-reproduction experiment.

Each test runs its experiment at a deliberately tiny scale (seconds, not
minutes) and checks structure plus the cheap qualitative invariants; the
full-scale claims are exercised by the benchmark harness.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig1_fill,
    fig2_sum_intrusion,
    fig3_sum_synthetic,
    fig4_count_intrusion,
    fig5_range_synthetic,
    fig6_progression,
    fig7_classify_intrusion,
    fig8_classify_synthetic,
    fig9_scatter,
)

SMALL_HORIZONS = (200, 1000, 4000)
ONE_SEED = (101,)


class TestRegistry:
    def test_all_nine_figures_registered(self):
        assert sorted(ALL_EXPERIMENTS) == [f"fig{i}" for i in range(1, 10)]

    def test_registry_points_at_run_functions(self):
        assert ALL_EXPERIMENTS["fig1"] is fig1_fill.run


class TestFig1:
    def test_structure_and_claims(self):
        res = fig1_fill.run(length=20_000, capacity=200, lam=5e-5, seed=1)
        assert res.experiment_id == "fig1"
        assert res.columns[0] == "t"
        # Variable scheme essentially full everywhere after startup.
        late = [r for r in res.rows if r["t"] > 2000]
        assert all(r["variable_fill"] >= 0.99 for r in late)
        # Fixed scheme strictly below variable at every late checkpoint.
        assert all(r["fixed_fill"] < r["variable_fill"] for r in late)
        # Fixed curve roughly tracks the closed-form expectation.
        for r in late:
            assert r["fixed_fill"] == pytest.approx(
                r["fixed_fill_expected"], abs=0.12
            )

    def test_fixed_fill_monotone_nondecreasing(self):
        res = fig1_fill.run(length=10_000, capacity=100, lam=1e-4, seed=2)
        fills = res.series("fixed_fill")
        assert all(b >= a - 1e-12 for a, b in zip(fills, fills[1:]))

    def test_extra_checkpoints_included(self):
        res = fig1_fill.run(
            length=5_000, capacity=100, lam=1e-4, extra_checkpoints=(1234,)
        )
        assert 1234 in res.series("t")


class TestHorizonSweeps:
    """Figures 2-5 share the template; run each tiny and check structure."""

    @pytest.mark.parametrize(
        "module",
        [
            fig2_sum_intrusion,
            fig3_sum_synthetic,
            fig4_count_intrusion,
            fig5_range_synthetic,
        ],
    )
    def test_structure(self, module):
        res = module.run(
            length=12_000, horizons=SMALL_HORIZONS, seeds=ONE_SEED
        )
        assert res.series("horizon") == list(SMALL_HORIZONS)
        for row in res.rows:
            assert math.isfinite(row["biased_error"])
            assert math.isfinite(row["unbiased_error"])
            assert row["biased_support"] >= 0
        assert len(res.notes) == 2

    def test_biased_support_exceeds_unbiased_at_small_horizon(self):
        res = fig3_sum_synthetic.run(
            length=20_000, horizons=(500,), seeds=(7,)
        )
        row = res.rows[0]
        assert row["biased_support"] > 2 * row["unbiased_support"]


class TestFig6:
    def test_structure(self):
        res = fig6_progression.run(
            length=30_000, horizon=2_000, n_checkpoints=4, seeds=ONE_SEED
        )
        assert res.columns == ["t", "biased_error", "unbiased_error"]
        assert all(r["t"] > 2_000 for r in res.rows)
        assert len(res.notes) == 2

    def test_checkpoints_after_horizon_only(self):
        res = fig6_progression.run(
            length=10_000,
            horizon=5_000,
            checkpoints=[1_000, 6_000, 10_000],
            seeds=ONE_SEED,
        )
        assert res.series("t") == [6_000, 10_000]


class TestFig7And8:
    def test_fig7_structure(self):
        res = fig7_classify_intrusion.run(length=8_000, window=2_000)
        assert len(res.rows) == 4
        for row in res.rows:
            assert 0.0 <= row["biased_accuracy"] <= 1.0
            assert 0.0 <= row["unbiased_accuracy"] <= 1.0
            assert row["gap"] == pytest.approx(
                row["biased_accuracy"] - row["unbiased_accuracy"]
            )

    def test_fig8_structure_and_learnability(self):
        res = fig8_classify_synthetic.run(length=10_000, window=2_500)
        assert len(res.rows) == 4
        # Even at tiny scale the classifier must beat 4-way chance.
        assert res.rows[-1]["biased_accuracy"] > 0.3


class TestFig9:
    def test_structure(self):
        res = fig9_scatter.run(length=10_000, checkpoints=[5_000, 10_000])
        assert len(res.rows) == 4  # 2 checkpoints x 2 reservoirs
        reservoirs = {r["reservoir"] for r in res.rows}
        assert reservoirs == {"biased", "unbiased"}

    def test_biased_less_stale(self):
        res = fig9_scatter.run(length=15_000, checkpoints=[15_000])
        by_name = {r["reservoir"]: r for r in res.rows}
        assert by_name["biased"]["staleness"] < by_name["unbiased"][
            "staleness"
        ]

    def test_dump_dir_writes_projections(self, tmp_path):
        fig9_scatter.run(
            length=6_000, checkpoints=[6_000], dump_dir=str(tmp_path)
        )
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [
            "fig9_biased_t6000.csv",
            "fig9_unbiased_t6000.csv",
        ]
        header = (tmp_path / files[0]).read_text().splitlines()[0]
        assert header == "x,y,label,age"


class TestDeterminism:
    """Experiments must be reproducible run-to-run with fixed seeds."""

    def test_fig1_deterministic(self):
        a = fig1_fill.run(length=5_000, capacity=100, lam=1e-4, seed=3)
        b = fig1_fill.run(length=5_000, capacity=100, lam=1e-4, seed=3)
        assert a.rows == b.rows

    def test_fig3_deterministic(self):
        kwargs = dict(length=8_000, horizons=(500, 2_000), seeds=(9,))
        a = fig3_sum_synthetic.run(**kwargs)
        b = fig3_sum_synthetic.run(**kwargs)
        assert a.rows == b.rows

    def test_fig8_deterministic(self):
        kwargs = dict(length=6_000, window=3_000, seed=4)
        a = fig8_classify_synthetic.run(**kwargs)
        b = fig8_classify_synthetic.run(**kwargs)
        assert a.rows == b.rows

    def test_different_seed_differs(self):
        a = fig3_sum_synthetic.run(
            length=8_000, horizons=(500,), seeds=(9,)
        )
        b = fig3_sum_synthetic.run(
            length=8_000, horizons=(500,), seeds=(10,)
        )
        assert a.rows != b.rows
