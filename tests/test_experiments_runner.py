"""Tests for the experiment infrastructure (result tables, rendering)."""

import pytest

from repro.experiments.runner import ExperimentResult, render_table


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="figX",
        title="A test experiment",
        params={"n": 10, "lam": 1e-4},
        columns=["x", "y"],
        rows=[{"x": 1, "y": 0.5}, {"x": 2, "y": 0.000123}],
        notes=["something qualitative"],
    )


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(["a", "b"], [{"a": 1, "b": 2.5}])
        assert "a" in text and "b" in text
        assert "1" in text and "2.5" in text

    def test_title_line(self):
        text = render_table(["a"], [{"a": 1}], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_missing_cell_blank(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "1" in text

    def test_small_floats_scientific(self):
        text = render_table(["a"], [{"a": 0.000001}])
        assert "e-" in text

    def test_nan_rendering(self):
        text = render_table(["a"], [{"a": float("nan")}])
        assert "nan" in text


class TestExperimentResult:
    def test_render_includes_everything(self, result):
        text = result.render()
        assert "figX" in text
        assert "A test experiment" in text
        assert "n=10" in text
        assert "something qualitative" in text

    def test_to_markdown_table(self, result):
        md = result.to_markdown()
        assert "| x | y |" in md
        assert "|---|---|" in md
        assert "### figX" in md

    def test_series_extraction(self, result):
        assert result.series("x") == [1, 2]

    def test_series_unknown_column(self, result):
        with pytest.raises(KeyError, match="no column"):
            result.series("zzz")

    def test_markdown_includes_notes(self, result):
        assert "- something qualitative" in result.to_markdown()


class TestRunSeedTrials:
    def test_inline_runs_in_seed_order(self):
        from repro.experiments.runner import run_seed_trials

        got = run_seed_trials(lambda s: s * 10, [3, 1, 2], jobs=1)
        assert got == [30, 10, 20]

    def test_jobs_invariance(self):
        """The contract: jobs only moves where a trial runs. Results from
        a multi-process run must equal the inline run, element for
        element, including for non-picklable closure trials."""
        from repro.experiments.runner import run_seed_trials

        import numpy as np

        offset = 7.5  # captured by the closure: not picklable as a task

        def trial(seed):
            rng = np.random.default_rng(seed)
            return float(rng.normal()) + offset

        seeds = [11, 22, 33, 44, 55]
        inline = run_seed_trials(trial, seeds, jobs=1)
        forked = run_seed_trials(trial, seeds, jobs=3)
        assert forked == inline

    def test_more_jobs_than_seeds(self):
        from repro.experiments.runner import run_seed_trials

        assert run_seed_trials(lambda s: -s, [9], jobs=8) == [-9]

    def test_invalid_jobs_rejected(self):
        from repro.experiments.runner import run_seed_trials

        with pytest.raises(ValueError, match="jobs"):
            run_seed_trials(lambda s: s, [1, 2], jobs=0)

    def test_empty_seeds(self):
        from repro.experiments.runner import run_seed_trials

        assert run_seed_trials(lambda s: s, [], jobs=4) == []
