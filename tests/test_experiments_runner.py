"""Tests for the experiment infrastructure (result tables, rendering)."""

import pytest

from repro.experiments.runner import ExperimentResult, render_table


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="figX",
        title="A test experiment",
        params={"n": 10, "lam": 1e-4},
        columns=["x", "y"],
        rows=[{"x": 1, "y": 0.5}, {"x": 2, "y": 0.000123}],
        notes=["something qualitative"],
    )


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(["a", "b"], [{"a": 1, "b": 2.5}])
        assert "a" in text and "b" in text
        assert "1" in text and "2.5" in text

    def test_title_line(self):
        text = render_table(["a"], [{"a": 1}], title="T")
        assert text.splitlines()[0] == "T"

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_missing_cell_blank(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "1" in text

    def test_small_floats_scientific(self):
        text = render_table(["a"], [{"a": 0.000001}])
        assert "e-" in text

    def test_nan_rendering(self):
        text = render_table(["a"], [{"a": float("nan")}])
        assert "nan" in text


class TestExperimentResult:
    def test_render_includes_everything(self, result):
        text = result.render()
        assert "figX" in text
        assert "A test experiment" in text
        assert "n=10" in text
        assert "something qualitative" in text

    def test_to_markdown_table(self, result):
        md = result.to_markdown()
        assert "| x | y |" in md
        assert "|---|---|" in md
        assert "### figX" in md

    def test_series_extraction(self, result):
        assert result.series("x") == [1, 2]

    def test_series_unknown_column(self, result):
        with pytest.raises(KeyError, match="no column"):
            result.series("zzz")

    def test_markdown_includes_notes(self, result):
        assert "- something qualitative" in result.to_markdown()
