"""Cross-module integration tests: the library's end-to-end stories."""

import numpy as np
import pytest

from repro.core import (
    ExponentialReservoir,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    VariableReservoir,
)
from repro.mining import ReservoirKnnClassifier, run_prequential, snapshot
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    average_query,
    class_distribution_query,
    nan_penalized_error,
)
from repro.streams import (
    EvolvingClusterStream,
    IntrusionStream,
    load_stream_csv,
    save_stream_csv,
    take,
)


class TestQueryPipeline:
    """The paper's core claim, end to end: biased sampling gives better
    recent-horizon estimates on an evolving stream."""

    def test_biased_beats_unbiased_at_short_horizon(self):
        length, horizon = 60_000, 1_000
        errors = {"biased": [], "unbiased": []}
        for seed in (1, 2, 3):
            stream = EvolvingClusterStream(length=length, rng=seed)
            hist = StreamHistory(10)
            samplers = {
                "biased": SpaceConstrainedReservoir(
                    lam=1e-4, capacity=500, rng=seed * 10
                ),
                "unbiased": UnbiasedReservoir(500, rng=seed * 10 + 1),
            }
            for p in stream:
                hist.observe(p)
                for s in samplers.values():
                    s.offer(p)
            q = average_query(horizon, range(10))
            truth = hist.evaluate(q)
            for name, s in samplers.items():
                est = QueryEstimator(s).estimate(q)
                errors[name].append(nan_penalized_error(truth, est.estimate))
        assert np.mean(errors["biased"]) < np.mean(errors["unbiased"])

    def test_class_distribution_pipeline(self):
        stream = IntrusionStream(length=30_000, rng=5)
        hist = StreamHistory(34)
        res = ExponentialReservoir(capacity=800, rng=6)
        for p in stream:
            hist.observe(p)
            res.offer(p)
        q = class_distribution_query(5_000, 14)
        truth = hist.evaluate(q)
        est = QueryEstimator(res).estimate(q)
        assert nan_penalized_error(truth, est.estimate) < 0.05


class TestClassificationPipeline:
    def test_biased_classifier_wins_under_drift(self):
        stream = EvolvingClusterStream(
            length=50_000, radius=1.8, drift_every=50, rng=7
        )
        classifiers = {
            "biased": ReservoirKnnClassifier(
                SpaceConstrainedReservoir(lam=1e-4, capacity=500, rng=8)
            ),
            "unbiased": ReservoirKnnClassifier(
                UnbiasedReservoir(500, rng=9)
            ),
        }
        results = run_prequential(stream, classifiers, window=10_000)
        # Late-stream windows: biased should be ahead.
        late_gap = (
            results["biased"].window_accuracy[-1]
            - results["unbiased"].window_accuracy[-1]
        )
        assert late_gap > 0.0

    def test_snapshot_metrics_consistent_with_classification(self):
        stream = EvolvingClusterStream(
            length=30_000, radius=1.8, drift_every=50, rng=10
        )
        biased = SpaceConstrainedReservoir(lam=1e-4, capacity=500, rng=11)
        unbiased = UnbiasedReservoir(500, rng=12)
        for p in stream:
            biased.offer(p)
            unbiased.offer(p)
        sb, su = snapshot(biased), snapshot(unbiased)
        assert sb.staleness < su.staleness
        assert sb.purity >= su.purity - 0.05


class TestVariableReservoirPipeline:
    def test_variable_reservoir_usable_for_estimation_early(self):
        """The whole point of variable sampling: useful estimates during
        the startup window where the fixed scheme is nearly empty."""
        length = 5_000
        stream = list(take(EvolvingClusterStream(length=20_000, rng=13), length))
        hist = StreamHistory(10)
        variable = VariableReservoir(lam=1e-5, capacity=500, rng=14)
        fixed = SpaceConstrainedReservoir(lam=1e-5, capacity=500, rng=15)
        for p in stream:
            hist.observe(p)
            variable.offer(p)
            fixed.offer(p)
        assert variable.size >= 499
        assert fixed.size < 50
        q = average_query(2_000, range(10))
        truth = hist.evaluate(q)
        est = QueryEstimator(variable).estimate(q)
        assert nan_penalized_error(truth, est.estimate) < 0.2


class TestPersistenceRoundTrip:
    def test_sample_then_save_then_reload_then_estimate(self, tmp_path):
        """Reservoir contents survive CSV persistence and keep estimating."""
        stream = EvolvingClusterStream(length=10_000, rng=16)
        hist = StreamHistory(10)
        res = ExponentialReservoir(capacity=300, rng=17)
        for p in stream:
            hist.observe(p)
            res.offer(p)
        path = tmp_path / "reservoir.csv"
        save_stream_csv(res.payloads(), path)
        reloaded = list(load_stream_csv(path))
        assert len(reloaded) == res.size
        # Rebuild a reservoir-like state for estimation: indices survive,
        # so inclusion probabilities can be recomputed.
        original = {p.index for p in res.payloads()}
        assert {p.index for p in reloaded} == original
