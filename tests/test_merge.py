"""Tests for merging biased reservoirs (extension)."""

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.merge import (
    merge_exponential_reservoirs,
    proportionality_constant,
)
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.core.variable import VariableReservoir


def filled_pair(lam=1e-3, capacity=500, n_points=20_000, seeds=(1, 2)):
    a = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=seeds[0])
    b = SpaceConstrainedReservoir(lam=lam, capacity=capacity, rng=seeds[1])
    a.extend(("a", i) for i in range(n_points))
    b.extend(("b", i) for i in range(n_points))
    return a, b


class TestProportionalityConstant:
    def test_algorithm_2_1_is_one(self):
        assert proportionality_constant(
            ExponentialReservoir(capacity=10)
        ) == 1.0

    def test_algorithm_3_1_is_p_in(self):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=100)
        assert proportionality_constant(res) == pytest.approx(0.1)

    def test_variable_is_current_p_in(self):
        res = VariableReservoir(lam=1e-3, capacity=100, rng=0)
        res.extend(range(5000))
        assert proportionality_constant(res) == pytest.approx(res.p_in)

    def test_non_exponential_rejected(self):
        with pytest.raises(TypeError, match="not an exponentially biased"):
            proportionality_constant(UnbiasedReservoir(10))

    def test_lam_attribute_alone_is_not_eligibility(self):
        """Regression: a 'lam' attribute used to be taken as proof of the
        exponential design, so any decay-rate-bearing sampler slipped
        through and corrupted merges. Eligibility is the
        ``exponential_design`` class marker."""

        class LambdaBearing:
            lam = 0.05
            capacity = 40
            p_in = 0.7

        with pytest.raises(TypeError, match="carries a 'lam' attribute"):
            proportionality_constant(LambdaBearing())

    def test_time_decay_reservoir_rejected(self):
        """TimeDecayReservoir records per-resident insertion probabilities
        but does not maintain the count-axis design; it must be refused."""
        from repro.core.time_proportional import TimeDecayReservoir

        res = TimeDecayReservoir(lam_time=0.1, capacity=20, rng=0)
        for i in range(50):
            res.offer(i)
        with pytest.raises(TypeError, match="not an exponentially biased"):
            proportionality_constant(res)


class TestMerge:
    def test_basic_merge_shape(self):
        a, b = filled_pair()
        merged = merge_exponential_reservoirs(a, b, rng=0)
        assert merged.capacity == 500
        assert merged.size <= 500
        assert merged.lam == pytest.approx(1e-3)
        assert merged.p_in == pytest.approx(0.5)
        assert merged.t == max(a.t, b.t)

    def test_contains_points_from_both(self):
        a, b = filled_pair()
        merged = merge_exponential_reservoirs(a, b, rng=1)
        origins = {tag for tag, _ in merged.payloads()}
        assert origins == {"a", "b"}

    def test_lambda_mismatch_rejected(self):
        a = SpaceConstrainedReservoir(lam=1e-3, capacity=100, rng=0)
        b = SpaceConstrainedReservoir(lam=2e-3, capacity=100, rng=1)
        with pytest.raises(ValueError, match="common lambda"):
            merge_exponential_reservoirs(a, b)

    def test_cannot_upsample(self):
        a, b = filled_pair(capacity=200)
        # capacity 400 => target constant 0.4 > input constants 0.2.
        with pytest.raises(ValueError, match="cannot up-sample"):
            merge_exponential_reservoirs(a, b, capacity=400)

    def test_unbiased_input_rejected(self):
        a = SpaceConstrainedReservoir(lam=1e-3, capacity=100, rng=0)
        with pytest.raises(TypeError):
            merge_exponential_reservoirs(a, UnbiasedReservoir(100, rng=1))

    @pytest.mark.statistical
    def test_merged_age_distribution_preserves_bias(self):
        """Mean age of the merge ~ 1/lambda, same as the inputs."""
        lam = 2e-3
        ages = []
        for seed in range(10):
            a = SpaceConstrainedReservoir(lam=lam, capacity=300, rng=seed)
            b = SpaceConstrainedReservoir(
                lam=lam, capacity=300, rng=seed + 100
            )
            a.extend(range(10_000))
            b.extend(range(10_000))
            merged = merge_exponential_reservoirs(a, b, rng=seed + 200)
            ages.append(float((merged.t - merged.arrival_indices()).mean()))
        assert np.mean(ages) == pytest.approx(1 / lam, rel=0.15)

    def test_merged_expected_size_near_half_capacity(self):
        """Each input contributes ~target_c/c_i = 1/2 of its residents."""
        a, b = filled_pair(capacity=500)
        sizes = [
            merge_exponential_reservoirs(a, b, rng=seed).size
            for seed in range(20)
        ]
        # Thinning keeps each resident w.p. 0.5 -> E ~ 0.5*(500+500) = 500
        # but capped at 500; expect close to the cap.
        assert np.mean(sizes) > 420

    def test_smaller_output_capacity(self):
        a, b = filled_pair(capacity=500)
        merged = merge_exponential_reservoirs(a, b, capacity=200, rng=3)
        assert merged.capacity == 200
        assert merged.size <= 200
        assert merged.p_in == pytest.approx(0.2)

    def test_merged_reservoir_is_live(self):
        """Offering more points keeps working and keeps the size bound."""
        a, b = filled_pair(capacity=300)
        merged = merge_exponential_reservoirs(a, b, rng=4)
        before_t = merged.t
        merged.extend(("c", i) for i in range(5000))
        assert merged.t == before_t + 5000
        assert merged.size <= merged.capacity
        assert any(tag == "c" for tag, _ in merged.payloads())

    def test_arrivals_valid_after_merge(self):
        a, b = filled_pair()
        merged = merge_exponential_reservoirs(a, b, rng=5)
        arrivals = merged.arrival_indices()
        assert arrivals.min() >= 1
        assert arrivals.max() <= merged.t

    def test_capacity_validation(self):
        a, b = filled_pair(capacity=100)
        with pytest.raises(ValueError, match="capacity"):
            merge_exponential_reservoirs(a, b, capacity=0)

    def test_merge_algorithm_2_1_inputs(self):
        a = ExponentialReservoir(capacity=200, rng=0)
        b = ExponentialReservoir(capacity=200, rng=1)
        a.extend(range(5000))
        b.extend(range(5000))
        merged = merge_exponential_reservoirs(a, b, rng=2)
        # target constant = lam * capacity = (1/200)*200 = 1.0 == inputs.
        assert merged.p_in == pytest.approx(1.0)
        assert merged.size <= 200
