"""Seeded fuzz over the merge/fold edge cases.

Hand-rolled randomized sweeps (seeded ``default_rng``, no external fuzz
framework) over the Theorem 3.3 merge path: unequal stream clocks, empty
inputs, degenerate target capacities, n-way folds, and continued
ingestion after a merge. Each case asserts the structural invariants the
theorem guarantees rather than exact samples:

* ``size <= capacity`` and ``p_in == min(1, lam * capacity)``;
* every output resident came from an input, with its age preserved on
  the merged clock (``t == max`` of the input clocks);
* merging consumes no input state (inputs stay live);
* the merged reservoir is itself a live Algorithm 3.1 sampler — further
  ingestion keeps the gate ``p_in`` and the capacity bound.
"""

import numpy as np
import pytest

from repro.core import (
    ExponentialReservoir,
    SpaceConstrainedReservoir,
    fold_exponential_reservoirs,
    merge_exponential_reservoirs,
)

LAM = 0.01


def _filled(capacity, t, seed, offset=0):
    """A SpaceConstrainedReservoir at rate LAM fed ``t`` points."""
    res = SpaceConstrainedReservoir(
        lam=LAM, capacity=capacity, rng=np.random.default_rng(seed)
    )
    res.offer_many(range(offset, offset + t))
    return res


def _check_invariants(merged, inputs):
    assert merged.size <= merged.capacity
    assert merged.p_in == pytest.approx(min(1.0, LAM * merged.capacity))
    assert merged.t == max(s.t for s in inputs)
    input_payloads = set()
    for s in inputs:
        input_payloads.update(s.payloads())
    assert set(merged.payloads()) <= input_payloads
    arrivals = merged.arrival_indices()
    if arrivals.size:
        assert arrivals.min() >= 1
        assert arrivals.max() <= merged.t


class TestEdgeCases:
    def test_unequal_stream_clocks(self):
        a = _filled(80, 3000, seed=1)
        b = _filled(60, 700, seed=2, offset=100_000)
        merged = merge_exponential_reservoirs(a, b, rng=0)
        _check_invariants(merged, [a, b])
        # Ages are preserved on the merged clock: a resident that was
        # age k in its input is age k in the output.
        ages = {p: int(g) for g, p in zip(merged.ages(), merged.payloads())}
        for s in (a, b):
            for age, payload in zip(s.ages(), s.payloads()):
                if payload in ages:
                    assert ages[payload] == int(age)

    def test_both_inputs_empty(self):
        a = SpaceConstrainedReservoir(lam=LAM, capacity=50, rng=0)
        b = SpaceConstrainedReservoir(lam=LAM, capacity=30, rng=1)
        merged = merge_exponential_reservoirs(a, b, rng=2)
        assert merged.size == 0
        assert merged.t == 0
        assert merged.p_in == pytest.approx(min(1.0, LAM * merged.capacity))

    def test_one_empty_input(self):
        a = _filled(50, 2000, seed=3)
        b = SpaceConstrainedReservoir(lam=LAM, capacity=50, rng=4)
        merged = merge_exponential_reservoirs(a, b, rng=5)
        _check_invariants(merged, [a, b])
        assert set(merged.payloads()) <= set(a.payloads())

    def test_target_capacity_equals_smaller_input(self):
        a = _filled(90, 4000, seed=6)
        b = _filled(40, 4000, seed=7, offset=50_000)
        merged = merge_exponential_reservoirs(a, b, capacity=40, rng=8)
        _check_invariants(merged, [a, b])
        assert merged.capacity == 40

    def test_capacity_one(self):
        a = _filled(80, 3000, seed=9)
        b = _filled(80, 3000, seed=10, offset=50_000)
        merged = merge_exponential_reservoirs(a, b, capacity=1, rng=11)
        assert merged.capacity == 1
        assert merged.size <= 1

    def test_merge_does_not_consume_inputs(self):
        a = _filled(80, 3000, seed=12)
        b = _filled(80, 3000, seed=13, offset=50_000)
        before = (list(a.payloads()), list(b.payloads()), a.t, b.t)
        merge_exponential_reservoirs(a, b, rng=14)
        assert (list(a.payloads()), list(b.payloads()), a.t, b.t) == before
        a.offer(999_999)  # inputs stay live
        assert a.t == before[2] + 1

    def test_post_merge_ingestion_preserves_gate(self):
        a = _filled(80, 3000, seed=15)
        b = _filled(80, 3000, seed=16, offset=50_000)
        merged = merge_exponential_reservoirs(a, b, capacity=60, rng=17)
        gate = merged.p_in
        t0 = merged.t
        merged.offer_many(range(200_000, 202_000))
        assert merged.p_in == pytest.approx(gate)
        assert merged.lam == pytest.approx(gate / merged.capacity)
        assert merged.size <= merged.capacity
        assert merged.t == t0 + 2000

    def test_upsample_rejected(self):
        # target_c = lam * capacity exceeds an input's p_in -> no valid
        # thinning factor exists.
        a = _filled(30, 3000, seed=18)  # p_in = 0.3
        b = _filled(30, 3000, seed=19, offset=50_000)
        with pytest.raises(ValueError, match="up-sample"):
            merge_exponential_reservoirs(a, b, capacity=80, rng=20)


class TestFoldNWay:
    def test_fold_requires_inputs(self):
        with pytest.raises(ValueError):
            fold_exponential_reservoirs([])

    def test_fold_single_input_at_own_capacity_is_identity_set(self):
        a = _filled(80, 3000, seed=21)
        folded = fold_exponential_reservoirs([a], rng=22)
        assert sorted(folded.payloads()) == sorted(a.payloads())

    def test_fold_matches_pairwise_merge(self):
        a = _filled(80, 3000, seed=23)
        b = _filled(80, 3000, seed=24, offset=50_000)
        assert sorted(
            fold_exponential_reservoirs([a, b], rng=25).payloads()
        ) == sorted(merge_exponential_reservoirs(a, b, rng=25).payloads())

    def test_fold_lambda_mismatch_rejected(self):
        a = _filled(80, 3000, seed=26)
        odd = SpaceConstrainedReservoir(lam=2 * LAM, capacity=40, rng=27)
        odd.offer_many(range(1000))
        with pytest.raises(ValueError, match="common lambda"):
            fold_exponential_reservoirs([a, odd])

    def test_fold_mixed_families(self):
        """Algorithm 2.1 (p_in = 1) folds with Algorithm 3.1 inputs."""
        full = ExponentialReservoir(
            lam=LAM, capacity=100, rng=np.random.default_rng(28)
        )
        full.offer_many(range(3000))
        gated = _filled(60, 3000, seed=29, offset=50_000)
        folded = fold_exponential_reservoirs([full, gated], capacity=60, rng=30)
        _check_invariants(folded, [full, gated])
        assert folded.capacity == 60


class TestSeededFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_nway_folds_hold_invariants(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 5))
        inputs = []
        for i in range(k):
            capacity = int(rng.integers(10, 101))
            t = int(rng.integers(0, 5001))
            inputs.append(
                _filled(capacity, t, seed=1000 * seed + i, offset=10_000 * i)
            )
        smallest = min(s.capacity for s in inputs)
        capacity = int(rng.integers(1, smallest + 1))
        folded = fold_exponential_reservoirs(
            inputs, capacity=capacity, rng=rng
        )
        _check_invariants(folded, inputs)
        assert folded.capacity == capacity
        # Disjoint input streams -> no duplicate survivors.
        payloads = folded.payloads()
        assert len(payloads) == len(set(payloads))

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzzed_merge_then_ingest(self, seed):
        rng = np.random.default_rng(100 + seed)
        a = _filled(int(rng.integers(20, 101)), int(rng.integers(0, 4000)),
                    seed=seed)
        b = _filled(int(rng.integers(20, 101)), int(rng.integers(0, 4000)),
                    seed=seed + 500, offset=50_000)
        merged = merge_exponential_reservoirs(a, b, rng=rng)
        gate = merged.p_in
        merged.offer_many(range(300_000, 300_000 + int(rng.integers(0, 3000))))
        assert merged.p_in == pytest.approx(gate)
        assert merged.size <= merged.capacity
