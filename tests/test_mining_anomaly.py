"""Tests for reservoir-based anomaly scoring (extension)."""

import numpy as np
import pytest

from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.mining.anomaly import ReservoirAnomalyScorer
from repro.streams.point import StreamPoint
from tests.conftest import make_points


def feed(scorer, points):
    for p in points:
        scorer.score_then_observe(p)


class TestScoring:
    def test_empty_reservoir_scores_none(self):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(10, rng=0))
        assert scorer.score(StreamPoint(1, np.zeros(2))) is None

    def test_inlier_scores_low_outlier_high(self, rng):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(200, rng=1), k=5)
        feed(scorer, make_points(rng.normal(size=(500, 2))))
        inlier = scorer.score(StreamPoint(999, np.zeros(2)))
        outlier = scorer.score(StreamPoint(999, np.full(2, 20.0)))
        assert outlier > 5 * inlier

    def test_k_larger_than_reservoir(self, rng):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(3, rng=2), k=10)
        feed(scorer, make_points(rng.normal(size=(3, 2))))
        assert scorer.score(StreamPoint(9, np.zeros(2))) is not None

    def test_parameter_validation(self):
        res = UnbiasedReservoir(10, rng=3)
        with pytest.raises(ValueError, match="k"):
            ReservoirAnomalyScorer(res, k=0)
        with pytest.raises(ValueError, match="score_memory"):
            ReservoirAnomalyScorer(res, score_memory=5)


class TestThresholding:
    def test_threshold_needs_warmup(self):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(10, rng=4))
        assert scorer.calibrate_threshold() is None

    def test_threshold_is_quantile_of_scores(self, rng):
        scorer = ReservoirAnomalyScorer(
            UnbiasedReservoir(100, rng=5), score_memory=500
        )
        feed(scorer, make_points(rng.normal(size=(600, 2))))
        threshold = scorer.calibrate_threshold(0.9)
        scores = np.asarray(scorer.recent_scores)
        assert threshold == pytest.approx(float(np.quantile(scores, 0.9)))

    def test_quantile_validation(self):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(10, rng=6))
        with pytest.raises(ValueError, match="quantile"):
            scorer.calibrate_threshold(1.0)

    def test_is_anomalous_flags_planted_outlier(self, rng):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(200, rng=7))
        feed(scorer, make_points(rng.normal(size=(1000, 3))))
        assert scorer.is_anomalous(StreamPoint(9, np.full(3, 15.0))) is True
        assert scorer.is_anomalous(StreamPoint(9, np.zeros(3))) is False

    def test_is_anomalous_none_before_warmup(self):
        scorer = ReservoirAnomalyScorer(UnbiasedReservoir(10, rng=8))
        scorer.score_then_observe(StreamPoint(1, np.zeros(2)))
        assert scorer.is_anomalous(StreamPoint(2, np.zeros(2))) is None


class TestDriftAdaptation:
    def test_biased_detector_accepts_new_regime_faster(self, rng):
        """After a regime change, the *biased* detector re-calibrates
        (new-regime points stop looking anomalous) while the unbiased one
        keeps scoring them against dominant stale history."""
        old_regime = make_points(rng.normal(0.0, 1.0, size=(20_000, 2)))
        new_regime = make_points(
            rng.normal(8.0, 1.0, size=(3_000, 2)), start_index=20_001
        )
        biased = ReservoirAnomalyScorer(
            SpaceConstrainedReservoir(lam=1e-3, capacity=300, rng=9)
        )
        unbiased = ReservoirAnomalyScorer(UnbiasedReservoir(300, rng=10))
        for scorer in (biased, unbiased):
            feed(scorer, old_regime)
            feed(scorer, new_regime)
        probe = StreamPoint(99_999, np.full(2, 8.0))  # new-regime center
        assert biased.score(probe) < unbiased.score(probe)
