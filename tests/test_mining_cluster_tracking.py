"""Tests for reservoir-based cluster tracking (extension)."""

import numpy as np
import pytest

from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.mining.cluster_tracking import ClusterTracker
from repro.streams import EvolvingClusterStream
from tests.conftest import make_points


class TestClusterTracker:
    def test_parameter_validation(self):
        res = UnbiasedReservoir(10, rng=0)
        with pytest.raises(ValueError, match="k"):
            ClusterTracker(res, k=0)
        with pytest.raises(ValueError, match="every"):
            ClusterTracker(res, k=2, every=0)

    def test_checkpoints_every_n_points(self, rng):
        res = UnbiasedReservoir(100, rng=1)
        tracker = ClusterTracker(res, k=2, every=50, rng=2)
        pts = make_points(rng.normal(size=(220, 2)))
        tracker.track(pts)
        assert [c.t for c in tracker.checkpoints] == [50, 100, 150, 200]

    def test_no_checkpoint_before_k_points(self):
        res = UnbiasedReservoir(100, rng=3)
        tracker = ClusterTracker(res, k=5, every=2, rng=4)
        pts = make_points(np.random.default_rng(0).normal(size=(4, 2)))
        tracker.track(pts)
        assert tracker.checkpoints == []  # fewer residents than k

    def test_recovers_static_centers(self, rng):
        centers = np.array([[0.0, 0.0], [8.0, 8.0]])
        rows = np.vstack(
            [
                rng.normal(size=(300, 2)) + centers[i % 2]
                for i in range(2)
            ]
        )
        rng.shuffle(rows)
        res = UnbiasedReservoir(200, rng=5)
        tracker = ClusterTracker(res, k=2, every=200, rng=6)
        tracker.track(make_points(rows))
        assert tracker.tracking_error(centers) < 1.0

    def test_first_checkpoint_movement_zero(self, rng):
        res = UnbiasedReservoir(50, rng=7)
        tracker = ClusterTracker(res, k=2, every=60, rng=8)
        tracker.track(make_points(rng.normal(size=(70, 2))))
        assert tracker.checkpoints[0].movement == 0.0

    def test_movement_tracks_drift(self):
        """On a drifting stream, later checkpoints report movement > 0."""
        stream = EvolvingClusterStream(
            length=20_000, n_clusters=3, drift=0.05, drift_every=50, rng=9
        )
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=400, rng=10)
        tracker = ClusterTracker(res, k=3, every=5_000, rng=11)
        tracker.track(stream)
        movements = [c.movement for c in tracker.checkpoints[1:]]
        assert all(m > 0 for m in movements)

    def test_biased_tracker_lags_less_than_unbiased(self):
        """The clustering analogue of Figures 7-9: tracked centers over a
        biased reservoir stay closer to the true (current) centers."""
        errors = {}
        for name, make_sampler in (
            ("biased", lambda s: SpaceConstrainedReservoir(
                lam=1e-4, capacity=500, rng=s
            )),
            ("unbiased", lambda s: UnbiasedReservoir(500, rng=s)),
        ):
            errs = []
            for seed in (1, 2, 3):
                stream = EvolvingClusterStream(
                    length=40_000,
                    n_clusters=3,
                    drift=0.05,
                    drift_every=50,
                    rng=seed,
                )
                tracker = ClusterTracker(
                    make_sampler(seed + 50), k=3, every=40_000, rng=seed
                )
                tracker.track(stream)
                errs.append(tracker.tracking_error(stream.centers))
            errors[name] = float(np.mean(errs))
        assert errors["biased"] < errors["unbiased"]

    def test_center_trajectory_shape(self, rng):
        res = UnbiasedReservoir(100, rng=12)
        tracker = ClusterTracker(res, k=2, every=100, rng=13)
        tracker.track(make_points(rng.normal(size=(350, 4))))
        traj = tracker.center_trajectory()
        assert traj.shape == (3, 2, 4)

    def test_center_trajectory_empty(self):
        res = UnbiasedReservoir(10, rng=14)
        tracker = ClusterTracker(res, k=2, every=100, rng=15)
        assert tracker.center_trajectory().shape[0] == 0

    def test_tracking_error_requires_checkpoints(self):
        res = UnbiasedReservoir(10, rng=16)
        tracker = ClusterTracker(res, k=2, every=100, rng=17)
        with pytest.raises(ValueError, match="no checkpoints"):
            tracker.tracking_error(np.zeros((2, 2)))
