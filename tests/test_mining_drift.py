"""Tests for reservoir-based drift detection (extension)."""

import numpy as np
import pytest

from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.mining.drift import DriftScore, ReservoirDriftDetector
from repro.streams import EvolvingClusterStream
from repro.streams.point import StreamPoint
from tests.conftest import make_points


def stationary_points(rng, n, start=1):
    return make_points(rng.normal(size=(n, 4)), start_index=start)


def shifted_points(rng, n, shift, start=1):
    return make_points(
        rng.normal(size=(n, 4)) + shift, start_index=start
    )


def feed(sampler, points):
    for p in points:
        sampler.offer(p)


class TestDriftScoring:
    def test_stationary_stream_scores_low(self, rng):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=400, rng=0)
        feed(res, stationary_points(rng, 10_000))
        score = ReservoirDriftDetector(res, threshold_age=800).score()
        assert score is not None
        assert score.mean_shift < 1.0
        assert score.energy < 0.3

    def test_abrupt_shift_scores_high(self, rng):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=400, rng=1)
        feed(res, stationary_points(rng, 8_000))
        feed(res, shifted_points(rng, 600, shift=4.0, start=8_001))
        score = ReservoirDriftDetector(res, threshold_age=800).score()
        assert score is not None
        assert score.mean_shift > 2.0
        assert score.energy > 1.0

    def test_shift_detected_above_stationary_baseline(self, rng):
        """The score must separate drifted from stationary regimes."""
        baseline_scores = []
        drifted_scores = []
        for seed in range(5):
            local = np.random.default_rng(seed)
            res = SpaceConstrainedReservoir(lam=1e-3, capacity=400, rng=seed)
            feed(res, stationary_points(local, 9_000))
            baseline_scores.append(
                ReservoirDriftDetector(res, threshold_age=800).score().energy
            )
            feed(res, shifted_points(local, 800, shift=2.0, start=9_001))
            drifted_scores.append(
                ReservoirDriftDetector(res, threshold_age=800).score().energy
            )
        assert min(drifted_scores) > max(baseline_scores)

    def test_none_when_stratum_too_small(self, rng):
        res = UnbiasedReservoir(50, rng=2)
        feed(res, stationary_points(rng, 60))
        # threshold larger than the whole stream: old stratum empty.
        detector = ReservoirDriftDetector(res, threshold_age=100)
        assert detector.score() is None

    def test_default_threshold_is_capacity(self):
        res = UnbiasedReservoir(123, rng=3)
        assert ReservoirDriftDetector(res).threshold_age == 123

    def test_parameter_validation(self):
        res = UnbiasedReservoir(10, rng=4)
        with pytest.raises(ValueError, match="threshold_age"):
            ReservoirDriftDetector(res, threshold_age=0)
        with pytest.raises(ValueError, match="max_stratum"):
            ReservoirDriftDetector(res, max_stratum=1)

    def test_non_streampoint_payload_rejected(self):
        res = UnbiasedReservoir(10, rng=5)
        res.extend(range(10))
        with pytest.raises(TypeError, match="StreamPoint"):
            ReservoirDriftDetector(res, threshold_age=5).score()

    def test_subsampling_keeps_score_finite(self, rng):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=900, rng=6)
        feed(res, stationary_points(rng, 12_000))
        detector = ReservoirDriftDetector(
            res, threshold_age=800, max_stratum=50
        )
        score = detector.score()
        assert score is not None
        assert np.isfinite(score.energy)


class TestScoreSeries:
    def test_series_tracks_evolution(self):
        """On a strongly drifting stream the late scores exceed early."""
        stream = EvolvingClusterStream(
            length=30_000, drift=0.1, drift_every=50, rng=7
        )
        res = SpaceConstrainedReservoir(lam=1e-4, capacity=600, rng=8)
        series = ReservoirDriftDetector.score_series(
            stream, res, every=5_000, threshold_age=1_500
        )
        assert len(series) >= 4
        for t, score in series:
            assert isinstance(score, DriftScore)
            assert t % 5_000 == 0
        energies = [s.energy for _, s in series]
        assert max(energies) > 0.0

    def test_series_validation(self):
        res = UnbiasedReservoir(10, rng=9)
        with pytest.raises(ValueError, match="every"):
            ReservoirDriftDetector.score_series([], res, every=0)

    def test_series_empty_stream(self):
        res = UnbiasedReservoir(10, rng=10)
        assert ReservoirDriftDetector.score_series([], res, every=5) == []
