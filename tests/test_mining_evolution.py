"""Tests for the evolution-analysis metrics (Figure 9 machinery)."""

import numpy as np
import pytest

from repro.core.unbiased import UnbiasedReservoir
from repro.mining.evolution import (
    class_separation,
    neighborhood_label_purity,
    snapshot,
)
from repro.streams.point import StreamPoint
from tests.conftest import make_points


class TestNeighborhoodLabelPurity:
    def test_perfectly_separated_is_one(self):
        values = np.array([[0, 0], [0.1, 0], [10, 10], [10.1, 10]])
        labels = np.array([0, 0, 1, 1])
        assert neighborhood_label_purity(values, labels) == 1.0

    def test_perfectly_interleaved_is_zero(self):
        values = np.array([[0.0], [0.1], [0.2], [0.3]])
        labels = np.array([0, 1, 0, 1])
        assert neighborhood_label_purity(values, labels) == 0.0

    def test_single_point_nan(self):
        assert np.isnan(neighborhood_label_purity(np.zeros((1, 2)), [0]))

    def test_mixed_value(self):
        values = np.array([[0.0], [0.1], [5.0], [9.9], [10.0]])
        labels = np.array([0, 0, 0, 1, 1])
        purity = neighborhood_label_purity(values, labels)
        assert 0.0 < purity <= 1.0


class TestClassSeparation:
    def test_increases_with_distance(self, rng):
        a = rng.normal(0, 1, size=(50, 2))
        labels = np.array([0] * 25 + [1] * 25)
        near = np.vstack([a[:25], a[25:] + 2.0])
        far = np.vstack([a[:25], a[25:] + 20.0])
        assert class_separation(far, labels) > class_separation(near, labels)

    def test_single_class_nan(self):
        assert np.isnan(class_separation(np.zeros((5, 2)), [0] * 5))

    def test_zero_scatter_infinite(self):
        values = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = np.array([0, 1])
        assert class_separation(values, labels) == np.inf


class TestSnapshot:
    def test_snapshot_fields(self, rng):
        res = UnbiasedReservoir(50, rng=0)
        pts = make_points(
            rng.normal(size=(200, 3)), labels=rng.integers(0, 2, 200)
        )
        for p in pts:
            res.offer(p)
        snap = snapshot(res)
        assert snap.t == 200
        assert snap.values.shape[1] == 3
        assert snap.values.shape[0] == snap.labels.shape[0]
        assert (snap.ages >= 0).all()
        assert 0.0 <= snap.staleness <= 1.0

    def test_unlabeled_residents_excluded(self, rng):
        res = UnbiasedReservoir(50, rng=1)
        labeled = make_points(rng.normal(size=(10, 2)), labels=[0] * 10)
        unlabeled = [
            StreamPoint(11 + i, rng.normal(size=2)) for i in range(10)
        ]
        for p in labeled + unlabeled:
            res.offer(p)
        snap = snapshot(res)
        assert snap.values.shape[0] == 10

    def test_all_unlabeled_raises(self, rng):
        res = UnbiasedReservoir(10, rng=2)
        for i in range(10):
            res.offer(StreamPoint(i + 1, rng.normal(size=2)))
        with pytest.raises(ValueError, match="no labeled"):
            snapshot(res)

    def test_projection(self, rng):
        res = UnbiasedReservoir(20, rng=3)
        for p in make_points(rng.normal(size=(50, 5)), labels=[0] * 50):
            res.offer(p)
        snap = snapshot(res)
        proj = snap.projection((0, 1))
        assert proj.shape == (snap.values.shape[0], 2)
        np.testing.assert_array_equal(proj, snap.values[:, :2])

    def test_unbiased_staleness_near_half(self, rng):
        """Mean age of a uniform sample is ~t/2."""
        res = UnbiasedReservoir(200, rng=4)
        pts = make_points(
            rng.normal(size=(10_000, 2)), labels=[0] * 10_000
        )
        for p in pts:
            res.offer(p)
        assert snapshot(res).staleness == pytest.approx(0.5, abs=0.08)
