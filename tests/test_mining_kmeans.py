"""Tests for the lightweight k-means implementation."""

import numpy as np
import pytest

from repro.mining.kmeans import kmeans


def blobs(rng, centers, per=50, scale=0.3):
    rows = []
    for c in centers:
        rows.append(rng.normal(0, scale, size=(per, len(c))) + np.asarray(c))
    return np.vstack(rows)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        data = blobs(rng, centers)
        result = kmeans(data, 3, rng=0)
        # Each true center must have a found center within tolerance.
        for c in centers:
            nearest = np.min(np.linalg.norm(result.centers - c, axis=1))
            assert nearest < 0.5

    def test_assignments_match_centers(self, rng):
        data = blobs(rng, [[0.0, 0.0], [10.0, 10.0]])
        result = kmeans(data, 2, rng=1)
        for i, row in enumerate(data):
            dists = np.linalg.norm(result.centers - row, axis=1)
            assert result.assignments[i] == np.argmin(dists)

    def test_inertia_decreases_with_more_clusters(self, rng):
        data = blobs(rng, [[0, 0], [5, 5], [10, 0]], per=30)
        one = kmeans(data, 1, rng=2).inertia
        three = kmeans(data, 3, rng=2).inertia
        assert three < one

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(5, 2))
        result = kmeans(data, 5, rng=3)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_center_is_mean(self, rng):
        data = rng.normal(size=(100, 3))
        result = kmeans(data, 1, rng=4)
        np.testing.assert_allclose(result.centers[0], data.mean(axis=0))

    def test_warm_start_with_init_centers(self, rng):
        data = blobs(rng, [[0.0, 0.0], [10.0, 10.0]])
        init = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = kmeans(data, 2, init_centers=init)
        assert result.iterations <= 3  # essentially converged at start

    def test_warm_start_preserves_cluster_identity(self, rng):
        """Center 0 must stay the cluster nearest its initialization."""
        data = blobs(rng, [[0.0, 0.0], [10.0, 10.0]])
        init = np.array([[10.0, 10.0], [0.0, 0.0]])  # swapped on purpose
        result = kmeans(data, 2, init_centers=init)
        assert np.linalg.norm(result.centers[0] - [10, 10]) < 1.0
        assert np.linalg.norm(result.centers[1] - [0, 0]) < 1.0

    def test_init_centers_shape_validation(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="init_centers"):
            kmeans(data, 2, init_centers=np.zeros((3, 2)))

    def test_duplicate_points_handled(self):
        data = np.zeros((20, 2))
        result = kmeans(data, 3, rng=5)
        assert result.inertia == pytest.approx(0.0)

    def test_deterministic_given_seed(self, rng):
        data = rng.normal(size=(60, 2))
        a = kmeans(data, 3, rng=7)
        b = kmeans(data, 3, rng=7)
        np.testing.assert_array_equal(a.centers, b.centers)

    @pytest.mark.parametrize("bad_k", [0, 11])
    def test_k_validation(self, bad_k):
        with pytest.raises(ValueError, match="k"):
            kmeans(np.zeros((10, 2)), bad_k)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            kmeans(np.zeros(10), 2)
