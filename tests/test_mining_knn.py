"""Tests for the reservoir-backed kNN classifier."""

import numpy as np
import pytest

from repro.core.sliding_window import ChainSampler, WindowBuffer
from repro.core.unbiased import UnbiasedReservoir
from repro.core.variable import VariableReservoir
from repro.mining.knn import ReservoirKnnClassifier
from repro.streams.point import StreamPoint
from tests.conftest import make_points


def two_blob_points(n_per_class=50, separation=10.0, seed=0, start=1):
    """Two well-separated Gaussian blobs, labels 0/1."""
    rng = np.random.default_rng(seed)
    values = np.vstack(
        [
            rng.normal(0.0, 1.0, size=(n_per_class, 2)),
            rng.normal(separation, 1.0, size=(n_per_class, 2)),
        ]
    )
    labels = [0] * n_per_class + [1] * n_per_class
    return make_points(values, labels, start_index=start)


class TestPrediction:
    def test_predicts_nearest_blob(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(200, rng=0))
        for p in two_blob_points():
            clf.observe(p)
        assert clf.predict(StreamPoint(999, np.array([0.0, 0.0]))) == 0
        assert clf.predict(StreamPoint(999, np.array([10.0, 10.0]))) == 1

    def test_none_on_empty_reservoir(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0))
        assert clf.predict(StreamPoint(1, np.zeros(2))) is None

    def test_none_when_only_unlabeled(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0))
        clf.observe(StreamPoint(1, np.zeros(2)))  # unlabeled
        assert clf.predict(StreamPoint(2, np.zeros(2))) is None

    def test_unlabeled_residents_ignored(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0))
        clf.observe(StreamPoint(1, np.array([0.0, 0.0])))  # unlabeled, closest
        clf.observe(StreamPoint(2, np.array([5.0, 5.0]), label=1))
        assert clf.predict(StreamPoint(3, np.array([0.0, 0.0]))) == 1

    def test_k3_majority_vote(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0), k=3)
        pts = make_points(
            [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [5.0, 5.0]],
            labels=[0, 0, 1, 1],
        )
        for p in pts:
            clf.observe(p)
        # 3 nearest to origin: labels 0, 0, 1 -> majority 0.
        assert clf.predict(StreamPoint(9, np.array([0.0, 0.0]))) == 0

    def test_k_larger_than_reservoir(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0), k=50)
        for p in two_blob_points(n_per_class=3):
            clf.observe(p)
        assert clf.predict(StreamPoint(99, np.array([0.0, 0.0]))) in (0, 1)

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            ReservoirKnnClassifier(UnbiasedReservoir(5), k=0)

    def test_predict_then_observe_order(self):
        """The prequential step must classify before training."""
        clf = ReservoirKnnClassifier(UnbiasedReservoir(10, rng=0))
        first = StreamPoint(1, np.array([0.0, 0.0]), label=0)
        # First point: nothing to compare against yet -> None.
        assert clf.predict_then_observe(first) is None
        # Second point: now the first is in the reservoir.
        second = StreamPoint(2, np.array([0.1, 0.1]), label=0)
        assert clf.predict_then_observe(second) == 0


class TestMirrorConsistency:
    def test_mirror_matches_reservoir_after_churn(self):
        """After heavy replacement churn, predictions must agree with a
        freshly built classifier over the same reservoir."""
        res = UnbiasedReservoir(30, rng=1)
        clf = ReservoirKnnClassifier(res)
        for p in two_blob_points(n_per_class=500, seed=2):
            clf.observe(p)
        fresh = ReservoirKnnClassifier(UnbiasedReservoir(30, rng=99))
        fresh.sampler = res  # same reservoir, forced rebuild
        probe_rng = np.random.default_rng(3)
        for i in range(50):
            probe = StreamPoint(10_000 + i, probe_rng.normal(5, 4, size=2))
            assert clf.predict(probe) == fresh.predict(probe)

    def test_mirror_survives_compaction(self):
        """VariableReservoir phase ejections compact storage; the mirror
        must rebuild correctly."""
        res = VariableReservoir(lam=1e-2, capacity=50, rng=4)
        clf = ReservoirKnnClassifier(res)
        for p in two_blob_points(n_per_class=400, seed=5):
            clf.observe(p)
        assert res.ejections > 0
        probe = StreamPoint(99_999, np.array([10.0, 10.0]))
        assert clf.predict(probe) == 1

    def test_out_of_band_mutation_detected(self):
        """Offering directly to the sampler (bypassing observe) must not
        leave the mirror stale."""
        res = UnbiasedReservoir(5, rng=6)
        clf = ReservoirKnnClassifier(res)
        clf.observe(StreamPoint(1, np.array([0.0, 0.0]), label=0))
        # Out-of-band: push a decisive point straight into the sampler.
        res.offer(StreamPoint(2, np.array([5.0, 5.0]), label=1))
        assert clf.predict(StreamPoint(3, np.array([5.0, 5.0]))) == 1

    def test_works_without_mutation_log(self):
        """ChainSampler has no mutation log; the classifier falls back to
        re-snapshotting."""
        res = ChainSampler(20, window=200, rng=7)
        clf = ReservoirKnnClassifier(res)
        for p in two_blob_points(n_per_class=300, seed=8):
            clf.observe(p)
        # Window covers only label-1 points at the end.
        assert clf.predict(StreamPoint(9999, np.array([10.0, 10.0]))) == 1

    def test_window_buffer_backing(self):
        res = WindowBuffer(50, rng=9)
        clf = ReservoirKnnClassifier(res)
        for p in two_blob_points(n_per_class=100, seed=10):
            clf.observe(p)
        # Buffer holds only the last 50 points -> all label 1.
        assert clf.predict(StreamPoint(9999, np.array([0.0, 0.0]))) == 1
