"""Tests for the prequential evaluation loop."""

import numpy as np
import pytest

from repro.core.unbiased import UnbiasedReservoir
from repro.mining.knn import ReservoirKnnClassifier
from repro.mining.prequential import run_prequential
from repro.streams.point import StreamPoint
from tests.conftest import make_points


def constant_label_stream(n, label=0, seed=0):
    rng = np.random.default_rng(seed)
    return make_points(rng.normal(size=(n, 2)), labels=[label] * n)


class TestRunPrequential:
    def test_perfect_accuracy_on_single_class(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=0))
        results = run_prequential(
            constant_label_stream(100), {"clf": clf}, window=50
        )
        r = results["clf"]
        assert r.final_accuracy == 1.0
        assert r.predictions == 99  # first point had empty reservoir

    def test_window_series_lengths(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=0))
        results = run_prequential(
            constant_label_stream(100), {"clf": clf}, window=25
        )
        r = results["clf"]
        assert r.checkpoints == [25, 50, 75, 100]
        assert len(r.window_accuracy) == 4
        assert len(r.cumulative_accuracy) == 4

    def test_multiple_classifiers_see_same_stream(self):
        a = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=1))
        b = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=2))
        results = run_prequential(
            constant_label_stream(60), {"a": a, "b": b}, window=30
        )
        assert results["a"].predictions == results["b"].predictions
        assert a.sampler.t == b.sampler.t == 60

    def test_unlabeled_points_skipped(self):
        labeled = constant_label_stream(50)
        unlabeled = [
            StreamPoint(100 + i, np.zeros(2)) for i in range(10)
        ]
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=3))
        results = run_prequential(
            labeled + unlabeled, {"clf": clf}, window=50
        )
        assert clf.sampler.t == 50  # unlabeled never offered

    def test_unlabeled_points_kept_when_requested(self):
        labeled = constant_label_stream(10)
        unlabeled = [StreamPoint(11, np.zeros(2))]
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=4))
        run_prequential(
            labeled + unlabeled,
            {"clf": clf},
            window=100,
            skip_unlabeled=False,
        )
        assert clf.sampler.t == 11

    def test_cumulative_accuracy_consistent(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=5))
        results = run_prequential(
            constant_label_stream(100), {"clf": clf}, window=50
        )
        r = results["clf"]
        assert r.cumulative_accuracy[-1] == pytest.approx(r.final_accuracy)

    def test_final_accuracy_zero_when_no_predictions(self):
        clf = ReservoirKnnClassifier(UnbiasedReservoir(20, rng=6))
        results = run_prequential([], {"clf": clf}, window=10)
        assert results["clf"].final_accuracy == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            run_prequential([], {}, window=0)

    def test_alternating_classes_learnable(self):
        """Two separated classes: accuracy should be high after warm-up."""
        rng = np.random.default_rng(7)
        points = []
        for i in range(400):
            label = i % 2
            center = np.array([0.0, 0.0]) if label == 0 else np.array([8.0, 8.0])
            points.append(
                StreamPoint(i + 1, center + rng.normal(size=2), label)
            )
        clf = ReservoirKnnClassifier(UnbiasedReservoir(50, rng=8))
        results = run_prequential(points, {"clf": clf}, window=200)
        assert results["clf"].final_accuracy > 0.9
