"""Batch ingestion (`offer_many`) equivalence with the per-item path.

Two tiers of guarantee, each tested here:

* Samplers on the generic fallback consume the *exact* same random
  sequence as an ``offer`` loop, so per-item and batched runs at one seed
  must be byte-identical.
* Samplers with vectorized fast paths (``ExponentialReservoir``,
  ``UnbiasedReservoir``, ``SkipUnbiasedReservoir``,
  ``TimestampedExponentialReservoir``) pre-draw their randomness in bulk,
  so only the *distribution* is guaranteed: counters and invariants match
  exactly, empirical inclusion frequencies match within statistical
  tolerance (seeded, sized to ~4-5 sigma so they pass deterministically).
"""

import numpy as np
import pytest

from repro.core import (
    ChainSampler,
    ExponentialBias,
    ExponentialReservoir,
    GeneralBiasSampler,
    SkipUnbiasedReservoir,
    SpaceConstrainedReservoir,
    TimeDecayReservoir,
    TimestampedExponentialReservoir,
    UnbiasedReservoir,
    VariableReservoir,
    WindowBuffer,
)
from repro.mining.knn import ReservoirKnnClassifier
from repro.streams.point import StreamPoint

# ---------------------------------------------------------------------- #
# Sampler factories
# ---------------------------------------------------------------------- #

GENERIC_FALLBACK = {
    "space_constrained": lambda seed: SpaceConstrainedReservoir(
        lam=1e-2, capacity=50, rng=seed
    ),
    "variable": lambda seed: VariableReservoir(
        lam=1e-2, capacity=50, rng=seed
    ),
    "time_decay": lambda seed: TimeDecayReservoir(
        lam_time=0.02, capacity=50, rng=seed
    ),
    "window_buffer": lambda seed: WindowBuffer(50, rng=seed),
    "chain": lambda seed: ChainSampler(20, window=100, rng=seed),
    "general_bias": lambda seed: GeneralBiasSampler(
        ExponentialBias(1e-2), target_size=30, rng=seed
    ),
}

FAST_PATH = {
    "exponential": lambda seed: ExponentialReservoir(capacity=25, rng=seed),
    "unbiased": lambda seed: UnbiasedReservoir(25, rng=seed),
    "skip_unbiased": lambda seed: SkipUnbiasedReservoir(25, rng=seed),
    "timestamped": lambda seed: TimestampedExponentialReservoir(
        lam_time=0.04, capacity=25, rng=seed
    ),
}

ALL_SAMPLERS = {**GENERIC_FALLBACK, **FAST_PATH}


def _state(sampler):
    """Full observable state tuple for exactness comparisons."""
    return (
        sampler.t,
        sampler.offers,
        sampler.insertions,
        sampler.ejections,
        sampler.size,
        sampler.payloads(),
        sampler.arrival_indices().tolist(),
    )


def _run_per_item(factory, seed, stream):
    sampler = factory(seed)
    for item in stream:
        sampler.offer(item)
    return sampler


def _run_batched(factory, seed, stream, batch_size):
    sampler = factory(seed)
    for lo in range(0, len(stream), batch_size):
        sampler.offer_many(stream[lo : lo + batch_size])
    return sampler


# ---------------------------------------------------------------------- #
# Generic fallback: exact equivalence
# ---------------------------------------------------------------------- #


class TestGenericFallbackExactness:
    @pytest.mark.parametrize("name", sorted(GENERIC_FALLBACK))
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_state_identical_to_per_item(self, name, batch_size):
        factory = GENERIC_FALLBACK[name]
        stream = list(range(600))
        a = _run_per_item(factory, 99, stream)
        b = _run_batched(factory, 99, stream, batch_size)
        assert _state(a) == _state(b)

    @pytest.mark.parametrize("name", sorted(GENERIC_FALLBACK))
    def test_return_value_matches_offer_sum(self, name):
        factory = GENERIC_FALLBACK[name]
        stream = list(range(400))
        a = factory(7)
        stored_item = sum(bool(a.offer(x)) for x in stream)
        b = factory(7)
        stored_batch = b.offer_many(stream)
        assert stored_batch == stored_item


# ---------------------------------------------------------------------- #
# Universal contracts (every sampler)
# ---------------------------------------------------------------------- #


class TestOfferManyContract:
    @pytest.mark.parametrize("name", sorted(ALL_SAMPLERS))
    def test_empty_block_is_a_noop(self, name):
        sampler = ALL_SAMPLERS[name](3)
        sampler.offer_many(range(40))
        before = _state(sampler)
        ops_before = sampler.last_ops
        assert sampler.offer_many([]) == 0
        assert sampler.offer_many(iter(())) == 0
        assert _state(sampler) == before
        # The previous batch's log survives an empty call untouched.
        assert sampler.last_ops == ops_before

    @pytest.mark.parametrize("name", sorted(ALL_SAMPLERS))
    def test_counters_and_invariants(self, name):
        sampler = ALL_SAMPLERS[name](11)
        total = 0
        for size in (1, 5, 64, 300, 30):
            sampler.offer_many(range(total, total + size))
            total += size
        assert sampler.t == total
        assert sampler.offers == total
        assert sampler.size <= sampler.capacity
        assert sampler.insertions - sampler.ejections >= 0
        arrivals = sampler.arrival_indices()
        assert arrivals.size == sampler.size
        if arrivals.size:
            assert arrivals.min() >= 1
            assert arrivals.max() <= total

    @pytest.mark.parametrize("name", sorted(ALL_SAMPLERS))
    def test_accepts_any_iterable(self, name):
        exact = ALL_SAMPLERS[name](5)
        exact.offer_many(list(range(100)))
        lazy = ALL_SAMPLERS[name](5)
        lazy.offer_many(x for x in range(100))
        assert _state(exact) == _state(lazy)

    @pytest.mark.parametrize("name", sorted(ALL_SAMPLERS))
    def test_mixed_offer_and_offer_many(self, name):
        """Interleaving per-item and batched ingestion keeps counters and
        invariants whole (t is position-exact regardless of path)."""
        sampler = ALL_SAMPLERS[name](13)
        for x in range(10):
            sampler.offer(x)
        sampler.offer_many(range(10, 200))
        sampler.offer(200)
        sampler.offer_many(range(201, 230))
        assert sampler.t == 230
        assert sampler.offers == 230
        assert sampler.size <= sampler.capacity
        assert sampler.size == len(sampler.payloads())


# ---------------------------------------------------------------------- #
# Boundary batches: exact fill and the fill -> eject transition
# ---------------------------------------------------------------------- #

# Samplers that insert every pre-fill arrival deterministically, so a
# batch of exactly `capacity` items must fill the reservoir with the
# identity arrival layout. (ExponentialReservoir is *not* here: its
# F(t)-biased ejection can replace before the reservoir is full.)
DETERMINISTIC_FILL = ["unbiased", "skip_unbiased", "window_buffer"]


class TestBoundaryBatches:
    @pytest.mark.parametrize("name", DETERMINISTIC_FILL)
    def test_batch_exactly_fills_reservoir(self, name):
        sampler = ALL_SAMPLERS[name](31)
        n = sampler.capacity
        assert sampler.offer_many(range(n)) == n
        assert sampler.size == n
        assert sampler.is_full
        assert sampler.insertions == n
        assert sampler.ejections == 0
        assert sorted(sampler.arrival_indices().tolist()) == list(
            range(1, n + 1)
        )

    @pytest.mark.parametrize("name", sorted(ALL_SAMPLERS))
    def test_batch_exactly_at_capacity_never_overfills(self, name):
        sampler = ALL_SAMPLERS[name](31)
        sampler.offer_many(range(sampler.capacity))
        assert sampler.t == sampler.capacity
        assert sampler.size <= sampler.capacity

    @pytest.mark.parametrize("name", sorted(GENERIC_FALLBACK))
    def test_batch_spanning_fill_transition_matches_per_item(self, name):
        """One batch that starts below capacity and crosses into the
        eject regime must land in the exact per-item state (generic
        fallback shares the random sequence item for item)."""
        factory = GENERIC_FALLBACK[name]
        capacity = factory(0).capacity
        stream = list(range(3 * capacity))
        a = _run_per_item(factory, 41, stream)
        b = factory(41)
        b.offer_many(stream)  # single batch spans fill -> eject
        assert _state(a) == _state(b)

    @pytest.mark.parametrize("name", sorted(FAST_PATH))
    def test_batch_spanning_fill_transition_counters(self, name):
        """Fast paths pre-draw randomness in bulk, so the transition
        guarantee is on counters: stored items reconcile with
        insertions/ejections/size across the boundary."""
        sampler = ALL_SAMPLERS[name](43)
        capacity = sampler.capacity
        stored = sampler.offer_many(range(3 * capacity))
        assert sampler.t == 3 * capacity
        assert sampler.size <= capacity
        assert stored == sampler.insertions
        assert sampler.insertions - sampler.ejections == sampler.size
        arrivals = sampler.arrival_indices()
        assert arrivals.min() >= 1
        assert arrivals.max() <= 3 * capacity

    @pytest.mark.parametrize("name", sorted(FAST_PATH))
    def test_single_item_batches_advance_like_offers(self, name):
        """offer_many([x]) must advance every counter exactly as one
        offer(x) does, even on the vectorized paths."""
        sampler = ALL_SAMPLERS[name](47)
        for x in range(100):
            sampler.offer_many([x])
        assert sampler.t == 100
        assert sampler.offers == 100
        assert sampler.size <= sampler.capacity
        assert sampler.insertions - sampler.ejections == sampler.size


# ---------------------------------------------------------------------- #
# Fast paths: exact counters where deterministic
# ---------------------------------------------------------------------- #


class TestFastPathCounters:
    def test_exponential_counters_deterministic(self):
        """Algorithm 2.1 inserts every offer; ejections = insertions - size."""
        sampler = ExponentialReservoir(capacity=40, rng=3)
        stored = sampler.offer_many(range(1000))
        assert stored == 1000
        assert sampler.insertions == 1000
        assert sampler.ejections == 1000 - sampler.size
        assert sampler.is_full  # 1000 >> 40

    def test_unbiased_stored_count_matches_insertions(self):
        sampler = UnbiasedReservoir(30, rng=5)
        stored = 0
        for lo in range(0, 2000, 128):
            stored += sampler.offer_many(range(lo, lo + 128))
        assert stored == sampler.insertions
        assert sampler.insertions - sampler.ejections == sampler.size
        assert sampler.size == 30

    def test_timestamped_offer_many_at_counts(self):
        sampler = TimestampedExponentialReservoir(
            lam_time=0.1, capacity=20, rng=9
        )
        stamps = np.cumsum(np.full(500, 0.5))
        stored = sampler.offer_many_at(range(500), stamps)
        assert stored == 500
        assert sampler.t == 500
        assert sampler.now == pytest.approx(stamps[-1])
        assert sampler.insertions - sampler.ejections == sampler.size

    def test_timestamped_offer_many_at_validates(self):
        sampler = TimestampedExponentialReservoir(
            lam_time=0.1, capacity=20, rng=9
        )
        with pytest.raises(ValueError):
            sampler.offer_many_at([1, 2], [1.0])
        with pytest.raises(ValueError):
            sampler.offer_many_at([1, 2], [2.0, 1.0])
        sampler.offer_at("x", 5.0)
        with pytest.raises(ValueError):  # stamp in the past
            sampler.offer_many_at([1], [4.0])


# ---------------------------------------------------------------------- #
# Fast paths: statistical equivalence of inclusion frequencies
# ---------------------------------------------------------------------- #


def _bucketed_frequencies(factory, stream_length, trials, mode, buckets, seed0):
    """Per-bucket empirical inclusion frequency of arrival indices."""
    edges = np.linspace(0, stream_length, buckets + 1)
    counts = np.zeros(buckets)
    sizes = []
    stream = list(range(stream_length))
    for trial in range(trials):
        if mode == "item":
            sampler = _run_per_item(factory, seed0 + trial, stream)
        else:
            sampler = _run_batched(factory, seed0 + trial, stream, 97)
        arrivals = sampler.arrival_indices()
        hist, _ = np.histogram(arrivals, bins=edges)
        counts += hist
        sizes.append(sampler.size)
    return counts / trials, float(np.mean(sizes))


class TestFastPathDistribution:
    @pytest.mark.parametrize("name", sorted(FAST_PATH))
    def test_inclusion_frequencies_match_per_item(self, name):
        """Batched and per-item runs put the same expected mass in every
        arrival-index bucket (tolerance ~5 sigma of the trial noise)."""
        factory = FAST_PATH[name]
        stream_length, trials, buckets = 400, 200, 8
        item_freq, item_size = _bucketed_frequencies(
            factory, stream_length, trials, "item", buckets, seed0=10_000
        )
        batch_freq, batch_size = _bucketed_frequencies(
            factory, stream_length, trials, "batch", buckets, seed0=50_000
        )
        # Bucket counts are sums of <=50 indicator variables per trial;
        # bound each bucket's std by sqrt(mean/trials) (Poisson-like) and
        # allow 5 sigma plus a small absolute floor.
        sigma = np.sqrt(np.maximum(item_freq, 0.25) / trials)
        assert np.all(np.abs(item_freq - batch_freq) < 5.0 * sigma + 0.05), (
            f"{name}: item={item_freq}, batch={batch_freq}"
        )
        mean_size = max(item_size, 1.0)
        assert abs(item_size - batch_size) < 5.0 * np.sqrt(mean_size / trials) + 0.5

    def test_exponential_prefill_growth_matches(self):
        """Pre-fill (the F(t)-gated append regime) grows at the same rate
        on both paths: E[size] = n(1 - exp(-t/n))."""
        n, t, trials = 100, 120, 300
        expected = n * (1.0 - np.exp(-t / n))
        for mode, seed0 in (("item", 1000), ("batch", 2000)):
            sizes = []
            for trial in range(trials):
                factory = FAST_PATH["exponential"]
                sampler = ExponentialReservoir(capacity=n, rng=seed0 + trial)
                if mode == "item":
                    for x in range(t):
                        sampler.offer(x)
                else:
                    sampler.offer_many(range(t))
                sizes.append(sampler.size)
            # std of size is < sqrt(n)/2; 5 sigma over `trials` runs.
            assert abs(np.mean(sizes) - expected) < 5 * np.sqrt(n) / (
                2 * np.sqrt(trials)
            ), f"{mode}: mean={np.mean(sizes)}, expected={expected}"

    def test_exponential_recency_bias_survives_batching(self):
        """After a long batched run the resident ages are exponentially
        biased: observed mean age ~ n (for t >> n)."""
        n = 50
        ages = []
        for seed in range(60):
            sampler = ExponentialReservoir(capacity=n, rng=seed)
            sampler.offer_many(range(2000))
            ages.extend(sampler.ages().tolist())
        # Mean of Exp(1/n) truncated far from t: close to n.
        assert abs(np.mean(ages) - n) < 10


# ---------------------------------------------------------------------- #
# Mutation-log contract over batches
# ---------------------------------------------------------------------- #


def _replay(ops, sampler, mirror):
    """Apply a batch's ops to a dict mirror; None signals re-snapshot."""
    if any(op[0] == "compact" for op in ops):
        return None
    payloads = sampler.payloads()
    for kind, slot in ops:
        mirror[slot] = payloads[slot]
    return mirror


class TestBatchMutationLog:
    @pytest.mark.parametrize(
        "name", ["exponential", "unbiased", "skip_unbiased", "window_buffer"]
    )
    def test_ops_replay_reconstructs_state(self, name):
        """Folding each batch's last_ops into a mirror reproduces the
        reservoir exactly (samplers whose logs never compact)."""
        sampler = ALL_SAMPLERS[name](21)
        assert sampler.supports_mutation_log
        mirror = {}
        stream = list(range(900))
        for lo in range(0, len(stream), 111):
            sampler.offer_many(stream[lo : lo + 111])
            mirror = _replay(sampler.last_ops, sampler, mirror)
            assert mirror is not None
            assert mirror == dict(enumerate(sampler.payloads()))

    def test_timestamped_batch_log_compacts_on_decay(self):
        """Decay ejections re-index slots; the batch log must say so."""
        sampler = TimestampedExponentialReservoir(
            lam_time=0.5, capacity=10, rng=2
        )
        sampler.offer_many_at(range(10), np.arange(1.0, 11.0))
        # A long quiet gap forces decay ejections in the next batch.
        sampler.offer_many_at([10, 11], [100.0, 101.0])
        assert any(op[0] == "compact" for op in sampler.last_ops)

    def test_last_ops_cover_whole_batch_not_last_item(self):
        sampler = ExponentialReservoir(capacity=1000, rng=4)
        sampler.offer_many(range(64))
        ops = sampler.last_ops
        # Far below capacity most arrivals append; the log must list one
        # record per surviving arrival (the whole batch), not just the
        # final arrival's single op.
        assert len(ops) == sampler.size
        assert len(ops) > 1
        assert all(op[0] == "append" for op in ops)
        assert sampler.ejections == 64 - sampler.size

    @pytest.mark.parametrize("name", ["exponential", "unbiased", "timestamped"])
    def test_knn_classifier_tracks_batched_sampler(self, name):
        """The kNN mirror stays consistent when the reservoir is fed via
        offer_many between predictions (counter-based rebuild detection)."""
        rng = np.random.default_rng(8)
        sampler = ALL_SAMPLERS[name](17)
        clf = ReservoirKnnClassifier(sampler, k=1)

        def points(lo, hi):
            return [
                StreamPoint(i + 1, rng.normal(size=3), label=i % 3)
                for i in range(lo, hi)
            ]

        clf.observe(points(0, 1)[0])
        sampler.offer_many(points(1, 300))  # out-of-band batch
        probe = StreamPoint(301, np.zeros(3), label=None)
        prediction = clf.predict(probe)
        assert prediction in {0, 1, 2}
        # The mirror must now agree with a freshly rebuilt classifier.
        fresh = ReservoirKnnClassifier(sampler, k=1)
        assert fresh.predict(probe) == prediction
