"""Crash-recovery equivalence for :class:`repro.persist.DurableReservoir`.

The durability contract under test: crash at any record boundary (or at
any byte inside a record, via the fault opener), recover, resume — and
the final ``state_dict()``, *including the RNG bit-generator state*, is
byte-for-byte identical to a run that never crashed. Every fault in
:data:`repro.persist.FAULT_NAMES` is exercised against both the serial
sampler and the sharded facade.

This suite asserts exact RNG-path equivalence, so it is run with
``-p no:randomly`` in CI (random test order does not change outcomes —
each test seeds its own samplers — but the flag keeps failure replays
deterministic).
"""

import pickle
import random

import pytest

from repro.core import ExponentialReservoir
from repro.persist import (
    FAULT_NAMES,
    CrashingOpener,
    DurableReservoir,
    SimulatedCrash,
    corrupt_tail_record_crc,
    duplicate_tail_record,
    list_checkpoints,
    tear_tail_bytes,
    truncate_file,
)
from repro.persist.wal import last_record_span
from repro.shard import ShardedReservoir

CAPACITY = 8
SEED = 42
SH_CAPACITY, SH_WORKERS, SH_SEED = 12, 3, 5


def _canon(state):
    return pickle.dumps(state)


def _kill(engine):
    """Abandon the engine without a final checkpoint (process death)."""
    engine._unhook_dispatch()
    engine._close_writers()
    engine._closed = True


def _serial_sampler():
    return ExponentialReservoir(capacity=CAPACITY, rng=SEED)


def _sharded_sampler():
    return ShardedReservoir(
        capacity=SH_CAPACITY, workers=SH_WORKERS, rng=SH_SEED
    )


def _serial_ops(n=18, seed=0):
    """Deterministic mix of per-item offers and offer_many blocks.

    ``offer`` and ``offer_many`` consume different random sequences, so
    the mix is what proves the WAL preserves the exact call shape."""
    rnd = random.Random(seed)
    ops, x = [], 0
    for _ in range(n):
        if rnd.random() < 0.5:
            ops.append(("o", x))
            x += 1
        else:
            k = rnd.randrange(1, 5)
            ops.append(("b", list(range(x, x + k))))
            x += k
    return ops


def _apply(target, ops):
    for op, data in ops:
        if op == "o":
            target.offer(data)
        else:
            target.offer_many(data)


def _serial_reference(ops):
    sampler = _serial_sampler()
    _apply(sampler, ops)
    return _canon(sampler.state_dict())


def _blocks(n=12, size=7):
    return [list(range(i * size, (i + 1) * size)) for i in range(n)]


def _sharded_reference(blocks):
    facade = _sharded_sampler()
    for block in blocks:
        facade.offer_many(block)
    return _canon(facade.state_dict())


def _newest_nonempty_segment(directory, stream="main"):
    candidates = [
        p
        for p in sorted(directory.glob(f"wal-{stream}*-*.log"))
        if last_record_span(p) is not None
    ]
    assert candidates, f"no non-empty {stream} segment in {directory}"
    return candidates[-1]


class TestSerialKillSweep:
    def test_kill_at_every_record_boundary(self, tmp_path):
        """Crash after each of the N ops; recover+resume == uninterrupted."""
        ops = _serial_ops()
        want = _serial_reference(ops)
        for k in range(len(ops) + 1):
            journal = tmp_path / f"j{k:02d}"
            engine = DurableReservoir(
                _serial_sampler(),
                journal,
                wal_sync="never",
                checkpoint_every_records=5,
            )
            _apply(engine, ops[:k])
            _kill(engine)
            recovered = DurableReservoir.recover(journal, wal_sync="never")
            _apply(recovered, ops[k:])
            assert _canon(recovered.state_dict()) == want, (
                f"state diverged after crash at record boundary {k}"
            )
            recovered.close(final_checkpoint=False)

    def test_crash_mid_write_sweep(self, tmp_path):
        """FAULT crash_between_fsync (serial): kill at byte offsets inside
        the WAL stream; the torn record is truncated, never replayed, and
        its op re-fed on resume lands byte-identical."""
        ops = _serial_ops()
        want = _serial_reference(ops)
        # Clean probe run to learn the journal's total WAL byte count.
        probe_dir = tmp_path / "probe"
        probe = DurableReservoir(
            _serial_sampler(),
            probe_dir,
            wal_sync="batch",
            checkpoint_every_records=5,
            retain_checkpoints=99,
        )
        _apply(probe, ops)
        _kill(probe)
        total = sum(
            p.stat().st_size for p in probe_dir.glob("wal-main-*.log")
        )
        assert total > 0
        crashes = 0
        for budget in range(1, total, 29):
            journal = tmp_path / f"b{budget:05d}"
            opener = CrashingOpener(crash_after_bytes=budget)
            engine = DurableReservoir(
                _serial_sampler(),
                journal,
                wal_sync="batch",
                checkpoint_every_records=5,
                opener=opener,
            )
            applied = 0
            try:
                for op in ops:
                    _apply(engine, [op])
                    applied += 1
            except SimulatedCrash:
                crashes += 1
            _kill(engine)
            recovered = DurableReservoir.recover(journal, wal_sync="never")
            _apply(recovered, ops[applied:])
            assert _canon(recovered.state_dict()) == want, (
                f"state diverged after mid-write crash at byte {budget}"
            )
            recovered.close(final_checkpoint=False)
        assert crashes > 0, "sweep never triggered the injected crash"


class TestShardedKillSweep:
    def test_kill_at_every_block_boundary(self, tmp_path):
        blocks = _blocks()
        want = _sharded_reference(blocks)
        for k in range(len(blocks) + 1):
            journal = tmp_path / f"j{k:02d}"
            engine = DurableReservoir(
                _sharded_sampler(),
                journal,
                wal_sync="never",
                checkpoint_every_records=4,
            )
            for block in blocks[:k]:
                engine.offer_many(block)
            _kill(engine)
            recovered = DurableReservoir.recover(journal, wal_sync="never")
            for block in blocks[k:]:
                recovered.offer_many(block)
            assert _canon(recovered.state_dict()) == want, (
                f"sharded state diverged after crash at block boundary {k}"
            )
            recovered.close(final_checkpoint=False)

    def test_crash_mid_dispatch_recovers_journal_consistent(self, tmp_path):
        """FAULT crash_between_fsync (sharded): a kill inside one shard's
        dispatch write leaves that shard's record torn; recovery truncates
        it and lands exactly on the crashed process's in-memory worker
        states (journal-first: the torn shard never ingested its block)."""
        blocks = _blocks()
        probe_dir = tmp_path / "probe"
        probe = DurableReservoir(
            _sharded_sampler(), probe_dir, wal_sync="never"
        )
        for block in blocks:
            probe.offer_many(block)
        _kill(probe)
        total = sum(
            p.stat().st_size for p in probe_dir.glob("wal-shard*.log")
        )
        crashes = 0
        truncations = 0
        for budget in (total // 4, total // 2 + 3, (3 * total) // 4 + 7):
            journal = tmp_path / f"b{budget:05d}"
            facade = _sharded_sampler()
            engine = DurableReservoir(
                facade,
                journal,
                wal_sync="never",
                opener=CrashingOpener(crash_after_bytes=budget),
            )
            try:
                for block in blocks:
                    engine.offer_many(block)
            except SimulatedCrash:
                crashes += 1
            _kill(engine)
            want_workers = _canon(facade.worker_states())
            recovered = DurableReservoir.recover(journal, wal_sync="never")
            assert (
                _canon(recovered.sampler.worker_states()) == want_workers
            ), f"worker states diverged after mid-dispatch crash at {budget}"
            truncations += len(recovered.last_recovery.truncated_tails)
            # The engine stays usable after recovery.
            recovered.offer_many([9999])
            recovered.close(final_checkpoint=False)
        assert crashes == 3, "every budget should land mid-stream"
        # A budget that lands exactly on a record boundary tears zero
        # bytes (clean tail); across the sweep at least one must tear.
        assert truncations > 0

    def test_buffered_offers_durable_only_after_flush(self, tmp_path):
        """Per-item offers sit in the facade buffer until dispatched;
        flush() is the durability boundary the engine documents."""
        unflushed = tmp_path / "unflushed"
        engine = DurableReservoir(_sharded_sampler(), unflushed)
        for x in range(5):
            engine.offer(x)
        _kill(engine)  # buffer never dispatched -> nothing journaled
        recovered = DurableReservoir.recover(unflushed)
        assert recovered.t == 0
        recovered.close(final_checkpoint=False)

        flushed = tmp_path / "flushed"
        engine = DurableReservoir(_sharded_sampler(), flushed)
        for x in range(5):
            engine.offer(x)
        engine.flush()
        _kill(engine)
        recovered = DurableReservoir.recover(flushed)
        assert recovered.t == 5
        assert sorted(recovered.payloads()) == [0, 1, 2, 3, 4]
        recovered.close(final_checkpoint=False)


def _make_journal(tmp_path, sharded, with_mid_checkpoint=False):
    """Build a killed (crashed) journal plus its uninterrupted reference."""
    journal = tmp_path / "journal"
    if sharded:
        blocks = _blocks()
        engine = DurableReservoir(
            _sharded_sampler(), journal, wal_sync="never"
        )
        for i, block in enumerate(blocks):
            if with_mid_checkpoint and i == len(blocks) // 2:
                engine.checkpoint()
            engine.offer_many(block)
        tail = [blocks[-1]]
        reference = _sharded_reference(blocks)
        prefix_reference = _sharded_reference(blocks[:-1])
    else:
        ops = _serial_ops()
        engine = DurableReservoir(
            _serial_sampler(), journal, wal_sync="never"
        )
        if with_mid_checkpoint:
            _apply(engine, ops[: len(ops) // 2])
            engine.checkpoint()
            _apply(engine, ops[len(ops) // 2 :])
        else:
            _apply(engine, ops)
        tail = [ops[-1]]
        reference = _serial_reference(ops)
        prefix_reference = _serial_reference(ops[:-1])
    _kill(engine)
    return journal, tail, reference, prefix_reference


@pytest.mark.parametrize("sharded", [False, True], ids=["serial", "sharded"])
class TestFaultMatrix:
    """Every fault in FAULT_NAMES x {serial, sharded}; see also the
    crash_between_fsync sweeps in the kill-sweep classes above."""

    def test_torn_write_truncated_then_resumable(self, tmp_path, sharded):
        journal, tail, reference, prefix_reference = _make_journal(
            tmp_path, sharded
        )
        segment = _newest_nonempty_segment(
            journal, "shard" if sharded else "main"
        )
        tear_tail_bytes(segment, 3)
        recovered = DurableReservoir.recover(journal, wal_sync="never")
        info = recovered.last_recovery
        assert [reason for _path, reason in info.truncated_tails] == [
            "torn_payload"
        ]
        if sharded:
            # One shard lost its sub-block of the final offer_many; exact
            # prefix equality is asserted serially, idempotence here.
            recovered.close(final_checkpoint=False)
            again = DurableReservoir.recover(journal, wal_sync="never")
            assert _canon(again.state_dict()) == _canon(
                recovered.state_dict()
            )
            again.close(final_checkpoint=False)
        else:
            # Damage removed exactly the final op: state == prefix run,
            # and re-feeding that op == the uninterrupted run.
            assert _canon(recovered.state_dict()) == prefix_reference
            _apply(recovered, tail)
            assert _canon(recovered.state_dict()) == reference
            recovered.close(final_checkpoint=False)

    def test_corrupted_crc_truncated_then_resumable(self, tmp_path, sharded):
        journal, tail, reference, prefix_reference = _make_journal(
            tmp_path, sharded
        )
        segment = _newest_nonempty_segment(
            journal, "shard" if sharded else "main"
        )
        assert corrupt_tail_record_crc(segment)
        recovered = DurableReservoir.recover(journal, wal_sync="never")
        info = recovered.last_recovery
        assert [reason for _path, reason in info.truncated_tails] == [
            "bad_crc"
        ]
        if not sharded:
            assert _canon(recovered.state_dict()) == prefix_reference
            _apply(recovered, tail)
            assert _canon(recovered.state_dict()) == reference
        recovered.close(final_checkpoint=False)

    def test_duplicate_tail_record_dropped(self, tmp_path, sharded):
        journal, _tail, reference, _prefix = _make_journal(tmp_path, sharded)
        segment = _newest_nonempty_segment(
            journal, "shard" if sharded else "main"
        )
        assert duplicate_tail_record(segment)
        recovered = DurableReservoir.recover(journal, wal_sync="never")
        assert recovered.last_recovery.duplicates_dropped == 1
        assert not recovered.last_recovery.truncated_tails
        assert _canon(recovered.state_dict()) == reference
        recovered.close(final_checkpoint=False)

    def test_truncated_checkpoint_falls_back(self, tmp_path, sharded):
        journal, _tail, reference, _prefix = _make_journal(
            tmp_path, sharded, with_mid_checkpoint=True
        )
        checkpoints = list_checkpoints(journal)
        assert len(checkpoints) >= 2
        newest_seq, newest_path = checkpoints[-1]
        truncate_file(newest_path, newest_path.stat().st_size - 4)
        recovered = DurableReservoir.recover(journal, wal_sync="never")
        # Fell back to an older checkpoint, then the retained WAL
        # generations replayed the gap to full byte-identity.
        assert recovered.last_recovery.checkpoint_seq < newest_seq
        assert recovered.last_recovery.records_replayed > 0
        assert _canon(recovered.state_dict()) == reference
        recovered.close(final_checkpoint=False)


class TestEngineLifecycle:
    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to recover"):
            DurableReservoir.recover(tmp_path / "nope")

    def test_fresh_engine_refuses_existing_journal(self, tmp_path):
        journal = tmp_path / "journal"
        DurableReservoir(_serial_sampler(), journal).close()
        with pytest.raises(ValueError, match="already holds a journal"):
            DurableReservoir(_serial_sampler(), journal)

    def test_closed_engine_rejects_offers(self, tmp_path):
        engine = DurableReservoir(_serial_sampler(), tmp_path / "j")
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.offer(1)

    def test_unknown_checkpoint_schema_rejected(self, tmp_path):
        from repro.persist import write_checkpoint

        journal = tmp_path / "journal"
        engine = DurableReservoir(_serial_sampler(), journal)
        engine.offer(1)
        engine.close()
        newest_seq = list_checkpoints(journal)[-1][0]
        payload = {"schema": 99, "kind": "serial"}
        write_checkpoint(journal, newest_seq + 1, payload)
        with pytest.raises(ValueError, match="schema version 99"):
            DurableReservoir.recover(journal)

    def test_context_manager_crash_path_skips_final_checkpoint(
        self, tmp_path
    ):
        journal = tmp_path / "journal"
        with pytest.raises(RuntimeError, match="boom"):
            with DurableReservoir(
                _serial_sampler(), journal, wal_sync="never"
            ) as engine:
                engine.offer_many([1, 2, 3])
                raise RuntimeError("boom")
        recovered = DurableReservoir.recover(journal)
        # The block is in the WAL even though no checkpoint captured it.
        assert recovered.last_recovery.records_replayed == 1
        assert recovered.t == 3
        recovered.close(final_checkpoint=False)

    def test_clean_close_reopens_with_zero_replay(self, tmp_path):
        journal = tmp_path / "journal"
        ops = _serial_ops()
        engine = DurableReservoir(_serial_sampler(), journal)
        _apply(engine, ops)
        engine.close()  # final checkpoint
        recovered = DurableReservoir.recover(journal)
        assert recovered.last_recovery.records_replayed == 0
        assert _canon(recovered.state_dict()) == _serial_reference(ops)
        recovered.close(final_checkpoint=False)

    def test_compaction_bounds_journal_files(self, tmp_path):
        journal = tmp_path / "journal"
        engine = DurableReservoir(
            _serial_sampler(),
            journal,
            wal_sync="never",
            checkpoint_every_records=2,
            retain_checkpoints=2,
        )
        _apply(engine, _serial_ops(n=30))
        engine.close()
        assert len(list_checkpoints(journal)) <= 2
        generations = sorted(
            int(p.name.split("-")[-1].split(".")[0])
            for p in journal.glob("wal-main-*.log")
        )
        # Only generations reachable from a retained checkpoint survive.
        assert len(generations) <= engine._generation
        oldest_needed = engine._oldest_retained_generation()
        assert generations[0] >= oldest_needed


def test_fault_names_all_covered():
    """Keep FAULT_NAMES and this suite in sync: each fault name appears
    in at least one test docstring or name above."""
    source = open(__file__).read()
    mapping = {
        "torn_write": "torn_write",
        "truncated_checkpoint": "truncated_checkpoint",
        "corrupted_crc": "corrupted_crc",
        "duplicate_tail_record": "duplicate_tail_record",
        "crash_between_fsync": "crash_between_fsync",
    }
    for fault in FAULT_NAMES:
        assert mapping[fault] in source
