"""Unit tests for the WAL framing/scan layer and checkpoint files.

These pin down the storage primitives in isolation; the end-to-end
crash/recover behaviour of the engine built on them lives in
``tests/test_persist_recovery.py``.
"""

import os
import pickle

import pytest

from repro.persist import (
    CrashingOpener,
    SimulatedCrash,
    WalWriter,
    corrupt_tail_record_crc,
    duplicate_tail_record,
    list_checkpoints,
    load_latest_checkpoint,
    read_checkpoint,
    scan_wal,
    tear_tail_bytes,
    truncate_file,
    truncate_to,
    write_checkpoint,
)
from repro.persist.checkpoint import checkpoint_path
from repro.persist.wal import HEADER, encode_record, last_record_span


def _write_records(path, objects, sync="never"):
    with WalWriter(path, sync=sync) as writer:
        for seq, obj in enumerate(objects, start=1):
            writer.append(seq, obj)


class TestWalFraming:
    def test_roundtrip_records(self, tmp_path):
        wal = tmp_path / "a.log"
        objects = [("o", 1), ("b", [2, 3, 4]), {"k": "v"}, None]
        _write_records(wal, objects)
        result = scan_wal(wal)
        assert result.damage is None
        assert result.valid_bytes == wal.stat().st_size
        assert [obj for _seq, obj in result.records] == objects
        assert [seq for seq, _obj in result.records] == [1, 2, 3, 4]

    def test_min_seq_skips_checkpointed_prefix(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a", "b", "c", "d"])
        result = scan_wal(wal, min_seq=2)
        assert [obj for _seq, obj in result.records] == ["c", "d"]
        # Skipped records still count as clean bytes.
        assert result.valid_bytes == wal.stat().st_size

    def test_empty_and_missing_files_are_clean(self, tmp_path):
        missing = scan_wal(tmp_path / "nope.log")
        assert missing.records == [] and missing.damage is None
        empty = tmp_path / "empty.log"
        empty.touch()
        result = scan_wal(empty)
        assert result.records == [] and result.damage is None

    def test_append_resumes_existing_segment(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a"])
        with WalWriter(wal) as writer:
            assert writer.bytes_written == wal.stat().st_size
            writer.append(2, "b")
        assert [o for _s, o in scan_wal(wal).records] == ["a", "b"]

    def test_bad_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sync policy"):
            WalWriter(tmp_path / "a.log", sync="sometimes")


class TestWalDamage:
    def test_torn_header_detected_and_truncated(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a", "b"])
        clean = wal.stat().st_size
        with open(wal, "ab") as fh:
            fh.write(encode_record(3, "c")[: HEADER.size - 2])
        result = scan_wal(wal)
        assert result.damage.reason == "torn_header"
        assert result.valid_bytes == clean
        assert truncate_to(wal, result.valid_bytes)
        assert scan_wal(wal).damage is None

    def test_torn_payload_detected(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a", "b"])
        tear_tail_bytes(wal, 3)
        result = scan_wal(wal)
        assert result.damage.reason == "torn_payload"
        assert [o for _s, o in result.records] == ["a"]

    def test_corrupt_crc_detected(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a", "b"])
        assert corrupt_tail_record_crc(wal)
        result = scan_wal(wal)
        assert result.damage.reason == "bad_crc"
        assert [o for _s, o in result.records] == ["a"]

    def test_garbage_magic_detected(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a"])
        with open(wal, "ab") as fh:
            fh.write(b"\x00" * 64)
        result = scan_wal(wal)
        assert result.damage.reason == "bad_magic"
        assert [o for _s, o in result.records] == ["a"]

    def test_duplicate_tail_dropped(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["a", "b"])
        assert duplicate_tail_record(wal)
        result = scan_wal(wal)
        assert result.damage is None
        assert [o for _s, o in result.records] == ["a", "b"]
        assert result.duplicates == [2]

    def test_last_record_span_matches_tail(self, tmp_path):
        wal = tmp_path / "a.log"
        _write_records(wal, ["aa", "bbbb"])
        offset, size = last_record_span(wal)
        assert offset + size == wal.stat().st_size
        frame = wal.read_bytes()[offset : offset + size]
        assert pickle.loads(frame[HEADER.size :]) == "bbbb"


class TestCrashingOpener:
    def test_crash_mid_write_leaves_torn_prefix(self, tmp_path):
        wal = tmp_path / "a.log"
        frame_size = len(encode_record(1, "payload"))
        opener = CrashingOpener(crash_after_bytes=frame_size + 5)
        writer = WalWriter(wal, sync="never", opener=opener)
        writer.append(1, "payload")
        with pytest.raises(SimulatedCrash):
            writer.append(2, "payload")
        assert wal.stat().st_size == frame_size + 5
        result = scan_wal(wal)
        assert result.damage is not None
        assert [o for _s, o in result.records] == ["payload"]

    def test_none_budget_passes_through(self, tmp_path):
        wal = tmp_path / "a.log"
        with WalWriter(wal, opener=CrashingOpener()) as writer:
            writer.append(1, "x")
        assert scan_wal(wal).damage is None


class TestCheckpoints:
    def test_roundtrip_and_ordering(self, tmp_path):
        write_checkpoint(tmp_path, 5, {"v": 5})
        write_checkpoint(tmp_path, 20, {"v": 20})
        assert [seq for seq, _ in list_checkpoints(tmp_path)] == [5, 20]
        seq, payload = load_latest_checkpoint(tmp_path)
        assert (seq, payload) == (20, {"v": 20})
        assert read_checkpoint(checkpoint_path(tmp_path, 5)) == {"v": 5}

    def test_retention_prunes_oldest(self, tmp_path):
        for seq in range(6):
            write_checkpoint(tmp_path, seq, seq, retain=3)
        assert [seq for seq, _ in list_checkpoints(tmp_path)] == [3, 4, 5]

    def test_truncated_newest_falls_back(self, tmp_path):
        write_checkpoint(tmp_path, 1, "old")
        newest = write_checkpoint(tmp_path, 2, "new")
        truncate_file(newest, newest.stat().st_size - 4)
        with pytest.raises(ValueError):
            read_checkpoint(newest)
        assert load_latest_checkpoint(tmp_path) == (1, "old")

    def test_corrupt_payload_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, {"k": 1})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="CRC"):
            read_checkpoint(path)
        assert load_latest_checkpoint(tmp_path) is None

    def test_no_tmp_litter_after_write(self, tmp_path):
        write_checkpoint(tmp_path, 1, "x")
        assert not list(tmp_path.glob("*.tmp"))

    def test_all_damaged_returns_none(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, "x")
        truncate_file(path, 2)
        assert load_latest_checkpoint(tmp_path) is None

    def test_unknown_version_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, "x")
        data = bytearray(path.read_bytes())
        data[4] = 99  # version byte follows the 4-byte magic
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version 99"):
            read_checkpoint(path)


def test_writer_sync_policies_all_functional(tmp_path):
    for sync in ("always", "batch", "never"):
        wal = tmp_path / f"{sync}.log"
        with WalWriter(wal, sync=sync) as writer:
            writer.append(1, sync)
            writer.sync()
        assert [o for _s, o in scan_wal(wal).records] == [sync]
        assert os.path.getsize(wal) > 0
