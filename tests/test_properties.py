"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bias import ExponentialBias, PolynomialBias
from repro.core.biased import ExponentialReservoir
from repro.core.sliding_window import ChainSampler, WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.theory import (
    expected_fill_trajectory,
    expected_points_to_fill,
    expected_points_to_fraction,
)
from repro.core.unbiased import UnbiasedReservoir
from repro.core.variable import VariableReservoir
from repro.queries.spec import count_query
from repro.utils.running_stats import RunningStats

lambdas = st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
alphas = st.floats(min_value=0.05, max_value=4.0, allow_nan=False)
times = st.integers(min_value=1, max_value=2000)


class TestBiasFunctionProperties:
    @given(lam=lambdas, t=times)
    def test_exponential_weights_in_unit_interval(self, lam, t):
        bias = ExponentialBias(lam)
        w = bias.weights(np.arange(1, t + 1), t)
        # >= 0 rather than > 0: exp(-lam * age) underflows to 0.0 for very
        # old points, which is acceptable (the true value is positive but
        # below double precision).
        assert np.all(w >= 0.0)
        assert np.all(w <= 1.0)
        assert w[-1] == pytest.approx(1.0)

    @given(lam=lambdas, t=times)
    def test_exponential_monotone_in_r(self, lam, t):
        bias = ExponentialBias(lam)
        w = bias.weights(np.arange(1, t + 1), t)
        assert np.all(np.diff(w) >= 0.0)

    @given(lam=lambdas, t=st.integers(min_value=2, max_value=500))
    def test_requirement_between_one_and_t(self, lam, t):
        bias = ExponentialBias(lam)
        req = bias.max_reservoir_requirement(t)
        assert 1.0 <= req <= t + 1e-9

    @given(lam=lambdas, t=times)
    def test_closed_form_requirement_matches_generic(self, lam, t):
        bias = ExponentialBias(lam)
        indices = np.arange(1, t + 1)
        generic = float(bias.weights(indices, t).sum()) / bias.weight(t, t)
        assert bias.max_reservoir_requirement(t) == pytest.approx(
            generic, rel=1e-9
        )

    @given(alpha=alphas, t=times)
    def test_polynomial_requirement_monotone_in_t(self, alpha, t):
        bias = PolynomialBias(alpha)
        assert bias.max_reservoir_requirement(
            t + 1
        ) >= bias.max_reservoir_requirement(t)

    @given(lam=lambdas, t=st.integers(min_value=2, max_value=300))
    def test_incremental_sum_consistency(self, lam, t):
        bias = ExponentialBias(lam)
        s = 0.0
        for u in range(1, t + 1):
            s = bias.incremental_weight_sum(s, u)
        direct = float(bias.weights(np.arange(1, t + 1), t).sum())
        assert s == pytest.approx(direct, rel=1e-9)


class TestReservoirInvariants:
    @given(
        capacity=st.integers(min_value=1, max_value=50),
        n_points=st.integers(min_value=0, max_value=500),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbiased_invariants(self, capacity, n_points, seed):
        res = UnbiasedReservoir(capacity, rng=seed)
        res.extend(range(n_points))
        assert res.size == min(capacity, n_points)
        assert res.size == res.insertions - res.ejections
        arrivals = res.arrival_indices()
        assert len(set(arrivals.tolist())) == len(arrivals)
        if n_points:
            assert arrivals.max() <= n_points

    @given(
        capacity=st.integers(min_value=1, max_value=50),
        n_points=st.integers(min_value=0, max_value=500),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_biased_invariants(self, capacity, n_points, seed):
        res = ExponentialReservoir(capacity=capacity, rng=seed)
        inserted = res.extend(range(n_points))
        assert inserted == n_points  # deterministic insertion
        assert res.size <= capacity
        if n_points:
            # The newest point is always resident (it was just inserted).
            assert n_points in res.arrival_indices()

    @given(
        capacity=st.integers(min_value=2, max_value=40),
        p_in=st.floats(min_value=0.05, max_value=1.0),
        n_points=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_space_constrained_invariants(self, capacity, p_in, n_points, seed):
        res = SpaceConstrainedReservoir(
            capacity=capacity, p_in=p_in, rng=seed
        )
        res.extend(range(n_points))
        assert res.size <= capacity
        assert res.size == res.insertions - res.ejections
        assert res.lam == pytest.approx(p_in / capacity)

    @given(
        capacity=st.integers(min_value=2, max_value=30),
        n_points=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_variable_invariants(self, capacity, n_points, seed):
        lam = 1.0 / (capacity * 10)  # always space-constrained
        res = VariableReservoir(lam=lam, capacity=capacity, rng=seed)
        res.extend(range(n_points))
        assert res.size <= capacity
        assert res.target_p_in - 1e-12 <= res.p_in <= 1.0

    @given(
        window=st.integers(min_value=1, max_value=60),
        n_points=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_buffer_holds_exact_suffix(self, window, n_points):
        buf = WindowBuffer(window, rng=0)
        buf.extend(range(n_points))
        expected = list(range(max(0, n_points - window), n_points))
        assert sorted(buf.payloads()) == expected

    @given(
        slots=st.integers(min_value=1, max_value=10),
        window=st.integers(min_value=1, max_value=50),
        n_points=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_chain_sampler_within_window(self, slots, window, n_points, seed):
        cs = ChainSampler(slots, window=window, rng=seed)
        cs.extend(range(n_points))
        for entry in cs.entries():
            assert n_points - window < entry.arrival <= n_points


class TestQueryProperties:
    @given(
        horizon=st.integers(min_value=1, max_value=200),
        t=st.integers(min_value=1, max_value=200),
    )
    def test_horizon_coefficients_count(self, horizon, t):
        q = count_query(horizon)
        c = q.coefficients(np.arange(1, t + 1), t)
        assert int(c.sum()) == min(horizon, t)

    @given(
        t=st.integers(min_value=1, max_value=100),
        horizon=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
    )
    def test_coefficients_are_binary(self, t, horizon):
        q = count_query(horizon)
        c = q.coefficients(np.arange(1, t + 1), t)
        assert set(np.unique(c).tolist()) <= {0.0, 1.0}


class TestTheoryProperties:
    @given(
        n=st.integers(min_value=1, max_value=1000),
        p_in=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_fill_time_decreasing_in_p_in(self, n, p_in):
        assume(p_in < 1.0)
        faster = expected_points_to_fill(n, 1.0)
        slower = expected_points_to_fill(n, p_in)
        assert slower >= faster

    @given(
        n=st.integers(min_value=2, max_value=500),
        f1=st.floats(min_value=0.0, max_value=1.0),
        f2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_fraction_time_monotone(self, n, f1, f2):
        lo, hi = min(f1, f2), max(f1, f2)
        assert expected_points_to_fraction(
            n, lo
        ) <= expected_points_to_fraction(n, hi)

    @given(
        n=st.integers(min_value=1, max_value=500),
        p_in=st.floats(min_value=0.01, max_value=1.0),
        t=st.integers(min_value=0, max_value=10_000),
    )
    def test_trajectory_bounded_by_capacity(self, n, p_in, t):
        val = float(expected_fill_trajectory(n, p_in, t))
        assert 0.0 <= val < n + 1e-9


class TestRunningStatsProperties:
    @given(
        data=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=0,
            max_size=80,
        ),
        split=st.integers(min_value=0, max_value=80),
    )
    def test_merge_associativity(self, data, split):
        split = min(split, len(data))
        merged = RunningStats()
        for x in data[:split]:
            merged.update(x)
        right = RunningStats()
        for x in data[split:]:
            right.update(x)
        merged.merge(right)
        direct = RunningStats()
        for x in data:
            direct.update(x)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, abs=1e-6)
        assert merged.variance == pytest.approx(
            direct.variance, rel=1e-6, abs=1e-6
        )

    @given(
        data=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_matches_numpy(self, data):
        s = RunningStats()
        for x in data:
            s.update(x)
        assert s.mean == pytest.approx(float(np.mean(data)), abs=1e-9)
        assert s.variance == pytest.approx(
            float(np.var(data, ddof=1)), rel=1e-6, abs=1e-9
        )
