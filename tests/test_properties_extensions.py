"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_exponential_reservoirs
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.timestamped import TimestampedExponentialReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.queries.estimator import QueryEstimator
from repro.queries.groupby import GroupByEstimator
from repro.queries.histogram import estimate_histogram, estimate_quantiles
from repro.queries.spec import count_query, sum_query
from repro.streams.point import StreamPoint


def labeled_points(seed, n, n_groups, dims=2):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, dims))
    labels = rng.integers(0, n_groups, size=n)
    return [
        StreamPoint(i + 1, values[i], int(labels[i])) for i in range(n)
    ]


class TestGroupByConsistency:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=10, max_value=300),
        n_groups=st.integers(min_value=1, max_value=5),
        capacity=st.integers(min_value=5, max_value=60),
        horizon=st.one_of(st.none(), st.integers(min_value=1, max_value=300)),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_counts_sum_to_global_estimate(
        self, seed, n, n_groups, capacity, horizon
    ):
        """Partition invariant: per-group HT counts must sum *exactly* to
        the global HT count (they partition the same weighted residents)."""
        res = UnbiasedReservoir(capacity, rng=seed)
        for p in labeled_points(seed, n, n_groups):
            res.offer(p)
        query = count_query(horizon)
        global_est = QueryEstimator(res).estimate(query).estimate[0]
        groups = GroupByEstimator(res).estimate(query)
        group_total = sum(float(g.estimate[0]) for g in groups.values())
        assert group_total == pytest.approx(global_est, rel=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=20, max_value=200),
        n_groups=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_group_sums_partition_global_sum(self, seed, n, n_groups):
        res = UnbiasedReservoir(40, rng=seed)
        for p in labeled_points(seed, n, n_groups):
            res.offer(p)
        query = sum_query(None, [0, 1])
        global_est = QueryEstimator(res).estimate(query).estimate
        groups = GroupByEstimator(res).estimate(query)
        total = np.zeros(2)
        for g in groups.values():
            total += g.estimate
        np.testing.assert_allclose(total, global_est, rtol=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=10, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_weight_shares_partition_unity(self, seed, n):
        res = UnbiasedReservoir(30, rng=seed)
        for p in labeled_points(seed, n, 3):
            res.offer(p)
        groups = GroupByEstimator(res).estimate(count_query())
        if groups:
            assert sum(
                g.weight_share for g in groups.values()
            ) == pytest.approx(1.0)


class TestMergeProperties:
    @given(
        seed=st.integers(min_value=0, max_value=30),
        n_points=st.integers(min_value=0, max_value=2000),
        cap_a=st.integers(min_value=10, max_value=100),
        cap_b=st.integers(min_value=10, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_invariants(self, seed, n_points, cap_a, cap_b):
        lam = 1e-3
        a = SpaceConstrainedReservoir(lam=lam, capacity=cap_a, rng=seed)
        b = SpaceConstrainedReservoir(lam=lam, capacity=cap_b, rng=seed + 1)
        a.extend(range(n_points))
        b.extend(range(n_points))
        merged = merge_exponential_reservoirs(a, b, rng=seed + 2)
        assert merged.capacity == min(cap_a, cap_b)
        assert merged.size <= merged.capacity
        assert merged.t == max(a.t, b.t)
        arrivals = merged.arrival_indices()
        if arrivals.size:
            assert arrivals.min() >= 1
            assert arrivals.max() <= merged.t
        assert merged.lam == pytest.approx(lam)


class TestTimestampedProperties:
    @given(
        seed=st.integers(min_value=0, max_value=30),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=0,
            max_size=200,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_under_arbitrary_gaps(self, seed, gaps):
        res = TimestampedExponentialReservoir(0.05, 20, rng=seed)
        now = 0.0
        for i, gap in enumerate(gaps):
            now += gap
            res.offer_at(i, now)
        assert res.size <= 20
        assert res.size == len(res.timestamps())
        assert (res.time_ages() >= -1e-9).all()
        assert res.now == pytest.approx(now if gaps else 0.0)


class TestHistogramProperties:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=0, max_value=500),
        bins=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_densities_are_distribution(self, seed, n, bins):
        rng = np.random.default_rng(seed)
        res = UnbiasedReservoir(50, rng=seed)
        for i in range(n):
            res.offer(StreamPoint(i + 1, rng.normal(size=1)))
        edges = np.linspace(-3, 3, bins + 1)
        est = estimate_histogram(res, 0, edges)
        assert np.all(est.densities >= 0.0)
        total = est.densities.sum()
        assert total == pytest.approx(1.0) or (total == 0.0 and n == 0)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=5, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_quantiles_monotone_and_within_range(self, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n, 1))
        res = UnbiasedReservoir(40, rng=seed)
        for i in range(n):
            res.offer(StreamPoint(i + 1, values[i]))
        qs = np.linspace(0, 1, 11)
        est = estimate_quantiles(res, 0, qs)
        assert np.all(np.diff(est) >= -1e-12)
        assert est.min() >= values.min() - 1e-9
        assert est.max() <= values.max() + 1e-9


class TestKnnMirrorProperty:
    @given(
        seed=st.integers(min_value=0, max_value=60),
        n_points=st.integers(min_value=1, max_value=400),
        capacity=st.integers(min_value=1, max_value=30),
        sampler_kind=st.sampled_from(["unbiased", "biased", "variable"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_mirror_matches_reservoir_after_any_sequence(
        self, seed, n_points, capacity, sampler_kind
    ):
        """After any offer sequence, the classifier's incremental mirror
        must agree exactly with a fresh snapshot of the reservoir."""
        from repro.core.biased import ExponentialReservoir
        from repro.core.variable import VariableReservoir
        from repro.mining.knn import ReservoirKnnClassifier

        if sampler_kind == "unbiased":
            sampler = UnbiasedReservoir(capacity, rng=seed)
        elif sampler_kind == "biased":
            sampler = ExponentialReservoir(capacity=capacity, rng=seed)
        else:
            sampler = VariableReservoir(
                lam=1.0 / (capacity * 5), capacity=capacity, rng=seed
            )
        clf = ReservoirKnnClassifier(sampler)
        rng = np.random.default_rng(seed + 1000)
        for i in range(n_points):
            clf.observe(
                StreamPoint(i + 1, rng.normal(size=2), int(i % 3))
            )
        # Mirror rows must equal the reservoir payloads, slot for slot.
        payloads = sampler.payloads()
        assert clf._rows == len(payloads)
        for slot, point in enumerate(payloads):
            np.testing.assert_array_equal(
                clf._matrix[slot], point.values
            )
            assert clf._labels[slot] == point.label
