"""Seeded property/fuzz tests for reservoir merging and window sampling.

Hand-rolled fuzz loops (seeded ``default_rng`` driving random
configurations) rather than Hypothesis: every failure reproduces from the
printed configuration alone, and the fast tier stays deterministic.

Covered properties:

* ``merge_exponential_reservoirs`` — capacity bound, valid arrival
  indices, preserved sampler metadata, and (statistically) preservation
  of the combined inclusion mass: thinning each input by ``c*/c_i``
  makes the expected merged size ``sum_i (c*/c_i) * |R_i|``.
* ``WindowBuffer`` / ``ChainSampler`` — the sample never leaves the
  window, never exceeds capacity, and chain slots are never left empty.
"""

import copy

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.merge import (
    merge_exponential_reservoirs,
    proportionality_constant,
)
from repro.core.sliding_window import ChainSampler, WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.verify.stats import normal_sf

FUZZ_ROUNDS = 25


def _random_biased_pair(rng):
    """Two exponentially biased reservoirs with a common lambda, random
    designs and stream lengths.

    Both samplers derive their *effective* rate from the design
    (Observation 2.1: ``1/n`` for Algorithm 2.1, ``p_in/n`` for
    Algorithm 3.1), so a shared rate means anchoring on a base capacity:
    ``lam = 1/cap_base`` and space-constrained inputs get
    ``p_in = cap/cap_base``.
    """
    cap_base = int(rng.integers(10, 40))
    lam = 1.0 / cap_base
    samplers = []
    for _ in range(2):
        if rng.random() < 0.5:
            sampler = ExponentialReservoir(
                capacity=cap_base, rng=int(rng.integers(1 << 31))
            )
        else:
            cap = int(rng.integers(5, cap_base + 1))
            sampler = SpaceConstrainedReservoir(
                lam=lam, capacity=cap, rng=int(rng.integers(1 << 31))
            )
        sampler.extend(range(int(rng.integers(1, 2000))))
        samplers.append(sampler)
    return samplers[0], samplers[1]


class TestMergeFuzz:
    def test_merged_state_invariants(self):
        rng = np.random.default_rng(2006)
        for round_no in range(FUZZ_ROUNDS):
            a, b = _random_biased_pair(rng)
            merged = merge_exponential_reservoirs(
                a, b, rng=int(rng.integers(1 << 31))
            )
            context = f"round {round_no}: caps=({a.capacity},{b.capacity})"
            assert merged.capacity == min(a.capacity, b.capacity), context
            assert merged.size <= merged.capacity, context
            assert merged.t == max(a.t, b.t), context
            assert merged.p_in == pytest.approx(
                min(1.0, float(a.lam) * merged.capacity)
            ), context
            arrivals = merged.arrival_indices()
            assert arrivals.size == merged.size, context
            if arrivals.size:
                assert arrivals.min() >= 1, context
                assert arrivals.max() <= merged.t, context
            # Survivors come from the inputs, nothing is invented.
            pool = set(a.payloads()) | set(b.payloads())
            assert set(merged.payloads()) <= pool, context

    def test_merge_is_deterministic_under_seed(self):
        rng = np.random.default_rng(7)
        a, b = _random_biased_pair(rng)
        m1 = merge_exponential_reservoirs(a, b, rng=99)
        m2 = merge_exponential_reservoirs(a, b, rng=99)
        assert m1.payloads() == m2.payloads()
        assert m1.arrival_indices().tolist() == m2.arrival_indices().tolist()

    def test_merge_preserves_combined_inclusion_mass(self):
        """E[|merged|] = sum_i (c*/c_i) * |R_i|: uniform thinning rescales
        every inclusion probability by exactly c*/c_i, so the total
        inclusion mass carried by each input shrinks by that factor and
        no more (Theorem 3.3's proportionality argument)."""
        rng = np.random.default_rng(11)
        # Partially filled inputs: with both inputs full the union always
        # overflows the merged capacity and the conditionally uniform
        # down-sample (not the thinning) fixes the size, hiding the mass
        # property this test pins down.
        a = ExponentialReservoir(capacity=50, rng=1)  # lam = 1/50 = 0.02
        a.extend(range(12))
        b = SpaceConstrainedReservoir(
            lam=0.02, capacity=25, rng=2  # p_in = 25 * 0.02 = 0.5
        )
        b.extend(range(12))
        capacity = 20  # large enough that the overflow clamp never fires
        target_c = min(1.0, 0.02 * capacity)
        keep = [
            target_c / proportionality_constant(s) for s in (a, b)
        ]
        expected = keep[0] * a.size + keep[1] * b.size
        variance = keep[0] * (1 - keep[0]) * a.size + keep[1] * (
            1 - keep[1]
        ) * b.size

        replicates = 400
        sizes = [
            merge_exponential_reservoirs(
                copy.deepcopy(a),
                copy.deepcopy(b),
                capacity=capacity,
                rng=int(rng.integers(1 << 31)),
            ).size
            for _ in range(replicates)
        ]
        assert max(sizes) <= capacity
        z = (np.mean(sizes) - expected) / np.sqrt(variance / replicates)
        p_value = 2.0 * normal_sf(abs(float(z)))
        assert p_value > 1e-5, (
            f"mean merged size {np.mean(sizes):.2f} vs expected "
            f"{expected:.2f} (z={z:.2f})"
        )

    def test_merge_rejects_bad_inputs(self):
        a = ExponentialReservoir(capacity=10, rng=0)  # lam = 0.1
        b = ExponentialReservoir(capacity=20, rng=0)  # lam = 0.05
        a.extend(range(50))
        b.extend(range(50))
        with pytest.raises(ValueError, match="bias rates differ"):
            merge_exponential_reservoirs(a, b)
        with pytest.raises(TypeError, match="exponentially biased"):
            merge_exponential_reservoirs(UnbiasedReservoir(10, rng=0), a)
        same = ExponentialReservoir(capacity=10, rng=1)
        same.extend(range(50))
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            merge_exponential_reservoirs(a, same, capacity=0)

    def test_merge_refuses_to_upsample(self):
        """Raising the merged capacity above what either input's
        inclusion constant supports must fail: information the inputs
        never kept cannot be resampled into existence."""
        a = SpaceConstrainedReservoir(lam=0.02, capacity=20, rng=0)
        b = SpaceConstrainedReservoir(lam=0.02, capacity=20, rng=1)
        a.extend(range(500))
        b.extend(range(500))
        with pytest.raises(ValueError, match="cannot up-sample"):
            merge_exponential_reservoirs(a, b, capacity=30)


class TestWindowBufferFuzz:
    def test_buffer_is_exactly_the_window(self):
        rng = np.random.default_rng(3)
        for round_no in range(FUZZ_ROUNDS):
            capacity = int(rng.integers(1, 30))
            length = int(rng.integers(1, 400))
            buf = WindowBuffer(capacity, rng=0)
            stream = list(range(length))
            buf.extend(stream)
            context = f"round {round_no}: W={capacity}, t={length}"
            assert buf.size == min(capacity, length), context
            assert sorted(buf.payloads()) == stream[-capacity:], context
            arrivals = buf.arrival_indices()
            assert arrivals.min() >= max(1, length - capacity + 1), context
            assert arrivals.max() == length, context

    def test_inclusion_probability_is_the_indicator(self):
        buf = WindowBuffer(5, rng=0)
        buf.extend(range(12))
        assert buf.inclusion_probability(12) == 1.0
        assert buf.inclusion_probability(8) == 1.0
        assert buf.inclusion_probability(7) == 0.0
        with pytest.raises(ValueError):
            buf.inclusion_probability(0)


class TestChainSamplerFuzz:
    def test_samples_stay_inside_the_window(self):
        rng = np.random.default_rng(4)
        for round_no in range(FUZZ_ROUNDS):
            k = int(rng.integers(1, 8))
            window = int(rng.integers(1, 60))
            length = int(rng.integers(1, 500))
            sampler = ChainSampler(
                k, window=window, rng=int(rng.integers(1 << 31))
            )
            for item in range(length):
                sampler.offer(item)
                if sampler.t % 37 == 0:
                    arrivals = sampler.arrival_indices()
                    assert (arrivals > sampler.t - window).all(), (
                        f"round {round_no}: stale sample at t={sampler.t}"
                    )
            context = f"round {round_no}: k={k}, W={window}, t={length}"
            # Chains are never left empty: the pre-drawn successor always
            # lands inside the window before the head expires.
            assert sampler.size == k, context
            assert len(sampler.payloads()) == k, context
            arrivals = sampler.arrival_indices()
            assert (arrivals >= 1).all(), context
            assert (arrivals <= sampler.t).all(), context
            assert (arrivals > sampler.t - window).all(), context
            assert sampler.memory_footprint() >= k, context

    def test_chain_memory_stays_bounded(self):
        """Expected chain length is O(1); assert a generous ceiling so a
        regression to unbounded growth is caught without flakiness."""
        sampler = ChainSampler(8, window=50, rng=12)
        sampler.extend(range(5000))
        assert sampler.memory_footprint() <= 8 * 50
