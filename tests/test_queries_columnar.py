"""Columnar query engine: equivalence with the per-point reference path.

The engine's contract is strict: the cached struct-of-arrays resident
view plus the vectorized ``values_batch`` kernels must reproduce the
per-point path *bit for bit* — every builder query, every sampler
family. These tests pin that contract, plus the cache's invalidation
behaviour and the support-index regression paths.
"""

import numpy as np
import pytest

from repro.core import (
    ChainSampler,
    ExponentialReservoir,
    SkipUnbiasedReservoir,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    VariableReservoir,
    WindowBuffer,
)
from repro.queries import (
    GroupByEstimator,
    QueryEstimator,
    estimate_histogram,
    estimate_quantiles,
)
from repro.queries.spec import (
    LinearQuery,
    average_query,
    class_count_query,
    class_distribution_query,
    count_query,
    range_count_query,
    range_selectivity_query,
    sum_query,
)
from repro.shard import ShardedReservoir
from repro.streams.point import StreamPoint
from tests.conftest import make_points

DIMS = 4
N_CLASSES = 3


def make_stream(n, seed, labeled=True):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, DIMS))
    labels = rng.integers(0, N_CLASSES, size=n) if labeled else None
    return make_points(values, labels)


SAMPLER_FACTORIES = {
    "unbiased": lambda: UnbiasedReservoir(40, rng=5),
    "skip_unbiased": lambda: SkipUnbiasedReservoir(40, rng=5),
    "exponential": lambda: ExponentialReservoir(capacity=40, rng=5),
    "space_constrained": lambda: SpaceConstrainedReservoir(
        lam=1e-2, capacity=40, rng=5
    ),
    "variable": lambda: VariableReservoir(lam=1e-2, capacity=40, rng=5),
    "window": lambda: WindowBuffer(40, rng=5),
    "chain": lambda: ChainSampler(20, window=100, rng=5),
    "sharded": lambda: ShardedReservoir(capacity=40, workers=4, rng=5),
}

QUERY_BUILDERS = {
    "count": lambda h: count_query(h),
    "sum": lambda h: sum_query(h, range(DIMS)),
    "range_count": lambda h: range_count_query(
        h, (0, 1), (-0.5, -0.5), (0.5, 0.5)
    ),
    "class_count": lambda h: class_count_query(h, N_CLASSES),
    "average": lambda h: average_query(h, range(DIMS)),
    "range_selectivity": lambda h: range_selectivity_query(
        h, (0, 1), (-0.5, -0.5), (0.5, 0.5)
    ),
    "class_distribution": lambda h: class_distribution_query(h, N_CLASSES),
}


class TestEveryQueryEverySampler:
    @pytest.mark.parametrize("family", sorted(SAMPLER_FACTORIES))
    @pytest.mark.parametrize("query_name", sorted(QUERY_BUILDERS))
    @pytest.mark.parametrize("horizon", [None, 120])
    def test_columnar_matches_reference_bitwise(
        self, family, query_name, horizon
    ):
        sampler = SAMPLER_FACTORIES[family]()
        for point in make_stream(600, seed=9):
            sampler.offer(point)
        query = QUERY_BUILDERS[query_name](horizon)
        columnar = QueryEstimator(sampler).estimate(query)
        reference = QueryEstimator(sampler, columnar=False).estimate(query)
        assert columnar.sample_support == reference.sample_support
        np.testing.assert_array_equal(columnar.estimate, reference.estimate)
        if columnar.variance is None:
            assert reference.variance is None
        else:
            np.testing.assert_array_equal(
                columnar.variance, reference.variance
            )


class TestResidentColumnsView:
    def test_columns_match_payloads(self):
        res = ExponentialReservoir(capacity=30, rng=1)
        for point in make_stream(200, seed=2):
            res.offer(point)
        columns = res.resident_columns()
        payloads = res.payloads()
        assert columns.size == len(payloads)
        np.testing.assert_array_equal(
            columns.values, np.array([p.values for p in payloads])
        )
        np.testing.assert_array_equal(
            columns.labels, np.array([p.label for p in payloads])
        )
        np.testing.assert_array_equal(
            columns.arrivals, res.arrival_indices()
        )

    def test_unlabeled_points_encode_minus_one(self):
        res = UnbiasedReservoir(10, rng=0)
        for point in make_stream(30, seed=3, labeled=False):
            res.offer(point)
        assert np.all(res.resident_columns().labels == -1)

    def test_view_is_cached_between_mutations(self):
        res = UnbiasedReservoir(20, rng=0)
        for point in make_stream(100, seed=4):
            res.offer(point)
        assert res.resident_columns() is res.resident_columns()

    def test_mutation_invalidates_cache(self):
        points = make_stream(100, seed=4)
        res = UnbiasedReservoir(20, rng=0)
        for point in points[:50]:
            res.offer(point)
        before = res.resident_columns()
        for point in points[50:]:
            res.offer(point)
        after = res.resident_columns()
        assert after is not before
        np.testing.assert_array_equal(
            after.values, np.array([p.values for p in res.payloads()])
        )

    def test_batch_ingestion_invalidates_cache(self):
        points = make_stream(400, seed=6)
        res = ExponentialReservoir(capacity=20, rng=0)
        res.offer_many(points[:200])
        before = res.resident_columns()
        res.offer_many(points[200:])
        after = res.resident_columns()
        assert after is not before
        np.testing.assert_array_equal(
            after.arrivals, res.arrival_indices()
        )

    def test_chain_sampler_cache_tracks_stream_position(self):
        """Chains mutate without touching base counters — the override
        must still see every change."""
        points = make_stream(300, seed=7)
        chain = ChainSampler(10, window=50, rng=0)
        for point in points[:100]:
            chain.offer(point)
        before = chain.resident_columns()
        chain.offer(points[100])
        after = chain.resident_columns()
        assert after is not before
        np.testing.assert_array_equal(
            after.arrivals, chain.arrival_indices()
        )

    def test_sharded_view_matches_entries(self):
        sharded = ShardedReservoir(capacity=40, workers=4, rng=0)
        sharded.offer_many(make_stream(500, seed=8))
        columns = sharded.resident_columns()
        assert columns is sharded.resident_columns()
        np.testing.assert_array_equal(
            columns.arrivals, sharded.arrival_indices()
        )
        np.testing.assert_array_equal(
            columns.values,
            np.array([p.values for p in sharded.payloads()]),
        )
        sharded.offer_many(make_stream(100, seed=9))
        assert sharded.resident_columns() is not columns

    def test_columns_are_read_only(self):
        res = UnbiasedReservoir(10, rng=0)
        for point in make_stream(30, seed=5):
            res.offer(point)
        columns = res.resident_columns()
        with pytest.raises(ValueError):
            columns.values[0, 0] = 99.0
        with pytest.raises(ValueError):
            columns.arrivals[0] = 1

    def test_non_streampoint_payloads_raise_attribute_error(self):
        res = UnbiasedReservoir(5, rng=0)
        res.extend(range(10))
        with pytest.raises(AttributeError):
            res.resident_columns()


class TestSupportIndexing:
    """Regression tests for the flatnonzero support-selection rewrite."""

    def test_empty_support_returns_zero_and_nan(self):
        """No resident inside the horizon: linear -> 0, ratio -> nan."""
        res = WindowBuffer(10, rng=0)
        points = make_stream(100, seed=11)
        for point in points:
            res.offer(point)
        # Horizon 5 at t=195: every resident (arrivals <= 100) is stale.
        est = QueryEstimator(res)
        linear = est.estimate(sum_query(5, range(DIMS)), t=100 + 95)
        assert linear.sample_support == 0
        np.testing.assert_array_equal(linear.estimate, np.zeros(DIMS))
        ratio = est.estimate(average_query(5, range(DIMS)), t=100 + 95)
        assert np.all(np.isnan(ratio.estimate))

    def test_partial_support_selects_exact_rows(self):
        """Only in-horizon residents may contribute, in storage order."""
        res = WindowBuffer(50, rng=0)
        points = make_stream(50, seed=12)
        for point in points:
            res.offer(point)
        horizon = 20
        est = QueryEstimator(res).estimate(sum_query(horizon, range(DIMS)))
        expected = np.sum(
            [p.values for p in points[-horizon:]], axis=0
        )
        # WindowBuffer residents have p = 1, so HT is the exact sum over
        # the supported rows.
        np.testing.assert_allclose(est.estimate, expected)
        assert est.sample_support == horizon

    def test_empty_reservoir(self):
        res = UnbiasedReservoir(10, rng=0)
        est = QueryEstimator(res).estimate(count_query())
        assert est.sample_support == 0
        assert est.estimate[0] == 0.0


class TestCustomQueryFallback:
    def test_custom_query_without_kernel_matches_reference(self):
        """A query with no values_batch runs per-point inside the columnar
        engine and still matches the reference path bitwise."""

        def squared_first(point: StreamPoint) -> np.ndarray:
            return np.array([point.values[0] ** 2])

        query = LinearQuery("squared", squared_first, 1, horizon=80)
        res = ExponentialReservoir(capacity=30, rng=3)
        for point in make_stream(300, seed=13):
            res.offer(point)
        columnar = QueryEstimator(res).estimate(query)
        reference = QueryEstimator(res, columnar=False).estimate(query)
        np.testing.assert_array_equal(columnar.estimate, reference.estimate)
        np.testing.assert_array_equal(columnar.variance, reference.variance)


class TestDownstreamConsumers:
    """GroupBy and histogram estimators ride the same columnar view."""

    def test_groupby_label_path_matches_generic(self):
        res = ExponentialReservoir(capacity=40, rng=4)
        for point in make_stream(400, seed=14):
            res.offer(point)
        query = average_query(150, range(DIMS))
        by_label = GroupByEstimator(res).estimate(query)
        generic = GroupByEstimator(
            res, key=lambda p: p.label
        ).estimate(query)
        assert set(by_label) == set(generic)
        for key in by_label:
            np.testing.assert_allclose(
                by_label[key].estimate, generic[key].estimate
            )
            assert by_label[key].support == generic[key].support
            assert by_label[key].weight_share == pytest.approx(
                generic[key].weight_share
            )

    def test_histogram_uses_columnar_view(self):
        res = ExponentialReservoir(capacity=40, rng=4)
        for point in make_stream(400, seed=15):
            res.offer(point)
        edges = np.linspace(-3, 3, 9)
        hist = estimate_histogram(res, dim=0, edges=edges, horizon=200)
        assert hist.support > 0
        assert hist.densities.sum() == pytest.approx(1.0)
        qs = estimate_quantiles(res, dim=0, qs=[0.25, 0.5, 0.75])
        assert np.all(np.diff(qs) >= 0)
