"""Tests for error metrics (Equation 21 and friends)."""

import numpy as np
import pytest

from repro.queries.errors import (
    average_absolute_error,
    nan_penalized_error,
    relative_error,
)


class TestAverageAbsoluteError:
    def test_zero_for_equal(self):
        assert average_absolute_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_equation_21_example(self):
        truth = np.array([0.5, 0.3, 0.2])
        est = np.array([0.4, 0.4, 0.2])
        assert average_absolute_error(truth, est) == pytest.approx(0.2 / 3)

    def test_symmetric(self):
        a, b = np.array([1.0, 3.0]), np.array([2.0, -1.0])
        assert average_absolute_error(a, b) == average_absolute_error(b, a)

    def test_scalar_inputs(self):
        assert average_absolute_error(2.0, 5.0) == 3.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            average_absolute_error([1.0], [1.0, 2.0])

    def test_nan_propagates(self):
        assert np.isnan(average_absolute_error([1.0], [np.nan]))


class TestRelativeError:
    def test_basic(self):
        assert relative_error([2.0], [1.0]) == pytest.approx(0.5)

    def test_zero_truth_uses_epsilon(self):
        # Does not blow up; huge but finite.
        assert np.isfinite(relative_error([0.0], [1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            relative_error([1.0], [1.0, 2.0])


class TestNanPenalizedError:
    def test_no_nan_same_as_plain(self):
        truth = np.array([0.5, 0.5])
        est = np.array([0.25, 0.75])
        assert nan_penalized_error(truth, est) == average_absolute_error(
            truth, est
        )

    def test_nan_replaced_by_zero_estimate(self):
        truth = np.array([0.4, 0.6])
        est = np.array([np.nan, 0.6])
        assert nan_penalized_error(truth, est) == pytest.approx(0.2)

    def test_fixed_penalty(self):
        truth = np.array([0.4, 0.6])
        est = np.array([np.nan, 0.6])
        assert nan_penalized_error(truth, est, penalty=1.0) == pytest.approx(
            0.5
        )

    def test_inf_treated_as_missing(self):
        truth = np.array([1.0])
        est = np.array([np.inf])
        assert nan_penalized_error(truth, est) == pytest.approx(1.0)

    def test_does_not_mutate_input(self):
        est = np.array([np.nan, 1.0])
        nan_penalized_error(np.array([0.0, 1.0]), est)
        assert np.isnan(est[0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            nan_penalized_error([1.0], [1.0, 2.0])
