"""Tests for the Horvitz-Thompson / Hajek query estimator (Section 4)."""

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.sliding_window import WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.queries.estimator import QueryEstimator
from repro.queries.exact import StreamHistory
from repro.queries.spec import (
    average_query,
    class_distribution_query,
    count_query,
    sum_query,
)
from tests.conftest import make_points


def feed(sampler, points):
    for p in points:
        sampler.offer(p)


class TestHorvitzThompsonExactness:
    def test_unbiased_count_is_exact(self, rng):
        """With uniform p = n/t and a full reservoir, HT count is exactly t."""
        points = make_points(rng.normal(size=(500, 2)))
        res = UnbiasedReservoir(50, rng=0)
        feed(res, points)
        est = QueryEstimator(res).estimate(count_query())
        assert est.estimate[0] == pytest.approx(500.0)
        assert est.sample_support == 50

    def test_window_buffer_estimates_are_exact_inside_window(self, rng):
        """p = 1 residents make HT degenerate to the exact sum."""
        data = rng.normal(size=(200, 3))
        points = make_points(data)
        buf = WindowBuffer(50, rng=0)
        feed(buf, points)
        est = QueryEstimator(buf).estimate(sum_query(50, range(3)))
        np.testing.assert_allclose(est.estimate, data[-50:].sum(axis=0))
        assert est.variance == pytest.approx(0.0)

    def test_ht_count_unbiased_across_replicates(self, rng):
        """Observation 4.1: E[H(t)] = G(t), for the biased sampler too.

        Uses a horizon-limited count so the HT weights stay bounded
        (max e^{h/n}); whole-stream queries with an exponential design have
        enormous weight skew and need astronomically many replicates — the
        paper's use case is precisely the bounded-horizon one.
        """
        data = rng.normal(size=(400, 1))
        estimates = []
        for seed in range(150):
            points = make_points(data)
            res = ExponentialReservoir(capacity=40, rng=seed)
            feed(res, points)
            est = QueryEstimator(res).estimate(count_query(horizon=80))
            estimates.append(est.estimate[0])
        assert np.mean(estimates) == pytest.approx(80.0, rel=0.1)

    def test_ht_horizon_count_unbiased_space_constrained(self, rng):
        data = rng.normal(size=(2000, 1))
        estimates = []
        for seed in range(80):
            res = SpaceConstrainedReservoir(capacity=100, p_in=0.5, rng=seed)
            feed(res, make_points(data))
            est = QueryEstimator(res).estimate(count_query(horizon=300))
            estimates.append(est.estimate[0])
        assert np.mean(estimates) == pytest.approx(300.0, rel=0.1)

    def test_ht_sum_unbiased_across_replicates(self, rng):
        data = rng.normal(2.0, 1.0, size=(400, 2))
        truth = data[-100:].sum(axis=0)
        estimates = []
        for seed in range(150):
            res = ExponentialReservoir(capacity=50, rng=seed)
            feed(res, make_points(data))
            est = QueryEstimator(res).estimate(sum_query(100, [0, 1]))
            estimates.append(est.estimate)
        np.testing.assert_allclose(
            np.mean(estimates, axis=0), truth, rtol=0.15
        )


class TestHajekRatio:
    def test_fraction_stays_in_unit_interval(self, rng):
        data = rng.normal(size=(1000, 2))
        labels = rng.integers(0, 3, size=1000)
        res = ExponentialReservoir(capacity=100, rng=1)
        feed(res, make_points(data, labels))
        est = QueryEstimator(res).estimate(class_distribution_query(200, 3))
        assert np.all(est.estimate >= 0.0)
        assert np.all(est.estimate <= 1.0)
        assert est.estimate.sum() == pytest.approx(1.0)

    def test_average_matches_truth_reasonably(self, rng):
        data = rng.normal(5.0, 1.0, size=(2000, 2))
        hist = StreamHistory(2)
        res = ExponentialReservoir(capacity=200, rng=2)
        for p in make_points(data):
            hist.observe(p)
            res.offer(p)
        q = average_query(500, [0, 1])
        truth = hist.evaluate(q)
        est = QueryEstimator(res).estimate(q)
        np.testing.assert_allclose(est.estimate, truth, atol=0.5)

    def test_ratio_has_no_variance_field(self, rng):
        res = ExponentialReservoir(capacity=10, rng=3)
        feed(res, make_points(rng.normal(size=(50, 1))))
        est = QueryEstimator(res).estimate(average_query(10, [0]))
        assert est.variance is None
        assert est.std_error is None

    def test_empty_support_gives_nan(self, rng):
        """The paper's 'null result': no relevant sample points."""
        res = UnbiasedReservoir(5, rng=4)
        feed(res, make_points(rng.normal(size=(10_000, 1))))
        # Horizon 1: only the newest point qualifies; with n=5 of 10k
        # points resident, it is almost surely absent.
        est = QueryEstimator(res).estimate(average_query(1, [0]))
        if est.sample_support == 0:
            assert np.isnan(est.estimate).all()

    def test_p_in_cancels_in_ratio(self, rng):
        """Hajek weighting is invariant to the constant p_in factor, so a
        space-constrained reservoir needs no external rescaling."""
        data = rng.normal(3.0, 1.0, size=(3000, 1))
        res = SpaceConstrainedReservoir(capacity=150, p_in=0.3, rng=5)
        feed(res, make_points(data))
        est = QueryEstimator(res).estimate(average_query(1000, [0]))
        assert est.estimate[0] == pytest.approx(3.0, abs=0.5)


class TestLinearEstimateDetails:
    def test_empty_reservoir_zero_estimate(self):
        res = UnbiasedReservoir(5, rng=0)
        est = QueryEstimator(res).estimate(count_query(), t=0)
        assert est.estimate[0] == 0.0
        assert est.sample_support == 0

    def test_variance_positive_for_subsampled(self, rng):
        res = UnbiasedReservoir(20, rng=1)
        feed(res, make_points(rng.normal(size=(200, 1))))
        est = QueryEstimator(res).estimate(sum_query(None, [0]))
        assert est.variance[0] > 0.0
        assert est.std_error[0] == pytest.approx(np.sqrt(est.variance[0]))

    def test_support_counts_horizon_residents_only(self, rng):
        res = UnbiasedReservoir(50, rng=2)
        feed(res, make_points(rng.normal(size=(500, 1))))
        est = QueryEstimator(res).estimate(count_query(horizon=100))
        ages = res.t - res.arrival_indices()
        assert est.sample_support == int(np.sum(ages < 100))

    def test_relevant_sample_size_contrast(self, rng):
        """The paper's core quantitative claim: the biased reservoir keeps
        a much larger relevant sample at short horizons."""
        data = make_points(rng.normal(size=(20_000, 1)))
        biased = ExponentialReservoir(capacity=500, rng=3)
        unbiased = UnbiasedReservoir(500, rng=4)
        for p in data:
            biased.offer(p)
            unbiased.offer(p)
        h = 500
        rb = QueryEstimator(biased).relevant_sample_size(h)
        ru = QueryEstimator(unbiased).relevant_sample_size(h)
        # Theory: biased ~ n(1 - e^{-h/n}) ~ 316, unbiased ~ n h/t ~ 12.
        assert rb > 5 * ru


class TestTemporalSemantics:
    def test_past_t_rejected_with_clear_error(self, rng):
        """The reservoir cannot answer 'as of the past' — the error must
        say so instead of surfacing a numpy range failure."""
        res = UnbiasedReservoir(10, rng=0)
        feed(res, make_points(rng.normal(size=(100, 1))))
        with pytest.raises(ValueError, match="advanced"):
            QueryEstimator(res).estimate(count_query(), t=50)

    def test_future_t_allowed(self, rng):
        """Evaluating at a (hypothetical) future t just ages the sample."""
        res = UnbiasedReservoir(10, rng=1)
        feed(res, make_points(rng.normal(size=(100, 1))))
        est = QueryEstimator(res).estimate(count_query(horizon=10), t=200)
        # All residents are older than the horizon at t=200.
        assert est.sample_support == 0


class TestHTVarianceEstimator:
    def test_two_resident_hand_computation(self):
        """Pin the HT variance estimator on a case small enough to do by
        hand: capacity 2, stream length 4, so every resident has exactly
        p = n/t = 1/2.

        Estimator: sum over residents of (c h)^2 (1 - p) / p^2. With
        c = 1, p = 1/2 each term is h^2 * (1/2) / (1/4) = 2 h^2.
        """
        res = UnbiasedReservoir(2, rng=0)
        feed(res, make_points(np.arange(1.0, 5.0).reshape(4, 1)))
        probs = res.inclusion_probabilities(res.arrival_indices(), res.t)
        np.testing.assert_allclose(probs, 0.5)
        v1, v2 = (p.values[0] for p in res.payloads())
        est = QueryEstimator(res).estimate(sum_query(None, [0]))
        assert est.estimate[0] == pytest.approx(2.0 * (v1 + v2))
        assert est.variance[0] == pytest.approx(2.0 * (v1**2 + v2**2))

    def test_variance_unbiased_for_lemma_41(self, rng):
        """E[variance estimate] must match Lemma 4.1's closed form
        sum_r (c h)^2 (1/p - 1) — the property the p^2 (not p^3)
        denominator exists for."""
        data = rng.normal(2.0, 1.0, size=(60, 1))
        points = make_points(data)
        n, t = 12, len(points)
        p = n / t
        truth = float(np.sum(data[:, 0] ** 2) * (1.0 / p - 1.0))
        samples = []
        for seed in range(400):
            res = UnbiasedReservoir(n, rng=seed)
            feed(res, points)
            est = QueryEstimator(res).estimate(sum_query(None, [0]))
            samples.append(est.variance[0])
        assert np.mean(samples) == pytest.approx(truth, rel=0.1)

    def test_full_inclusion_gives_zero_variance(self, rng):
        """p = 1 residents are certain: the design variance vanishes."""
        res = WindowBuffer(50, rng=0)
        feed(res, make_points(rng.normal(size=(30, 1))))
        est = QueryEstimator(res).estimate(sum_query(None, [0]))
        assert est.variance[0] == pytest.approx(0.0)
