"""Tests for the exact StreamHistory oracle."""

import numpy as np
import pytest

from repro.queries.exact import StreamHistory
from repro.queries.spec import (
    LinearQuery,
    average_query,
    class_count_query,
    class_distribution_query,
    count_query,
    range_count_query,
    sum_query,
)
from repro.streams.point import StreamPoint
from tests.conftest import make_points


@pytest.fixture
def history():
    """Five labeled 2-D points with known values."""
    h = StreamHistory(dimensions=2)
    values = [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0], [5.0, 50.0]]
    labels = [0, 1, 0, 1, 1]
    for p in make_points(values, labels):
        h.observe(p)
    return h


class TestObservation:
    def test_t_advances(self, history):
        assert history.t == 5

    def test_out_of_order_rejected(self, history):
        with pytest.raises(ValueError, match="out-of-order"):
            history.observe(StreamPoint(99, np.zeros(2)))

    def test_dimension_mismatch_rejected(self, history):
        with pytest.raises(ValueError, match="dimension mismatch"):
            history.observe(StreamPoint(6, np.zeros(3)))

    def test_buffer_growth(self):
        h = StreamHistory(dimensions=2, capacity_hint=16)
        for p in make_points(np.arange(200).reshape(100, 2)):
            h.observe(p)
        assert h.t == 100
        np.testing.assert_array_equal(h.values()[-1], [198.0, 199.0])

    def test_observe_all(self):
        h = StreamHistory(dimensions=2)
        count = h.observe_all(make_points(np.zeros((7, 2))))
        assert count == 7

    def test_labels_view(self, history):
        assert history.labels().tolist() == [0, 1, 0, 1, 1]

    def test_dimensions_validation(self):
        with pytest.raises(ValueError, match="dimensions"):
            StreamHistory(dimensions=0)


class TestExactEvaluation:
    def test_count_whole_stream(self, history):
        assert history.evaluate(count_query())[0] == 5.0

    def test_count_horizon(self, history):
        assert history.evaluate(count_query(horizon=2))[0] == 2.0

    def test_count_horizon_larger_than_stream(self, history):
        assert history.evaluate(count_query(horizon=100))[0] == 5.0

    def test_count_at_past_t(self, history):
        assert history.evaluate(count_query(), t=3)[0] == 3.0

    def test_sum_whole_stream(self, history):
        np.testing.assert_allclose(
            history.evaluate(sum_query(None, [0, 1])), [15.0, 150.0]
        )

    def test_sum_horizon(self, history):
        np.testing.assert_allclose(
            history.evaluate(sum_query(2, [0])), [9.0]  # points 4 and 5
        )

    def test_average_ratio(self, history):
        np.testing.assert_allclose(
            history.evaluate(average_query(2, [0, 1])), [4.5, 45.0]
        )

    def test_average_empty_horizon_is_nan(self, history):
        result = history.evaluate(average_query(3, [0]), t=0)
        assert np.isnan(result).all()

    def test_class_count(self, history):
        np.testing.assert_allclose(
            history.evaluate(class_count_query(None, 2)), [2.0, 3.0]
        )

    def test_class_distribution(self, history):
        np.testing.assert_allclose(
            history.evaluate(class_distribution_query(None, 2)), [0.4, 0.6]
        )

    def test_range_count_fast_path(self, history):
        q = range_count_query(None, [0], [2.0], [4.0])
        assert history.evaluate(q)[0] == 3.0

    def test_range_count_both_dims(self, history):
        q = range_count_query(None, [0, 1], [2.0, 25.0], [4.0, 45.0])
        assert history.evaluate(q)[0] == 2.0  # points 3 and 4

    def test_generic_fallback_matches_fast_path(self, history):
        """A custom query with no metadata goes through the row loop."""

        def squared_first(point):
            return np.array([point.values[0] ** 2])

        q = LinearQuery("custom", squared_first, 1, horizon=None)
        assert history.evaluate(q)[0] == pytest.approx(1 + 4 + 9 + 16 + 25)

    def test_bad_t_rejected(self, history):
        with pytest.raises(ValueError, match="t must lie"):
            history.evaluate(count_query(), t=6)

    def test_horizon_bounds(self, history):
        assert history.horizon_bounds(2) == (3, 5)
        assert history.horizon_bounds(None) == (0, 5)
        assert history.horizon_bounds(2, t=3) == (1, 3)

    def test_float32_storage(self):
        h = StreamHistory(dimensions=1, dtype=np.float32)
        for p in make_points([[1.5], [2.5]]):
            h.observe(p)
        assert h.evaluate(sum_query(None, [0]))[0] == pytest.approx(4.0)


class TestAgainstNumpy:
    def test_random_stream_sums_match(self, rng):
        data = rng.normal(size=(300, 4))
        h = StreamHistory(dimensions=4)
        h.observe_all(make_points(data))
        for horizon in (10, 100, 299, None):
            got = h.evaluate(sum_query(horizon, range(4)))
            lo = 0 if horizon is None else max(0, 300 - horizon)
            np.testing.assert_allclose(got, data[lo:].sum(axis=0))


class TestIncrementalAgainstScan:
    """The prefix-structure answers vs the horizon-scan reference."""

    @pytest.fixture
    def long_history(self, rng):
        data = rng.normal(size=(800, 3))
        labels = rng.integers(0, 4, size=800)
        h = StreamHistory(dimensions=3)
        h.observe_all(make_points(data, labels))
        return h

    def test_count_matches_scan_exactly(self, long_history):
        for horizon in (1, 50, 799, 800, 5000, None):
            q = count_query(horizon)
            for t in (100, 457, 800):
                np.testing.assert_array_equal(
                    long_history.evaluate(q, t),
                    long_history.evaluate_scan(q, t),
                )

    def test_class_count_matches_scan_exactly(self, long_history):
        """Counts come from bisected position lists — integers, so the
        agreement is exact, not approximate."""
        for horizon in (1, 50, 333, None):
            q = class_count_query(horizon, 4)
            for t in (100, 457, 800):
                np.testing.assert_array_equal(
                    long_history.evaluate(q, t),
                    long_history.evaluate_scan(q, t),
                )

    def test_sum_matches_scan_tightly(self, long_history):
        """Prefix-sum differences reassociate float additions, so sums
        agree to tight tolerance rather than bitwise."""
        for horizon in (1, 50, 333, None):
            q = sum_query(horizon, range(3))
            for t in (100, 457, 800):
                np.testing.assert_allclose(
                    long_history.evaluate(q, t),
                    long_history.evaluate_scan(q, t),
                    rtol=1e-10,
                    atol=1e-9,
                )

    def test_average_matches_scan_tightly(self, long_history):
        q = average_query(120, range(3))
        np.testing.assert_allclose(
            long_history.evaluate(q), long_history.evaluate_scan(q),
            rtol=1e-10,
        )

    def test_range_count_uses_scan(self, long_history):
        """range_count has no incremental structure; both entry points
        must hit the identical scan path."""
        q = range_count_query(200, (0, 1), (-1.0, -1.0), (1.0, 1.0))
        np.testing.assert_array_equal(
            long_history.evaluate(q), long_history.evaluate_scan(q)
        )

    def test_unlabeled_points_never_counted(self):
        h = StreamHistory(dimensions=1)
        values = [[1.0], [2.0], [3.0]]
        for i, p in enumerate(make_points(values)):
            h.observe(p)
        q = class_count_query(None, 2)
        np.testing.assert_array_equal(h.evaluate(q), np.zeros(2))
        np.testing.assert_array_equal(h.evaluate_scan(q), np.zeros(2))

    def test_prefix_survives_buffer_growth(self, rng):
        """_grow must carry the prefix rows; sums straddle the boundary."""
        data = rng.normal(size=(100, 2))
        h = StreamHistory(dimensions=2, capacity_hint=16)
        h.observe_all(make_points(data))
        np.testing.assert_allclose(
            h.evaluate(sum_query(None, range(2))), data.sum(axis=0)
        )
        np.testing.assert_allclose(
            h.evaluate(sum_query(37, range(2))), data[-37:].sum(axis=0)
        )

    def test_evaluate_scan_handles_ratio_and_empty(self, long_history):
        q = average_query(10, range(3))
        assert np.all(np.isnan(long_history.evaluate_scan(q, t=0)))
        got = long_history.evaluate_scan(q, t=500)
        assert got.shape == (3,)
