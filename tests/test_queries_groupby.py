"""Tests for GROUP BY estimation over reservoirs (extension)."""

import numpy as np
import pytest

from repro.core.sliding_window import WindowBuffer
from repro.core.unbiased import UnbiasedReservoir
from repro.queries.groupby import GroupByEstimator, label_key
from repro.queries.spec import average_query, count_query, sum_query
from tests.conftest import make_points


def labeled_points(rng, n=300, n_groups=3, offset=5.0):
    """Points whose dim-0 mean is ``label * offset`` (known per group)."""
    labels = rng.integers(0, n_groups, size=n)
    values = rng.normal(size=(n, 2))
    values[:, 0] += labels * offset
    return make_points(values, labels)


class TestGroupByEstimator:
    def test_window_buffer_groups_are_exact(self, rng):
        """With p = 1 residents the per-group estimates are exact."""
        pts = labeled_points(rng, n=100)
        buf = WindowBuffer(100, rng=0)
        for p in pts:
            buf.offer(p)
        groups = GroupByEstimator(buf).estimate(count_query())
        truth = {}
        for p in pts:
            truth[p.label] = truth.get(p.label, 0) + 1
        for key, est in groups.items():
            assert est.estimate[0] == pytest.approx(truth[key])
            assert est.support == truth[key]

    def test_group_averages_separate_means(self, rng):
        pts = labeled_points(rng, n=600, offset=10.0)
        res = UnbiasedReservoir(300, rng=1)
        for p in pts:
            res.offer(p)
        groups = GroupByEstimator(res).estimate(average_query(None, [0]))
        for key, est in groups.items():
            assert est.estimate[0] == pytest.approx(key * 10.0, abs=1.0)

    def test_weight_shares_sum_to_one(self, rng):
        pts = labeled_points(rng, n=500)
        res = UnbiasedReservoir(200, rng=2)
        for p in pts:
            res.offer(p)
        groups = GroupByEstimator(res).estimate(count_query())
        assert sum(g.weight_share for g in groups.values()) == pytest.approx(
            1.0
        )

    def test_horizon_restricts_groups(self, rng):
        """Groups entirely outside the horizon must not appear."""
        early = make_points(rng.normal(size=(50, 2)), labels=[0] * 50)
        late = make_points(
            rng.normal(size=(50, 2)), labels=[1] * 50, start_index=51
        )
        buf = WindowBuffer(100, rng=3)
        for p in early + late:
            buf.offer(p)
        groups = GroupByEstimator(buf).estimate(count_query(horizon=50))
        assert set(groups) == {1}

    def test_min_support_filters_thin_groups(self, rng):
        pts = labeled_points(rng, n=300, n_groups=3)
        res = UnbiasedReservoir(50, rng=4)
        for p in pts:
            res.offer(p)
        all_groups = GroupByEstimator(res).estimate(count_query())
        thick = GroupByEstimator(res).estimate(count_query(), min_support=100)
        assert len(thick) < len(all_groups)

    def test_empty_reservoir(self):
        res = UnbiasedReservoir(10, rng=5)
        assert GroupByEstimator(res).estimate(count_query()) == {}

    def test_custom_key_function(self, rng):
        pts = make_points(rng.normal(size=(100, 2)))
        res = UnbiasedReservoir(100, rng=6)
        for p in pts:
            res.offer(p)
        groups = GroupByEstimator(
            res, key=lambda p: p.values[0] > 0
        ).estimate(count_query())
        assert set(groups) <= {True, False}
        total = sum(g.estimate[0] for g in groups.values())
        assert total == pytest.approx(100.0)

    def test_default_key_is_label(self, labeled_point):
        assert label_key(labeled_point) == 2

    def test_ratio_with_zero_denominator_is_nan(self, rng):
        """A group whose denominator mass is zero yields nan, not a crash."""

        # Custom ratio: numerator counts all, denominator counts dim0>1e9
        # (never true) — denominator zero for every group.
        from repro.queries.spec import RatioQuery, range_count_query

        pts = labeled_points(rng, n=50)
        res = UnbiasedReservoir(50, rng=7)
        for p in pts:
            res.offer(p)
        q = RatioQuery(
            "weird",
            count_query(),
            range_count_query(None, [0], [1e9], [2e9]),
        )
        groups = GroupByEstimator(res).estimate(q)
        for est in groups.values():
            assert np.isnan(est.estimate).all()

    def test_sum_query_vector_output(self, rng):
        pts = labeled_points(rng, n=200)
        res = UnbiasedReservoir(200, rng=8)
        for p in pts:
            res.offer(p)
        groups = GroupByEstimator(res).estimate(sum_query(None, [0, 1]))
        for est in groups.values():
            assert est.estimate.shape == (2,)
