"""Tests for histogram/quantile estimation from reservoirs (extension)."""

import numpy as np
import pytest

from repro.core.sliding_window import WindowBuffer
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.queries.exact import StreamHistory
from repro.queries.histogram import (
    HistogramEstimate,
    estimate_histogram,
    estimate_quantiles,
    exact_histogram,
    exact_quantiles,
)
from tests.conftest import make_points

EDGES = np.linspace(-4.0, 4.0, 17)
QS = (0.1, 0.25, 0.5, 0.75, 0.9)


def feed(sampler, points, history=None):
    for p in points:
        if history is not None:
            history.observe(p)
        sampler.offer(p)


class TestEstimateHistogram:
    def test_window_buffer_is_exact(self, rng):
        """p = 1 residents make the estimate the exact horizon histogram."""
        pts = make_points(rng.normal(size=(200, 2)))
        hist = StreamHistory(2)
        buf = WindowBuffer(50, rng=0)
        feed(buf, pts, hist)
        est = estimate_histogram(buf, 0, EDGES, horizon=50)
        truth = exact_histogram(hist, 0, EDGES, horizon=50)
        np.testing.assert_allclose(est.densities, truth.densities)
        assert est.support == 50

    def test_densities_normalized(self, rng):
        pts = make_points(rng.normal(size=(3000, 1)))
        res = UnbiasedReservoir(300, rng=1)
        feed(res, pts)
        est = estimate_histogram(res, 0, EDGES)
        assert est.densities.sum() == pytest.approx(1.0)
        assert np.all(est.densities >= 0)

    def test_empty_reservoir(self):
        res = UnbiasedReservoir(10, rng=2)
        est = estimate_histogram(res, 0, EDGES)
        assert est.support == 0
        assert est.densities.sum() == 0.0

    def test_empty_horizon(self, rng):
        res = UnbiasedReservoir(5, rng=3)
        feed(res, make_points(rng.normal(size=(10_000, 1)))[:10_000])
        est = estimate_histogram(res, 0, EDGES, horizon=1)
        # The single newest point is almost surely not resident.
        assert est.support in (0, 1)

    def test_outliers_clipped_into_end_bins(self):
        pts = make_points(np.array([[100.0], [-100.0]]))
        buf = WindowBuffer(10, rng=4)
        feed(buf, pts)
        est = estimate_histogram(buf, 0, EDGES)
        assert est.densities[0] == pytest.approx(0.5)
        assert est.densities[-1] == pytest.approx(0.5)

    def test_biased_histogram_tracks_recent_distribution(self, rng):
        """Distribution shifts: the biased reservoir's recent-horizon
        histogram must be closer to the recent truth than the unbiased."""
        early = make_points(rng.normal(-2.0, 0.5, size=(20_000, 1)))
        late = make_points(
            rng.normal(2.0, 0.5, size=(2_000, 1)), start_index=20_001
        )
        hist = StreamHistory(1)
        biased = SpaceConstrainedReservoir(lam=1e-3, capacity=300, rng=5)
        unbiased = UnbiasedReservoir(300, rng=6)
        for p in early + late:
            hist.observe(p)
            biased.offer(p)
            unbiased.offer(p)
        truth = exact_histogram(hist, 0, EDGES, horizon=2_000)
        tv_biased = estimate_histogram(
            biased, 0, EDGES, horizon=2_000
        ).total_variation(truth)
        tv_unbiased = estimate_histogram(
            unbiased, 0, EDGES, horizon=2_000
        ).total_variation(truth)
        assert tv_biased < tv_unbiased

    @pytest.mark.parametrize(
        "bad_edges",
        [np.array([1.0]), np.array([1.0, 1.0]), np.array([2.0, 1.0])],
    )
    def test_edge_validation(self, bad_edges, rng):
        res = UnbiasedReservoir(10, rng=7)
        with pytest.raises(ValueError):
            estimate_histogram(res, 0, bad_edges)

    def test_total_variation_requires_same_edges(self):
        a = HistogramEstimate(np.array([0.0, 1.0]), np.array([1.0]), 1)
        b = HistogramEstimate(np.array([0.0, 2.0]), np.array([1.0]), 1)
        with pytest.raises(ValueError, match="share bin edges"):
            a.total_variation(b)

    def test_total_variation_zero_for_identical(self):
        a = HistogramEstimate(
            np.array([0.0, 1.0, 2.0]), np.array([0.3, 0.7]), 5
        )
        assert a.total_variation(a) == 0.0


class TestEstimateQuantiles:
    def test_window_buffer_close_to_numpy(self, rng):
        pts = make_points(rng.normal(size=(500, 1)))
        hist = StreamHistory(1)
        buf = WindowBuffer(200, rng=8)
        feed(buf, pts, hist)
        est = estimate_quantiles(buf, 0, QS, horizon=200)
        truth = exact_quantiles(hist, 0, QS, horizon=200)
        np.testing.assert_allclose(est, truth, atol=0.15)

    def test_quantiles_monotone(self, rng):
        pts = make_points(rng.normal(size=(2000, 1)))
        res = UnbiasedReservoir(200, rng=9)
        feed(res, pts)
        est = estimate_quantiles(res, 0, QS)
        assert np.all(np.diff(est) >= 0)

    def test_median_of_uniform_sample(self, rng):
        pts = make_points(rng.uniform(0, 10, size=(5000, 1)))
        res = UnbiasedReservoir(500, rng=10)
        feed(res, pts)
        median = estimate_quantiles(res, 0, [0.5])[0]
        assert median == pytest.approx(5.0, abs=0.8)

    def test_empty_gives_nan(self):
        res = UnbiasedReservoir(10, rng=11)
        assert np.isnan(estimate_quantiles(res, 0, QS)).all()

    def test_invalid_q_rejected(self, rng):
        res = UnbiasedReservoir(10, rng=12)
        with pytest.raises(ValueError, match="quantiles"):
            estimate_quantiles(res, 0, [1.5])

    def test_exact_quantiles_empty(self):
        hist = StreamHistory(1)
        assert np.isnan(exact_quantiles(hist, 0, QS)).all()

    def test_exact_histogram_empty(self):
        hist = StreamHistory(1)
        est = exact_histogram(hist, 0, EDGES)
        assert est.support == 0
