"""Tests for the standalone inclusion models and Lemma 4.1 variance."""

import math

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.unbiased import UnbiasedReservoir
from repro.queries.inclusion import (
    exact_variance,
    exponential_model,
    space_constrained_model,
    unbiased_model,
)


class TestModels:
    def test_unbiased_model_matches_sampler(self):
        res = UnbiasedReservoir(20, rng=0)
        res.extend(range(100))
        model = unbiased_model(20)
        r = np.array([1, 50, 100])
        np.testing.assert_allclose(
            model(r, 100), res.inclusion_probabilities(r)
        )

    def test_exponential_model_matches_sampler(self):
        res = ExponentialReservoir(capacity=50, rng=0)
        res.extend(range(300))
        model = exponential_model(50)
        r = np.array([10, 200, 300])
        np.testing.assert_allclose(
            model(r, 300), res.inclusion_probabilities(r)
        )

    def test_space_constrained_model_shape(self):
        model = space_constrained_model(100, 0.5)
        np.testing.assert_allclose(model(np.array([200]), 200), [0.5])


class TestLemma41Variance:
    def test_zero_variance_when_p_is_one(self):
        c = np.ones(10)
        h = np.ones(10)
        p = np.ones(10)
        np.testing.assert_allclose(exact_variance(c, h, p), [0.0])

    def test_closed_form_small_case(self):
        """Var = sum c^2 h^2 (1/p - 1)."""
        c = np.array([1.0, 1.0])
        h = np.array([2.0, 3.0])
        p = np.array([0.5, 0.25])
        expected = 4 * (2 - 1) + 9 * (4 - 1)
        assert exact_variance(c, h, p)[0] == pytest.approx(expected)

    def test_vector_h(self):
        c = np.array([1.0])
        h = np.array([[2.0, 3.0]])
        p = np.array([0.5])
        np.testing.assert_allclose(exact_variance(c, h, p), [4.0, 9.0])

    def test_zero_coefficient_masks_zero_probability(self):
        """Points outside the horizon (c=0) may have p=0 without error —
        this is exactly why biased sampling works for horizon queries."""
        c = np.array([0.0, 1.0])
        h = np.array([5.0, 1.0])
        p = np.array([0.0, 0.5])
        assert exact_variance(c, h, p)[0] == pytest.approx(1.0)

    def test_nonzero_coefficient_with_zero_probability_rejected(self):
        c = np.array([1.0])
        h = np.array([1.0])
        p = np.array([0.0])
        with pytest.raises(ValueError, match="zero inclusion"):
            exact_variance(c, h, p)

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(ValueError, match="align"):
            exact_variance(np.ones(3), np.ones(2), np.ones(3))

    def test_variance_predicts_monte_carlo(self, rng):
        """Lemma 4.1 must match the empirical variance of HT estimates."""
        from repro.queries.estimator import QueryEstimator
        from repro.queries.spec import count_query
        from tests.conftest import make_points

        t, n = 300, 30
        data = rng.normal(size=(t, 1))
        estimates = []
        for seed in range(300):
            res = UnbiasedReservoir(n, rng=seed)
            for p in make_points(data):
                res.offer(p)
            est = QueryEstimator(res).estimate(count_query(horizon=50))
            estimates.append(est.estimate[0])
        empirical_var = float(np.var(estimates))
        c = count_query(horizon=50).coefficients(np.arange(1, t + 1), t)
        p = unbiased_model(n)(np.arange(1, t + 1), t)
        predicted = exact_variance(c, np.ones(t), p)[0]
        # Lemma 4.1 assumes independent inclusions; reservoir sampling has
        # slight negative dependence, so allow a generous band.
        assert empirical_var == pytest.approx(predicted, rel=0.4)
