"""Tests for query specifications."""

import numpy as np
import pytest

from repro.queries.spec import (
    LinearQuery,
    RatioQuery,
    average_query,
    class_count_query,
    class_distribution_query,
    count_query,
    range_count_query,
    range_selectivity_query,
    sum_query,
)
from repro.streams.point import StreamPoint


def pt(values, label=None, index=1):
    return StreamPoint(index, np.asarray(values, dtype=float), label)


class TestLinearQuery:
    def test_horizon_coefficient(self):
        q = count_query(horizon=10)
        assert q.coefficient(95, 100) == 1.0  # age 5 < 10
        assert q.coefficient(91, 100) == 1.0  # age 9 < 10
        assert q.coefficient(90, 100) == 0.0  # age 10 not < 10

    def test_whole_stream_coefficient(self):
        q = count_query()
        assert q.coefficient(1, 10_000) == 1.0

    def test_coefficients_vectorized_matches_scalar(self):
        q = count_query(horizon=50)
        r = np.arange(1, 101)
        vec = q.coefficients(r, 100)
        scal = [q.coefficient(int(x), 100) for x in r]
        np.testing.assert_array_equal(vec, scal)

    def test_coefficient_bad_r(self):
        with pytest.raises(ValueError):
            count_query().coefficient(0, 10)

    def test_with_horizon_copies(self):
        q = sum_query(None, [0, 1])
        q2 = q.with_horizon(100)
        assert q2.horizon == 100
        assert q2.dims == q.dims
        assert q.horizon is None

    def test_invalid_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            count_query(horizon=0)

    def test_invalid_output_dim(self):
        with pytest.raises(ValueError, match="output_dim"):
            LinearQuery("x", lambda p: np.ones(1), 0)


class TestBuilders:
    def test_count_value(self):
        assert count_query().value(pt([1.0, 2.0]))[0] == 1.0

    def test_sum_selects_dims(self):
        q = sum_query(None, [1, 2])
        np.testing.assert_array_equal(
            q.value(pt([5.0, 6.0, 7.0])), [6.0, 7.0]
        )
        assert q.output_dim == 2
        assert q.dims == (1, 2)

    def test_sum_empty_dims_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sum_query(None, [])

    def test_average_is_ratio(self):
        q = average_query(100, [0])
        assert isinstance(q, RatioQuery)
        assert q.horizon == 100

    def test_range_count_inside(self):
        q = range_count_query(None, [0, 1], [0.0, 0.0], [1.0, 1.0])
        assert q.value(pt([0.5, 0.5, 9.0]))[0] == 1.0

    def test_range_count_outside(self):
        q = range_count_query(None, [0, 1], [0.0, 0.0], [1.0, 1.0])
        assert q.value(pt([0.5, 1.5]))[0] == 0.0

    def test_range_count_boundary_inclusive(self):
        q = range_count_query(None, [0], [0.0], [1.0])
        assert q.value(pt([1.0]))[0] == 1.0
        assert q.value(pt([0.0]))[0] == 1.0

    def test_range_count_validation(self):
        with pytest.raises(ValueError, match="low/high"):
            range_count_query(None, [0, 1], [0.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="low must be"):
            range_count_query(None, [0], [2.0], [1.0])

    def test_range_selectivity_is_ratio(self):
        q = range_selectivity_query(50, [0], [0.0], [1.0])
        assert isinstance(q, RatioQuery)
        assert q.numerator.name == "range_count"

    def test_class_count_onehot(self):
        q = class_count_query(None, 4)
        np.testing.assert_array_equal(
            q.value(pt([0.0], label=2)), [0, 0, 1, 0]
        )

    def test_class_count_unlabeled_zero(self):
        q = class_count_query(None, 3)
        np.testing.assert_array_equal(q.value(pt([0.0])), [0, 0, 0])

    def test_class_count_out_of_range_label_zero(self):
        q = class_count_query(None, 2)
        np.testing.assert_array_equal(q.value(pt([0.0], label=7)), [0, 0])

    def test_class_count_validation(self):
        with pytest.raises(ValueError, match="n_classes"):
            class_count_query(None, 0)

    def test_class_distribution_is_ratio(self):
        q = class_distribution_query(10, 3)
        assert q.numerator.output_dim == 3
        assert q.denominator.name == "count"


class TestRatioQuery:
    def test_horizon_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a horizon"):
            RatioQuery("bad", count_query(10), count_query(20))

    def test_with_horizon(self):
        q = class_distribution_query(10, 3).with_horizon(99)
        assert q.horizon == 99
        assert q.numerator.horizon == 99
        assert q.denominator.horizon == 99
