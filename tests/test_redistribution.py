"""Tests for the general-bias redistribution sampler."""

import numpy as np
import pytest

from repro.core.bias import ExponentialBias, PolynomialBias, UnbiasedBias
from repro.core.redistribution import GeneralBiasSampler


class TestGeneralBiasSampler:
    @pytest.mark.statistical
    def test_expected_size_reaches_target(self):
        """With exponential bias and target below R(t), E|S| = target."""
        lam = 0.01  # capacity bound ~ 100.5
        sizes = []
        for seed in range(40):
            sampler = GeneralBiasSampler(ExponentialBias(lam), 50, rng=seed)
            sampler.extend(range(2000))
            sizes.append(sampler.size)
        assert np.mean(sizes) == pytest.approx(50, rel=0.1)

    def test_clamped_when_target_exceeds_requirement(self):
        """Theorem 2.1: targets above R(t) are unreachable; probabilities
        clamp and the realized size is the clamped sum."""
        bias = PolynomialBias(1.5)  # R(inf) = zeta(1.5) ~ 2.612
        sampler = GeneralBiasSampler(bias, 50, rng=0)
        sampler.extend(range(3000))
        # Realized expected size: sum_k min(1, C k^-1.5), C = 50/zeta(1.5).
        c = 50 / bias.max_reservoir_requirement(3000)
        k = np.arange(1, 3001)
        expected = float(np.minimum(1.0, c * k**-1.5).sum())
        assert sampler.size < 50
        assert sampler.size == pytest.approx(expected, abs=12)

    def test_inclusion_probability_is_exact_model(self):
        bias = ExponentialBias(0.02)
        sampler = GeneralBiasSampler(bias, 20, rng=1)
        sampler.extend(range(500))
        p = sampler.inclusion_probability(500)
        total = sum(bias.weight(i, 500) for i in range(1, 501))
        assert p == pytest.approx(min(1.0, 20 / total))

    def test_inclusion_only_at_current_time(self):
        sampler = GeneralBiasSampler(ExponentialBias(0.02), 20, rng=2)
        sampler.extend(range(100))
        with pytest.raises(ValueError, match="current time"):
            sampler.inclusion_probability(50, t=80)

    def test_unbiased_bias_keeps_uniform_probabilities(self):
        """With f = 1 the design is p(r,t) = n/t for all r — like
        Algorithm R but with fluctuating size."""
        sampler = GeneralBiasSampler(UnbiasedBias(), 20, rng=3)
        sampler.extend(range(400))
        assert sampler.inclusion_probability(1) == pytest.approx(20 / 400)
        assert sampler.inclusion_probability(400) == pytest.approx(20 / 400)

    @pytest.mark.statistical
    def test_empirical_age_distribution_matches_bias(self):
        """The maintained sample is proportional to f(r, t)."""
        lam = 0.02  # bound ~ 50.5
        target = 25
        hits = np.zeros(4)
        target_ages = np.array([0, 20, 60, 120])
        reps = 600
        for seed in range(reps):
            sampler = GeneralBiasSampler(ExponentialBias(lam), target, rng=seed)
            sampler.extend(range(600))
            ages = set((600 - sampler.arrival_indices()).tolist())
            for i, a in enumerate(target_ages):
                if int(a) in ages:
                    hits[i] += 1
        observed = hits / reps
        total = (1 - np.exp(-lam * 600)) / (1 - np.exp(-lam))
        expected = np.minimum(1.0, (target / total) * np.exp(-lam * target_ages))
        np.testing.assert_allclose(observed, expected, atol=0.08)

    def test_work_per_arrival_scales_with_sample(self):
        sampler = GeneralBiasSampler(ExponentialBias(0.01), 50, rng=4)
        sampler.extend(range(1000))
        assert sampler.work_per_arrival() == pytest.approx(sampler.size)

    def test_target_size_validation(self):
        with pytest.raises(ValueError, match="target_size"):
            GeneralBiasSampler(ExponentialBias(0.01), 0)

    def test_size_fluctuates_not_constant(self):
        """The paper's observation: redistribution cannot hold a constant
        size."""
        sampler = GeneralBiasSampler(ExponentialBias(0.01), 50, rng=5)
        sizes = set()
        for i in range(2000):
            sampler.offer(i)
            if i > 1000:
                sizes.add(sampler.size)
        assert len(sizes) > 3
