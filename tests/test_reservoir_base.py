"""Tests for the shared ReservoirSampler machinery (storage, ops log)."""

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.reservoir import SampleEntry
from repro.core.unbiased import UnbiasedReservoir
from repro.core.variable import VariableReservoir


class TestStorageInvariants:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UnbiasedReservoir(20, rng=0),
            lambda: ExponentialReservoir(capacity=20, rng=0),
            lambda: VariableReservoir(lam=1e-3, capacity=20, rng=0),
        ],
    )
    def test_counters_consistent(self, factory):
        res = factory()
        res.extend(range(5000))
        assert res.size == res.insertions - res.ejections
        assert res.offers == 5000
        assert res.t == 5000
        assert res.size <= res.capacity

    def test_arrivals_unique_and_in_range(self):
        res = ExponentialReservoir(capacity=50, rng=1)
        res.extend(range(2000))
        arrivals = res.arrival_indices()
        assert len(set(arrivals.tolist())) == len(arrivals)
        assert arrivals.min() >= 1
        assert arrivals.max() <= res.t

    def test_payloads_track_arrivals(self):
        """Payload i was offered at arrival i+1 (0-based range payloads)."""
        res = ExponentialReservoir(capacity=50, rng=2)
        res.extend(range(1000))
        for entry in res.entries():
            assert entry.payload == entry.arrival - 1

    def test_ages_non_negative(self):
        res = UnbiasedReservoir(10, rng=3)
        res.extend(range(100))
        assert (res.ages() >= 0).all()

    def test_len_and_iter(self):
        res = UnbiasedReservoir(10, rng=4)
        res.extend(range(5))
        assert len(res) == 5
        assert sorted(res) == [0, 1, 2, 3, 4]

    def test_payloads_returns_copy(self):
        res = UnbiasedReservoir(10, rng=5)
        res.extend(range(5))
        copy = res.payloads()
        copy.append("junk")
        assert len(res.payloads()) == 5

    def test_entries_are_sample_entries(self):
        res = UnbiasedReservoir(5, rng=6)
        res.extend(range(3))
        for e in res.entries():
            assert isinstance(e, SampleEntry)


class TestMutationLog:
    def test_append_ops_recorded(self):
        res = UnbiasedReservoir(5, rng=0)
        res.offer("a")
        assert res.last_ops == [("append", 0)]
        res.offer("b")
        assert res.last_ops == [("append", 1)]

    def test_rejected_offer_logs_nothing(self):
        res = UnbiasedReservoir(2, rng=0)
        res.extend(range(2))
        # Find an offer that is rejected and check the log is empty then.
        rejected_seen = False
        for i in range(200):
            inserted = res.offer(i)
            if not inserted:
                assert res.last_ops == []
                rejected_seen = True
                break
        assert rejected_seen

    def test_replace_op_names_slot(self):
        res = ExponentialReservoir(capacity=2, rng=1)
        res.extend(range(2))
        res.offer("x")
        ops = res.last_ops
        assert len(ops) == 1
        kind, slot = ops[0]
        assert kind == "replace"
        assert res.payloads()[slot] == "x"

    def test_compact_op_on_variable_phase(self):
        """VariableReservoir's phase ejection logs a compact record."""
        res = VariableReservoir(lam=1e-3, capacity=10, rng=2)
        saw_compact = False
        for i in range(200):
            res.offer(i)
            if any(op[0] == "compact" for op in res.last_ops):
                saw_compact = True
                break
        assert saw_compact

    def test_ops_cleared_between_offers(self):
        res = UnbiasedReservoir(3, rng=3)
        res.offer(1)
        res.offer(2)
        assert res.last_ops == [("append", 1)]  # only the latest offer

    def test_eject_random_zero_is_noop(self):
        res = UnbiasedReservoir(5, rng=4)
        res.extend(range(5))
        assert res._eject_random(0) == []
        assert res.size == 5

    def test_eject_random_returns_entries(self):
        res = UnbiasedReservoir(5, rng=5)
        res.extend(range(5))
        evicted = res._eject_random(2)
        assert len(evicted) == 2
        assert res.size == 3
        remaining = set(res.payloads())
        for e in evicted:
            assert e.payload not in remaining


class TestInclusionVectorFallback:
    def test_base_loop_matches_scalar(self):
        """The generic vectorized fallback must agree with the scalar."""
        res = VariableReservoir(lam=1e-3, capacity=20, rng=6)
        res.extend(range(500))
        # Use the base-class fallback path via ReservoirSampler directly.
        from repro.core.reservoir import ReservoirSampler

        r = np.array([10, 100, 499])
        fallback = ReservoirSampler.inclusion_probabilities(res, r)
        np.testing.assert_allclose(
            fallback, [res.inclusion_probability(int(x)) for x in r]
        )


class TestExtendContract:
    """`extend` returns the *stored* count, not the reservoir's net growth."""

    def test_exponential_counts_every_offer_even_when_ejecting(self):
        res = ExponentialReservoir(capacity=10, rng=7)
        assert res.extend(range(50)) == 50  # every offer stored
        assert res.size == 10  # ... but growth is bounded by capacity
        assert res.insertions - res.ejections == res.size

    def test_unbiased_counts_only_accepted_offers(self):
        res = UnbiasedReservoir(10, rng=8)
        stored = res.extend(range(500))
        assert stored == res.insertions
        assert 10 <= stored < 500

    def test_offer_many_follows_same_contract(self):
        res = ExponentialReservoir(capacity=10, rng=9)
        assert res.offer_many(range(50)) == 50
        assert res.size == 10


class TestEjectRandomMultiVictim:
    """The count > 1 path of `_eject_random` (bulk compaction)."""

    def test_victims_unique_and_counters_move(self):
        res = UnbiasedReservoir(20, rng=10)
        res.extend(range(20))
        ejections_before = res.ejections
        evicted = res._eject_random(7)
        assert len(evicted) == 7
        arrivals = [e.arrival for e in evicted]
        assert len(set(arrivals)) == 7  # without replacement
        assert res.size == 13
        assert res.ejections == ejections_before + 7
        # Survivors + evicted partition the original residents.
        assert set(res.payloads()) | {e.payload for e in evicted} == set(
            range(20)
        )
        assert not set(res.payloads()) & {e.payload for e in evicted}

    def test_count_capped_at_size(self):
        res = UnbiasedReservoir(5, rng=11)
        res.extend(range(5))
        evicted = res._eject_random(99)
        assert len(evicted) == 5
        assert res.size == 0

    def test_records_compact_for_consumers(self):
        res = UnbiasedReservoir(20, rng=12)
        res.extend(range(20))
        res._eject_random(4)
        assert ("compact",) in res.last_ops

    def test_knn_consumer_resnapshots_after_out_of_band_eject(self):
        """Counter-based sync: a direct multi-victim ejection must trigger
        a mirror rebuild at the next prediction."""
        from repro.mining.knn import ReservoirKnnClassifier
        from repro.streams.point import StreamPoint

        rng = np.random.default_rng(13)
        res = UnbiasedReservoir(15, rng=13)
        clf = ReservoirKnnClassifier(res, k=1)
        for i in range(15):
            clf.observe(StreamPoint(i + 1, rng.normal(size=2), label=i % 2))
        res._eject_random(10)  # out-of-band: classifier not notified
        probe = StreamPoint(99, np.zeros(2), label=None)
        prediction = clf.predict(probe)
        fresh = ReservoirKnnClassifier(res, k=1)
        assert prediction == fresh.predict(probe)
        # The mirror now reflects the shrunken reservoir, not 15 rows.
        assert clf._rows == res.size


class TestInclusionAtStreamStartAllSamplers:
    """Regression: an empty inclusion query at t = 0 must work everywhere
    (ZeroDivisionError in the unbiased samplers before the fix)."""

    def test_empty_vector_before_any_offer(self):
        from repro.core import (
            ChainSampler,
            ExponentialBias,
            GeneralBiasSampler,
            SkipUnbiasedReservoir,
            SpaceConstrainedReservoir,
            TimeDecayReservoir,
            TimestampedExponentialReservoir,
            WindowBuffer,
        )

        fresh = [
            UnbiasedReservoir(10, rng=0),
            SkipUnbiasedReservoir(10, rng=0),
            ExponentialReservoir(capacity=10, rng=0),
            SpaceConstrainedReservoir(lam=1e-2, capacity=50, rng=0),
            VariableReservoir(lam=1e-2, capacity=50, rng=0),
            WindowBuffer(10, rng=0),
            ChainSampler(5, window=20, rng=0),
            GeneralBiasSampler(ExponentialBias(1e-2), target_size=10, rng=0),
            TimeDecayReservoir(lam_time=0.1, capacity=10, rng=0),
        ]
        for sampler in fresh:
            out = sampler.inclusion_probabilities(np.array([]))
            assert out.shape == (0,), type(sampler).__name__
        # The timestamped design is (timestamp, index)-addressed.
        ts = TimestampedExponentialReservoir(lam_time=0.1, capacity=10, rng=0)
        assert ts.inclusion_probabilities_at(np.array([])).shape == (0,)
