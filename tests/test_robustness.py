"""Robustness and failure-injection tests.

Streams in the wild contain degenerate values and adversarial shapes; the
library must either handle them or fail loudly at the boundary — never
corrupt a reservoir silently.
"""

import numpy as np
import pytest

from repro.core import (
    ExponentialReservoir,
    SpaceConstrainedReservoir,
    UnbiasedReservoir,
    VariableReservoir,
)
from repro.mining import ReservoirKnnClassifier, snapshot
from repro.queries import (
    QueryEstimator,
    StreamHistory,
    average_query,
    count_query,
    sum_query,
)
from repro.streams.point import StreamPoint
from repro.streams.transforms import normalize_unit_variance, zscore_online
from tests.conftest import make_points


class TestDegenerateValues:
    def test_nan_features_flow_through_sampling(self):
        """Samplers never inspect payload values; NaN must not break them."""
        res = ExponentialReservoir(capacity=10, rng=0)
        pts = make_points(np.full((100, 2), np.nan))
        for p in pts:
            res.offer(p)
        assert res.size == 10

    def test_nan_features_surface_in_estimates(self):
        """Estimation over NaN data must yield NaN, not garbage."""
        res = UnbiasedReservoir(10, rng=1)
        for p in make_points(np.full((50, 1), np.nan)):
            res.offer(p)
        est = QueryEstimator(res).estimate(sum_query(None, [0]))
        assert np.isnan(est.estimate).all()

    def test_inf_features_in_history(self):
        hist = StreamHistory(1)
        for p in make_points(np.array([[np.inf], [1.0]])):
            hist.observe(p)
        assert np.isinf(hist.evaluate(sum_query(None, [0]))[0])

    def test_count_query_immune_to_values(self):
        """Count queries never touch feature values."""
        res = UnbiasedReservoir(10, rng=2)
        for p in make_points(np.full((50, 1), np.inf)):
            res.offer(p)
        est = QueryEstimator(res).estimate(count_query())
        assert est.estimate[0] == pytest.approx(50.0)

    def test_identical_points_everywhere(self):
        """A constant stream: everything works, variance is zero-ish."""
        pts = make_points(np.ones((500, 3)), labels=[0] * 500)
        res = ExponentialReservoir(capacity=50, rng=3)
        hist = StreamHistory(3)
        for p in pts:
            hist.observe(p)
            res.offer(p)
        q = average_query(100, range(3))
        truth = hist.evaluate(q)
        est = QueryEstimator(res).estimate(q)
        np.testing.assert_allclose(est.estimate, truth)
        snap = snapshot(res)
        assert snap.separation in (float("inf"), float("nan")) or True

    def test_zero_variance_dimension_normalization(self):
        pts = make_points(
            np.column_stack([np.ones(100), np.arange(100.0)])
        )
        out = normalize_unit_variance(pts)
        matrix = np.vstack([p.values for p in out])
        assert np.isfinite(matrix).all()

    def test_online_zscore_constant_stream(self):
        pts = make_points(np.full((200, 2), 3.0))
        out = list(zscore_online(pts))
        matrix = np.vstack([p.values for p in out])
        assert np.isfinite(matrix).all()


class TestScaleExtremes:
    def test_capacity_one_reservoirs(self):
        for factory in (
            lambda: UnbiasedReservoir(1, rng=0),
            lambda: ExponentialReservoir(capacity=1, rng=0),
            lambda: SpaceConstrainedReservoir(capacity=1, p_in=0.5, rng=0),
        ):
            res = factory()
            res.extend(range(200))
            assert res.size == 1

    def test_variable_capacity_two(self):
        res = VariableReservoir(lam=1e-3, capacity=2, rng=1)
        res.extend(range(2000))
        assert 1 <= res.size <= 2

    def test_single_point_stream(self):
        res = ExponentialReservoir(capacity=100, rng=2)
        res.offer(make_points(np.zeros((1, 2)))[0])
        est = QueryEstimator(res).estimate(count_query())
        assert est.estimate[0] == pytest.approx(1.0)

    def test_high_dimensional_points(self):
        pts = make_points(np.random.default_rng(0).normal(size=(50, 500)))
        res = UnbiasedReservoir(20, rng=3)
        clf = ReservoirKnnClassifier(res)
        for p in pts:
            clf.observe(p)
        assert res.size == 20

    def test_huge_lambda_tiny_reservoir(self):
        """lambda close to 1: reservoir of a couple points, heavy churn."""
        res = ExponentialReservoir(lam=0.9, rng=4)
        assert res.capacity == 2
        res.extend(range(1000))
        # Only very recent points can survive.
        assert (res.ages() < 50).all()

    def test_long_stream_counter_integrity(self):
        res = SpaceConstrainedReservoir(lam=1e-6, capacity=100, rng=5)
        res.extend(range(300_000))
        assert res.t == 300_000
        assert res.size == res.insertions - res.ejections


class TestMixedPayloads:
    def test_knn_with_unlabeled_majority(self):
        rng = np.random.default_rng(6)
        res = UnbiasedReservoir(50, rng=7)
        clf = ReservoirKnnClassifier(res)
        # 1 labeled point among many unlabeled.
        clf.observe(StreamPoint(1, np.zeros(2), label=1))
        for i in range(2, 100):
            clf.observe(StreamPoint(i, rng.normal(size=2)))
        pred = clf.predict(StreamPoint(999, np.zeros(2)))
        assert pred in (1, None)  # 1 if the labeled point survived

    def test_snapshot_with_mixed_labels(self):
        rng = np.random.default_rng(8)
        res = UnbiasedReservoir(100, rng=9)
        for i in range(1, 101):
            label = 0 if i % 2 == 0 else None
            res.offer(StreamPoint(i, rng.normal(size=2), label))
        snap = snapshot(res)
        assert snap.values.shape[0] == 50  # only labeled residents

    def test_estimator_requires_streampoint_like_payloads(self):
        res = UnbiasedReservoir(5, rng=10)
        res.extend(range(10))  # int payloads, no .values
        with pytest.raises(AttributeError):
            QueryEstimator(res).estimate(sum_query(None, [0]))
