"""Sharded-engine correctness: seeded equivalence, folds, and routing.

The load-bearing guarantees:

* At ``W = 1`` the facade is *byte-identical* to the serial sampler it
  wraps — same residents, same counters, same RNG state — for both
  partitioners and both shard families (the facade's only job is
  routing, and with one worker there is nothing to route).
* With the same seed the facade is deterministic, and ``fold()`` at the
  facade's own capacity is a pure union of the shard samples.
* Global arrival bookkeeping survives partitioning: every resident's
  global index identifies the original stream position.
* The process backend reaches exactly the inline backend's state, and a
  mid-stream facade snapshot restores into an equivalent engine.

Equivalence runs use matching ``offer_many`` block boundaries on both
sides: the virtual-slot kernel re-canonicalizes slot order per block
during prefill, so block boundaries are part of the byte-level contract
(the *distribution* is boundary-invariant; the storage order is not).
"""

import numpy as np
import pytest

from repro.core import ExponentialReservoir, SpaceConstrainedReservoir
from repro.shard import (
    ArrayExponentialShard,
    HashByKeyPartitioner,
    RoundRobinPartitioner,
    ShardedReservoir,
)

BLOCK = 97  # deliberately not a divisor of the stream length


def _stream(length):
    return list(range(1000, 1000 + length))


def _feed_blocks(sampler, points):
    for lo in range(0, len(points), BLOCK):
        sampler.offer_many(points[lo : lo + BLOCK])


def _worker_rng(seed, index, workers=1):
    """The generator the facade hands worker ``index`` for this seed."""
    return np.random.default_rng(
        np.random.SeedSequence(seed).spawn(workers + 1)[index]
    )


class TestSingleWorkerEquivalence:
    @pytest.mark.parametrize("partitioner_cls", [
        RoundRobinPartitioner, HashByKeyPartitioner,
    ])
    def test_exponential_w1_matches_serial(self, partitioner_cls):
        points = _stream(700)
        serial = ExponentialReservoir(capacity=48, rng=_worker_rng(11, 0))
        fac = ShardedReservoir(
            capacity=48, workers=1, rng=11,
            partitioner=partitioner_cls(1),
        )
        _feed_blocks(serial, points)
        _feed_blocks(fac, points)
        assert fac.payloads() == serial.payloads()
        assert list(fac.arrival_indices()) == list(serial.arrival_indices())
        assert fac.t == serial.t
        shard = fac._current_workers()[0].sampler
        assert shard.rng.bit_generator.state == serial.rng.bit_generator.state
        assert (shard.offers, shard.insertions, shard.ejections) == (
            serial.offers, serial.insertions, serial.ejections
        )

    def test_space_constrained_w1_matches_serial(self):
        points = _stream(900)
        serial = SpaceConstrainedReservoir(
            capacity=40, p_in=0.5, rng=_worker_rng(5, 0)
        )
        fac = ShardedReservoir(
            capacity=40, workers=1, lam=0.5 / 40,
            family="space_constrained", rng=5,
        )
        _feed_blocks(serial, points)
        _feed_blocks(fac, points)
        assert fac.payloads() == serial.payloads()
        assert list(fac.arrival_indices()) == list(serial.arrival_indices())

    def test_array_shard_matches_exponential_reservoir(self):
        """The scatter kernel IS ExponentialReservoir, observably."""
        points = _stream(600)
        reference = ExponentialReservoir(
            capacity=32, rng=np.random.default_rng(9)
        )
        shard = ArrayExponentialShard(
            capacity=32, rng=np.random.default_rng(9)
        )
        _feed_blocks(reference, points)
        _feed_blocks(shard, points)
        assert shard.payloads() == reference.payloads()
        assert list(shard.arrival_indices()) == list(
            reference.arrival_indices()
        )
        assert (
            shard.rng.bit_generator.state
            == reference.rng.bit_generator.state
        )


class TestShardedFacade:
    def test_same_seed_same_sample(self):
        points = _stream(800)
        a = ShardedReservoir(capacity=48, workers=4, rng=21)
        b = ShardedReservoir(capacity=48, workers=4, rng=21)
        _feed_blocks(a, points)
        _feed_blocks(b, points)
        assert a.payloads() == b.payloads()
        assert list(a.arrival_indices()) == list(b.arrival_indices())

    def test_global_arrivals_identify_stream_positions(self):
        fac = ShardedReservoir(capacity=48, workers=4, rng=2)
        fac.offer_many(range(1000, 1600))
        for entry in fac.entries():
            # Payload 1000 + i arrived as global index i + 1.
            assert entry.payload - 1000 + 1 == entry.arrival

    def test_per_item_offer_matches_offer_many_after_flush(self):
        """Buffered singles drain through the same kernel path."""
        points = _stream(500)
        singles = ShardedReservoir(
            capacity=48, workers=4, rng=13, flush_size=10_000
        )
        for p in points:
            singles.offer(p)
        singles.flush()
        batched = ShardedReservoir(capacity=48, workers=4, rng=13)
        batched.offer_many(points)  # one block == one flushed buffer
        assert singles.payloads() == batched.payloads()

    def test_hash_partitioner_routes_by_key(self):
        part = HashByKeyPartitioner(4)
        fac = ShardedReservoir(
            capacity=48, workers=4, rng=8, partitioner=part
        )
        fac.offer_many(_stream(400))
        for w, worker in enumerate(fac._current_workers()):
            for payload in worker.sampler.payloads():
                assert part.assign(0, payload) == w

    def test_inclusion_probability_round_robin_exact(self):
        fac = ShardedReservoir(capacity=48, workers=4, rng=0)
        fac.offer_many(range(240))
        m, W, t = 12, 4, 240
        r = np.arange(1, t + 1)
        expected = (1.0 - 1.0 / m) ** ((t - r) // W)
        assert np.allclose(fac.inclusion_probabilities(r), expected)
        assert fac.inclusion_probability(t) == 1.0
        with pytest.raises(ValueError):
            fac.inclusion_probability(0)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="multiple"):
            ShardedReservoir(capacity=50, workers=4)
        with pytest.raises(ValueError, match="family"):
            ShardedReservoir(capacity=48, workers=4, family="nope")
        with pytest.raises(ValueError, match="requires lam"):
            ShardedReservoir(
                capacity=48, workers=4, family="space_constrained"
            )
        with pytest.raises(ValueError, match="exceeds the natural size"):
            ShardedReservoir(
                capacity=48, workers=4, lam=0.5,
                family="space_constrained",
            )
        with pytest.raises(ValueError, match="partitioner routes"):
            ShardedReservoir(
                capacity=48, workers=4,
                partitioner=RoundRobinPartitioner(2),
            )


class TestFold:
    def test_fold_at_own_capacity_is_pure_union(self):
        fac = ShardedReservoir(capacity=48, workers=4, rng=17)
        fac.offer_many(_stream(600))
        folded = fac.fold()
        assert sorted(folded.payloads()) == sorted(fac.payloads())
        assert folded.capacity == 48
        # Union of full shards on the global axis keeps the global rate.
        assert folded.lam == pytest.approx(fac.lam)

    def test_fold_to_smaller_capacity_thins(self):
        fac = ShardedReservoir(capacity=48, workers=4, rng=17)
        fac.offer_many(_stream(600))
        folded = fac.fold(capacity=12)
        assert folded.capacity == 12
        assert folded.size <= 12
        assert folded.p_in == pytest.approx(12 * fac.lam)
        assert set(folded.payloads()) <= set(fac.payloads())

    def test_fold_arrivals_stay_on_global_axis(self):
        fac = ShardedReservoir(capacity=48, workers=4, rng=29)
        fac.offer_many(range(1000, 1600))
        folded = fac.fold()
        for arrival, payload in zip(
            folded.arrival_indices(), folded.payloads()
        ):
            assert int(arrival) == payload - 1000 + 1

    def test_fold_is_seeded_and_repeatable(self):
        def build():
            fac = ShardedReservoir(capacity=48, workers=4, rng=31)
            fac.offer_many(_stream(600))
            return fac

        assert sorted(build().fold(capacity=12).payloads()) == sorted(
            build().fold(capacity=12).payloads()
        )


class TestBackendsAndSnapshots:
    def test_process_backend_state_identical_to_inline(self):
        points = _stream(500)
        inline = ShardedReservoir(capacity=48, workers=4, rng=19)
        _feed_blocks(inline, points)
        with ShardedReservoir(
            capacity=48, workers=4, rng=19, backend="process"
        ) as proc:
            _feed_blocks(proc, points)
            assert proc.worker_states() == inline.worker_states()
            assert proc.payloads() == inline.payloads()

    def test_facade_snapshot_restore_continue_matches(self):
        points = _stream(800)
        uninterrupted = ShardedReservoir(capacity=48, workers=4, rng=23)
        checkpointed = ShardedReservoir(capacity=48, workers=4, rng=23)
        _feed_blocks(uninterrupted, points[:400])
        _feed_blocks(checkpointed, points[:400])
        restored = ShardedReservoir.from_state_dict(
            checkpointed.state_dict()
        )
        _feed_blocks(uninterrupted, points[400:])
        _feed_blocks(restored, points[400:])
        assert restored.payloads() == uninterrupted.payloads()
        assert list(restored.arrival_indices()) == list(
            uninterrupted.arrival_indices()
        )
        assert restored.t == uninterrupted.t
        # The fold stream also resumes identically.
        assert sorted(restored.fold(capacity=12).payloads()) == sorted(
            uninterrupted.fold(capacity=12).payloads()
        )

    def test_snapshot_rejects_foreign_state(self):
        with pytest.raises(ValueError, match="snapshot"):
            ShardedReservoir.from_state_dict({"class": "Other"})
