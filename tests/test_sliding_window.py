"""Tests for the sliding-window baselines (WindowBuffer, ChainSampler)."""

import numpy as np
import pytest

from repro.core.sliding_window import ChainSampler, WindowBuffer


class TestWindowBuffer:
    def test_holds_exactly_the_window(self):
        buf = WindowBuffer(10, rng=0)
        buf.extend(range(25))
        assert sorted(buf.payloads()) == list(range(15, 25))

    def test_partial_window(self):
        buf = WindowBuffer(10, rng=0)
        buf.extend(range(4))
        assert sorted(buf.payloads()) == [0, 1, 2, 3]

    def test_arrivals_match_window(self):
        buf = WindowBuffer(5, rng=0)
        buf.extend(range(12))
        assert sorted(buf.arrival_indices().tolist()) == [8, 9, 10, 11, 12]

    def test_fifo_eviction_order(self):
        buf = WindowBuffer(3, rng=0)
        for i in range(7):
            buf.offer(i)
            ages = buf.ages()
            assert ages.max() <= 2  # nothing older than the window survives

    def test_inclusion_probability_indicator(self):
        buf = WindowBuffer(10, rng=0)
        buf.extend(range(30))
        assert buf.inclusion_probability(30) == 1.0
        assert buf.inclusion_probability(21) == 1.0
        assert buf.inclusion_probability(20) == 0.0
        assert buf.inclusion_probability(1) == 0.0

    def test_every_offer_inserted(self):
        buf = WindowBuffer(10, rng=0)
        assert buf.extend(range(100)) == 100


class TestChainSampler:
    def test_size_counts_nonempty_chains(self):
        cs = ChainSampler(20, window=100, rng=0)
        cs.extend(range(500))
        assert cs.size == 20  # all chains populated after warm-up

    def test_samples_always_inside_window(self):
        cs = ChainSampler(10, window=50, rng=1)
        for i in range(300):
            cs.offer(i)
            for entry in cs.entries():
                assert entry.arrival > cs.t - 50
                assert entry.arrival <= cs.t

    @pytest.mark.statistical
    def test_uniform_over_window(self):
        """Each slot holds a uniform member of the window (Babcock et al.)."""
        window, reps = 40, 3000
        counts = np.zeros(window)
        for seed in range(reps):
            cs = ChainSampler(1, window=window, rng=seed)
            cs.extend(range(200))
            entry = cs.entries()[0]
            counts[cs.t - entry.arrival] += 1
        freq = counts / reps
        # Each age has probability 1/window = 0.025; sd ~ 0.0029.
        np.testing.assert_allclose(freq, 1 / window, atol=0.012)

    @pytest.mark.statistical
    def test_mean_age_is_half_window(self):
        window = 100
        ages = []
        for seed in range(50):
            cs = ChainSampler(20, window=window, rng=seed)
            cs.extend(range(1000))
            ages.extend((cs.t - cs.arrival_indices()).tolist())
        assert np.mean(ages) == pytest.approx((window - 1) / 2, rel=0.1)

    def test_memory_footprint_is_bounded(self):
        """Expected chain length is O(1); total links stay near capacity."""
        cs = ChainSampler(50, window=1000, rng=2)
        cs.extend(range(20_000))
        assert cs.memory_footprint() < 50 * 8  # far below window size

    def test_inclusion_probability_model(self):
        cs = ChainSampler(10, window=100, rng=3)
        cs.extend(range(500))
        assert cs.inclusion_probability(500) == pytest.approx(0.01)
        assert cs.inclusion_probability(300) == 0.0

    def test_inclusion_before_window_full(self):
        cs = ChainSampler(5, window=100, rng=4)
        cs.extend(range(20))
        assert cs.inclusion_probability(10) == pytest.approx(1 / 20)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            ChainSampler(5, window=0)

    def test_payloads_match_entries(self):
        cs = ChainSampler(5, window=50, rng=5)
        cs.extend(range(200))
        assert cs.payloads() == [e.payload for e in cs.entries()]

    def test_iteration(self):
        cs = ChainSampler(5, window=50, rng=6)
        cs.extend(range(100))
        assert list(cs) == cs.payloads()


class TestChainSamplerBaseApi:
    def test_fill_fraction_uses_overridden_size(self):
        """The base-class fill metrics must reflect chain storage."""
        cs = ChainSampler(10, window=100, rng=20)
        cs.extend(range(500))
        assert cs.fill_fraction == cs.size / cs.capacity
        assert cs.fill_fraction > 0.0
        assert cs.is_full == (cs.size >= cs.capacity)

    def test_ages_consistent_with_entries(self):
        cs = ChainSampler(5, window=50, rng=21)
        cs.extend(range(200))
        ages = cs.ages()
        assert ages.shape[0] == cs.size
        assert (ages >= 0).all()
        assert (ages < 50).all()
