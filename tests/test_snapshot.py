"""Snapshot/restore round-trips for every sampler family.

The contract under test: ``state_dict()`` captures the *complete* sampler
state — storage, counters, family-specific extras, and the RNG bit
generator — so that restoring mid-stream and continuing is
indistinguishable from never having stopped. Each family from the
conformance registry is checked by comparing the canonical observable
state (payloads, arrivals, counters, RNG state) of an uninterrupted run
against a snapshot -> pickle -> restore -> continue run over the same
suffix.
"""

import pickle

import numpy as np
import pytest

from repro.core import from_state_dict
from repro.verify.registry import SAMPLER_FAMILIES

PREFIX = 137
SUFFIX = 211


def _canon(sampler):
    """Canonical observable state: identity, storage, counters, RNG."""
    return {
        "class": type(sampler).__name__,
        "capacity": sampler.capacity,
        "t": sampler.t,
        "offers": sampler.offers,
        "insertions": sampler.insertions,
        "ejections": sampler.ejections,
        "payloads": list(sampler.payloads()),
        "arrivals": [int(a) for a in sampler.arrival_indices()],
        "rng": sampler.rng.bit_generator.state,
    }


def _feed(sampler, start, count):
    for i in range(start, start + count):
        sampler.offer(i)


@pytest.mark.parametrize("family", sorted(SAMPLER_FAMILIES))
def test_snapshot_restore_continue_matches_uninterrupted(family):
    make = SAMPLER_FAMILIES[family]
    uninterrupted = make(np.random.default_rng(42))
    checkpointed = make(np.random.default_rng(42))
    _feed(uninterrupted, 0, PREFIX)
    _feed(checkpointed, 0, PREFIX)

    # Serialize through pickle (the shard transport does the same).
    state = pickle.loads(pickle.dumps(checkpointed.state_dict()))
    restored = from_state_dict(state)
    assert _canon(restored) == _canon(uninterrupted)

    _feed(uninterrupted, PREFIX, SUFFIX)
    _feed(restored, PREFIX, SUFFIX)
    assert _canon(restored) == _canon(uninterrupted)


@pytest.mark.parametrize("family", sorted(SAMPLER_FAMILIES))
def test_snapshot_is_isolated_from_live_mutation(family):
    sampler = SAMPLER_FAMILIES[family](np.random.default_rng(7))
    _feed(sampler, 0, PREFIX)
    state = sampler.state_dict()
    frozen = pickle.dumps(state)
    _feed(sampler, PREFIX, SUFFIX)
    assert pickle.dumps(state) == frozen, (
        "state_dict must deep-copy: mutating the live sampler changed "
        "a previously taken snapshot"
    )
    restored = from_state_dict(state)
    assert restored.t == PREFIX


@pytest.mark.parametrize("family", sorted(SAMPLER_FAMILIES))
def test_snapshot_of_empty_sampler(family):
    sampler = SAMPLER_FAMILIES[family](np.random.default_rng(0))
    restored = from_state_dict(sampler.state_dict())
    assert restored.t == 0
    assert list(restored.payloads()) == []
    _feed(restored, 0, 25)
    assert restored.t == 25


def test_restore_unknown_class_rejected():
    sampler = SAMPLER_FAMILIES["exponential"](np.random.default_rng(0))
    state = sampler.state_dict()
    state["class"] = "NoSuchSampler"
    with pytest.raises(ValueError, match="NoSuchSampler"):
        from_state_dict(state)


def test_state_dict_is_pickle_and_json_safe():
    """Snapshots must cross process boundaries; spot-check key types."""
    import json

    for family, make in SAMPLER_FAMILIES.items():
        sampler = make(np.random.default_rng(3))
        _feed(sampler, 0, 60)
        state = sampler.state_dict()
        pickle.dumps(state)
        # Everything except the payloads themselves should be JSON-safe.
        json.dumps({k: v for k, v in state.items() if k != "payloads"},
                   default=int)


@pytest.mark.parametrize("family", sorted(SAMPLER_FAMILIES))
def test_snapshot_carries_version_field(family):
    from repro.core import SNAPSHOT_VERSION

    sampler = SAMPLER_FAMILIES[family](np.random.default_rng(0))
    assert sampler.state_dict()["version"] == SNAPSHOT_VERSION


def test_restore_unknown_version_rejected():
    """A snapshot from a newer release must fail loudly, not half-load."""
    sampler = SAMPLER_FAMILIES["exponential"](np.random.default_rng(0))
    state = sampler.state_dict()
    state["version"] = 99
    with pytest.raises(ValueError, match="version 99"):
        from_state_dict(state)


def test_restore_versionless_legacy_snapshot_accepted():
    """Snapshots written before the version field default to version 1."""
    sampler = SAMPLER_FAMILIES["exponential"](np.random.default_rng(0))
    _feed(sampler, 0, 30)
    state = sampler.state_dict()
    del state["version"]
    restored = from_state_dict(state)
    assert restored.t == 30


def test_sharded_restore_unknown_version_rejected():
    from repro.shard import ShardedReservoir

    facade = ShardedReservoir(capacity=8, workers=2, rng=0)
    facade.offer_many(list(range(40)))
    state = facade.state_dict()
    assert state["version"] == 1
    state["version"] = 99
    with pytest.raises(ValueError, match="version 99"):
        ShardedReservoir.from_state_dict(state)
