"""Tests for Algorithm 3.1 (SpaceConstrainedReservoir) — Theorems 3.1/3.2."""

import math

import numpy as np
import pytest

from repro.core.biased import ExponentialReservoir
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.theory import (
    expected_fill_trajectory,
    expected_points_to_fill,
)


class TestConstruction:
    def test_p_in_derived_from_lam_and_capacity(self):
        res = SpaceConstrainedReservoir(lam=1e-4, capacity=1000)
        assert res.p_in == pytest.approx(0.1)

    def test_capacity_derived_from_lam_and_p_in(self):
        res = SpaceConstrainedReservoir(lam=1e-3, p_in=0.5)
        assert res.capacity == 500

    def test_lam_derived_from_capacity_and_p_in(self):
        res = SpaceConstrainedReservoir(capacity=200, p_in=0.4)
        assert res.lam == pytest.approx(0.002)

    def test_capacity_above_natural_size_raises(self):
        with pytest.raises(ValueError, match="exceeds the natural size"):
            SpaceConstrainedReservoir(lam=1e-2, capacity=500)

    def test_requires_enough_parameters(self):
        with pytest.raises(ValueError):
            SpaceConstrainedReservoir(lam=1e-3)
        with pytest.raises(ValueError):
            SpaceConstrainedReservoir(capacity=100)

    def test_zero_p_in_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SpaceConstrainedReservoir(capacity=100, p_in=0.0)

    def test_p_in_above_one_rejected(self):
        with pytest.raises(ValueError, match="must lie in"):
            SpaceConstrainedReservoir(capacity=100, p_in=1.5)


class TestPolicy:
    def test_insertion_rate_matches_p_in(self):
        res = SpaceConstrainedReservoir(capacity=100, p_in=0.25, rng=0)
        inserted = res.extend(range(20_000))
        assert inserted / 20_000 == pytest.approx(0.25, abs=0.02)

    def test_size_bounded(self):
        res = SpaceConstrainedReservoir(capacity=50, p_in=0.5, rng=1)
        res.extend(range(10_000))
        assert res.size <= 50

    def test_p_in_one_behaves_like_algorithm_2_1(self):
        """Algorithm 3.1 with p_in = 1 degenerates to Algorithm 2.1."""
        sc = SpaceConstrainedReservoir(capacity=100, p_in=1.0, rng=0)
        assert sc.extend(range(1000)) == 1000  # deterministic insertion
        assert sc.lam == pytest.approx(1 / 100)
        exp = ExponentialReservoir(capacity=100, rng=0)
        exp.extend(range(1000))
        # Same rng, same decision sequence => byte-identical reservoirs.
        assert sc.payloads() == exp.payloads()

    def test_fill_is_slow_for_small_p_in(self):
        """Theorem 3.2 consequence: the reservoir is not full even after
        many arrivals when p_in is small."""
        res = SpaceConstrainedReservoir(lam=1e-5, capacity=1000, rng=2)
        res.extend(range(100_000))
        assert res.size < 1000  # expectation ~632

    def test_fill_trajectory_matches_theory(self):
        """Mean fill across seeds tracks n (1 - (1 - p/n)^t)."""
        n, p_in, t = 200, 0.05, 4000
        sizes = []
        for seed in range(30):
            res = SpaceConstrainedReservoir(capacity=n, p_in=p_in, rng=seed)
            res.extend(range(t))
            sizes.append(res.size)
        expected = float(expected_fill_trajectory(n, p_in, t))
        assert np.mean(sizes) == pytest.approx(expected, rel=0.08)

    def test_time_to_fill_matches_theorem_3_2(self):
        """Mean arrivals-to-full across seeds ~ (n/p_in) H_n."""
        n, p_in = 30, 0.5
        fills = []
        for seed in range(40):
            res = SpaceConstrainedReservoir(capacity=n, p_in=p_in, rng=seed)
            count = 0
            while not res.is_full:
                res.offer(count)
                count += 1
            fills.append(count)
        expected = expected_points_to_fill(n, p_in)
        assert np.mean(fills) == pytest.approx(expected, rel=0.15)


class TestInclusionModel:
    def test_matches_theorem_3_1(self):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=500, rng=0)
        res.extend(range(2000))
        assert res.inclusion_probability(2000) == pytest.approx(0.5)
        assert res.inclusion_probability(1000) == pytest.approx(
            0.5 * math.exp(-1.0)
        )

    def test_vectorized_matches_scalar(self):
        res = SpaceConstrainedReservoir(lam=1e-3, capacity=500, rng=0)
        res.extend(range(2000))
        r = np.array([1, 500, 1500, 2000])
        np.testing.assert_allclose(
            res.inclusion_probabilities(r),
            [res.inclusion_probability(int(x)) for x in r],
        )

    def test_survival_probability_exact_form(self):
        res = SpaceConstrainedReservoir(capacity=100, p_in=0.2)
        assert res.survival_probability(50) == pytest.approx(
            (1 - 0.2 / 100) ** 50
        )

    @pytest.mark.statistical
    def test_empirical_inclusion_matches_model(self):
        """Monte-Carlo check of Theorem 3.1 at reference ages."""
        n, p_in, t, reps = 50, 0.5, 800, 600
        lam = p_in / n
        target_ages = np.array([0, 20, 60, 150])
        hits = np.zeros(len(target_ages))
        for seed in range(reps):
            res = SpaceConstrainedReservoir(capacity=n, p_in=p_in, rng=seed)
            res.extend(range(t))
            ages = set(res.ages().tolist())
            for i, a in enumerate(target_ages):
                if int(a) in ages:
                    hits[i] += 1
        observed = hits / reps
        expected = p_in * np.exp(-lam * target_ages)
        np.testing.assert_allclose(observed, expected, atol=0.08)

    def test_stationary_mean_age_is_inverse_lambda(self):
        """E[age] under p(a) ~ exp(-lam a) is 1/lam for t >> 1/lam."""
        ages = []
        for seed in range(10):
            res = SpaceConstrainedReservoir(lam=2e-3, capacity=100, rng=seed)
            res.extend(range(10_000))
            ages.append(float(res.ages().mean()))
        assert np.mean(ages) == pytest.approx(500, rel=0.15)
