"""Statistical goodness-of-fit validation of the sampler distributions.

This suite drives the :mod:`repro.verify` conformance registry — the
same declarative specs the ``repro verify`` CLI runs — so the
theoretical models live in exactly one place (``repro.verify.registry``
against ``repro.core.theory``), not in hand-rolled test loops. Every
spec is seeded, so verdicts are deterministic; replicate budgets are the
per-spec ``test_replicates`` (smaller than the CLI default to keep the
tier quick).

Run with ``pytest -m statistical``; the fast tier (``-m "not
statistical"``) covers the same samplers through the adversarial
invariant checks in ``test_verify_invariants.py``.
"""

import pytest

from repro.verify import SPECS, get_spec, run_spec

pytestmark = pytest.mark.statistical


@pytest.mark.parametrize("name", sorted(SPECS))
def test_spec_conformance(name):
    """Every built-in conformance spec passes at its default seed."""
    spec = get_spec(name)
    result = run_spec(
        spec, replicates=spec.test_replicates, jobs=1, seed=0
    )
    assert result.passed, (
        f"{name}: statistic={result.result.statistic:.3f}, "
        f"p={result.result.p_value:.3g} < alpha={result.result.alpha:.0e} "
        f"(band={result.result.band})"
    )


def test_registry_covers_every_sampler_family():
    """The registry must keep at least one spec per sampler family, so a
    future PR cannot silently drop a family from verification."""
    families = {spec.family for spec in SPECS.values()}
    assert {
        "unbiased",
        "skip",
        "exponential",
        "space_constrained",
        "variable",
        "timestamped",
        "time_decay",
        "chain",
        "merge",
    } <= families


def test_batched_paths_are_verified():
    """Both ingestion paths stay under conformance coverage."""
    ingests = {spec.ingest for spec in SPECS.values()}
    assert ingests == {"per-item", "batched"}
    batched_families = {
        spec.family for spec in SPECS.values() if spec.ingest == "batched"
    }
    # Every sampler with a vectorized offer_many fast path.
    assert {"unbiased", "skip", "exponential", "timestamped"} <= batched_families
