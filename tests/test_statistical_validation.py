"""Statistical goodness-of-fit validation of the sampler distributions.

The regular unit tests check means and spot frequencies; this suite uses
scipy to run proper goodness-of-fit tests of the *whole* maintained
distribution against the paper's models, across Monte-Carlo replicates
with fixed seeds (alpha chosen loosely enough to be deterministic-stable).
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.biased import ExponentialReservoir
from repro.core.sliding_window import ChainSampler
from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.unbiased import SkipUnbiasedReservoir, UnbiasedReservoir


class TestUnbiasedUniformity:
    @pytest.mark.parametrize(
        "factory", [UnbiasedReservoir, SkipUnbiasedReservoir]
    )
    def test_chi_square_uniform_over_arrivals(self, factory):
        """Pooled resident arrival indices must be uniform over [1, t]."""
        n, t, reps, bins = 20, 400, 300, 10
        counts = np.zeros(bins)
        for seed in range(reps):
            res = factory(n, rng=seed)
            res.extend(range(t))
            arrivals = res.arrival_indices()
            hist, __ = np.histogram(arrivals, bins=bins, range=(1, t + 1))
            counts += hist
        expected = np.full(bins, counts.sum() / bins)
        chi2, p_value = stats.chisquare(counts, expected)
        # Inclusions within one run are weakly dependent, so this is a
        # sanity gate rather than an exact test: reject only gross bias.
        assert p_value > 1e-4, f"chi2={chi2:.1f}, p={p_value:.2e}"

    def test_per_position_inclusion_binomial_band(self):
        """Each arrival's inclusion count across replicates must sit in a
        Binomial(reps, n/t) band."""
        n, t, reps = 10, 100, 600
        counts = np.zeros(t)
        for seed in range(reps):
            res = UnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            counts[res.arrival_indices() - 1] += 1
        p = n / t
        low, high = stats.binom.ppf([1e-5, 1 - 1e-5], reps, p)
        assert counts.min() >= low
        assert counts.max() <= high


class TestExponentialAgeDistribution:
    def test_ks_against_truncated_geometric(self):
        """Pooled resident ages vs the Theorem 2.2 stationary law.

        The exact stationary age CDF for Algorithm 2.1 (full reservoir)
        is truncated-geometric: P(age <= a) ~ (1 - q^(a+1))/(1 - q^T)
        with q = 1 - 1/n.
        """
        n, t, reps = 50, 2000, 120
        ages = []
        for seed in range(reps):
            res = ExponentialReservoir(capacity=n, rng=seed)
            res.extend(range(t))
            ages.extend(res.ages().tolist())
        ages = np.asarray(ages, dtype=np.float64)
        q = 1 - 1 / n

        def model_cdf(a):
            a = np.floor(np.asarray(a, dtype=np.float64))
            a = np.clip(a, 0, t - 1)
            return (1 - q ** (a + 1)) / (1 - q**t)

        statistic, __ = stats.ks_1samp(ages, model_cdf)
        # Pooled-replicate dependence inflates the KS statistic slightly;
        # bound it rather than using a p-value.
        assert statistic < 0.05, f"KS statistic {statistic:.4f}"

    def test_space_constrained_age_distribution(self):
        """Algorithm 3.1's conditional age law matches the same geometric
        form with hazard p_in/n."""
        n, p_in, t, reps = 50, 0.4, 3000, 120
        hazard = p_in / n
        ages = []
        for seed in range(reps):
            res = SpaceConstrainedReservoir(capacity=n, p_in=p_in, rng=seed)
            res.extend(range(t))
            ages.extend(res.ages().tolist())
        ages = np.asarray(ages, dtype=np.float64)
        q = 1 - hazard

        def model_cdf(a):
            a = np.floor(np.asarray(a, dtype=np.float64))
            a = np.clip(a, 0, t - 1)
            return (1 - q ** (a + 1)) / (1 - q**t)

        statistic, __ = stats.ks_1samp(ages, model_cdf)
        assert statistic < 0.05, f"KS statistic {statistic:.4f}"


class TestChainSamplerUniformity:
    def test_chi_square_uniform_over_window(self):
        window, reps = 25, 2000
        counts = np.zeros(window)
        for seed in range(reps):
            cs = ChainSampler(1, window=window, rng=seed)
            cs.extend(range(100))
            entry = cs.entries()[0]
            counts[cs.t - entry.arrival] += 1
        chi2, p_value = stats.chisquare(counts)
        assert p_value > 1e-4, f"chi2={chi2:.1f}, p={p_value:.2e}"


class TestEstimatorSamplingDistribution:
    def test_ht_count_normal_band(self):
        """HT horizon-count estimates across replicates: mean within a
        z-band of the truth (CLT over 200 replicates)."""
        from repro.queries.estimator import QueryEstimator
        from repro.queries.spec import count_query

        n, t, h, reps = 50, 1000, 200, 200
        estimates = []
        for seed in range(reps):
            res = ExponentialReservoir(capacity=n, rng=seed)
            res.extend(range(t))
            est = QueryEstimator(res).estimate(count_query(horizon=h))
            estimates.append(est.estimate[0])
        estimates = np.asarray(estimates)
        se = estimates.std(ddof=1) / np.sqrt(reps)
        z = abs(estimates.mean() - h) / se
        assert z < 4.5, f"z={z:.2f} (mean {estimates.mean():.1f} vs {h})"
