"""Tests for StreamGenerator plumbing and stream helpers."""

import numpy as np
import pytest

from repro.streams.base import StreamGenerator, materialize, stream_to_arrays
from repro.streams.point import StreamPoint
from repro.streams.synthetic import EvolvingClusterStream


class ConstantStream(StreamGenerator):
    """Minimal generator for base-class tests: all-ones, label 7."""

    def _generate_chunk(self, size):
        values = np.ones((size, self.dimensions))
        labels = np.full(size, 7, dtype=np.int64)
        return values, labels


class UnlabeledStream(StreamGenerator):
    def _generate_chunk(self, size):
        return np.zeros((size, self.dimensions)), None


class BadShapeStream(StreamGenerator):
    def _generate_chunk(self, size):
        return np.zeros((size + 1, self.dimensions)), None


class TestStreamGenerator:
    def test_emits_exact_length(self):
        stream = ConstantStream(length=10, dimensions=3, rng=0)
        assert len(list(stream)) == 10
        assert len(stream) == 10

    def test_indices_are_sequential_from_one(self):
        points = list(ConstantStream(length=7, dimensions=2, rng=0))
        assert [p.index for p in points] == list(range(1, 8))

    def test_chunking_is_invisible(self):
        small = list(ConstantStream(length=10, dimensions=2, rng=0, chunk_size=3))
        big = list(ConstantStream(length=10, dimensions=2, rng=0, chunk_size=100))
        for a, b in zip(small, big):
            assert a.index == b.index
            np.testing.assert_array_equal(a.values, b.values)

    def test_labels_propagate(self):
        points = list(ConstantStream(length=3, dimensions=2, rng=0))
        assert all(p.label == 7 for p in points)

    def test_unlabeled_stream(self):
        points = list(UnlabeledStream(length=3, dimensions=2, rng=0))
        assert all(p.label is None for p in points)
        assert UnlabeledStream(length=3, dimensions=2).n_classes is None

    def test_shape_mismatch_detected(self):
        with pytest.raises(RuntimeError, match="returned shape"):
            list(BadShapeStream(length=5, dimensions=2, rng=0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"length": 0, "dimensions": 2},
            {"length": 5, "dimensions": 0},
            {"length": 5, "dimensions": 2, "chunk_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConstantStream(**kwargs)

    def test_same_seed_same_stream(self):
        a = list(EvolvingClusterStream(length=50, rng=9))
        b = list(EvolvingClusterStream(length=50, rng=9))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.values, pb.values)
            assert pa.label == pb.label


class TestHelpers:
    def test_materialize(self):
        points = materialize(ConstantStream(length=4, dimensions=2, rng=0))
        assert len(points) == 4
        assert isinstance(points[0], StreamPoint)

    def test_stream_to_arrays(self):
        idx, vals, labels = stream_to_arrays(
            ConstantStream(length=5, dimensions=3, rng=0)
        )
        assert idx.tolist() == [1, 2, 3, 4, 5]
        assert vals.shape == (5, 3)
        assert labels.tolist() == [7] * 5

    def test_stream_to_arrays_unlabeled_fills_minus_one(self):
        __, __, labels = stream_to_arrays(
            UnlabeledStream(length=3, dimensions=2, rng=0)
        )
        assert labels.tolist() == [-1, -1, -1]

    def test_stream_to_arrays_empty(self):
        idx, vals, labels = stream_to_arrays([])
        assert idx.size == 0
        assert labels.size == 0
