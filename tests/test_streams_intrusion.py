"""Tests for the synthetic network-intrusion stream (KDD'99 substitute)."""

import collections

import numpy as np
import pytest

from repro.streams.base import stream_to_arrays
from repro.streams.intrusion import INTRUSION_CLASSES, IntrusionStream


class TestIntrusionStream:
    def test_defaults_match_kdd99_scale(self):
        stream = IntrusionStream()
        assert stream.length == 494_021
        assert stream.dimensions == 34
        assert stream.n_classes == len(INTRUSION_CLASSES)

    def test_class_names_resolve(self):
        stream = IntrusionStream(length=10)
        assert stream.class_name(0) == "normal"
        assert stream.class_name(1) == "smurf"

    def test_labels_within_alphabet(self):
        __, __, labels = stream_to_arrays(IntrusionStream(length=3000, rng=0))
        assert labels.min() >= 0
        assert labels.max() < len(INTRUSION_CLASSES)

    def test_long_run_class_skew(self):
        """Dominant classes must dominate: smurf+neptune+normal >> rest."""
        __, __, labels = stream_to_arrays(
            IntrusionStream(length=120_000, rng=1)
        )
        counts = collections.Counter(labels.tolist())
        total = sum(counts.values())
        top3 = {0, 1, 2}  # normal, smurf, neptune
        top3_mass = sum(counts.get(c, 0) for c in top3) / total
        assert top3_mass > 0.85

    def test_temporal_burstiness(self):
        """Class labels must be strongly autocorrelated (bursts), unlike an
        iid draw from the same marginal."""
        __, __, labels = stream_to_arrays(IntrusionStream(length=20_000, rng=2))
        same_as_next = float(np.mean(labels[:-1] == labels[1:]))
        marginal = collections.Counter(labels.tolist())
        iid_match = sum(
            (v / len(labels)) ** 2 for v in marginal.values()
        )
        assert same_as_next > iid_match + 0.2

    def test_background_mix_interleaves_normal(self):
        """Attack bursts must carry ~background_mix of 'normal' traffic."""
        stream = IntrusionStream(length=30_000, background_mix=0.2, rng=3)
        __, __, labels = stream_to_arrays(stream)
        # Windows dominated by an attack class should still contain normals.
        window = labels[:2000]
        if (window != 0).mean() > 0.5:  # inside an attack burst
            frac_normal = float(np.mean(window == 0))
            assert frac_normal > 0.05

    def test_background_mix_zero_allows_pure_bursts(self):
        stream = IntrusionStream(length=5000, background_mix=0.0, rng=4)
        __, __, labels = stream_to_arrays(stream)
        # At least one long run of a single non-normal class exists.
        runs = []
        current, run = labels[0], 1
        for lab in labels[1:]:
            if lab == current:
                run += 1
            else:
                runs.append((current, run))
                current, run = lab, 1
        runs.append((current, run))
        assert any(c != 0 and r > 50 for c, r in runs)

    def test_drift_moves_centroids(self):
        stream = IntrusionStream(length=50_000, drift_scale=1e-3, rng=5)
        before = stream.centroids.copy()
        list(stream)
        assert not np.allclose(stream.centroids, before)

    def test_no_drift_keeps_centroids_of_inactive_classes(self):
        stream = IntrusionStream(length=5000, drift_scale=0.0, rng=6)
        before = stream.centroids.copy()
        list(stream)
        np.testing.assert_array_equal(stream.centroids, before)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drift_scale": -1.0},
            {"burst_scale": 0.0},
            {"centroid_scale": 0.0},
            {"background_mix": 1.0},
            {"background_mix": -0.1},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            IntrusionStream(length=10, **kwargs)

    def test_deterministic_given_seed(self):
        a = stream_to_arrays(IntrusionStream(length=500, rng=7))
        b = stream_to_arrays(IntrusionStream(length=500, rng=7))
        np.testing.assert_array_equal(a[1], b[1])
        np.testing.assert_array_equal(a[2], b[2])

    def test_weights_sum_to_one(self):
        stream = IntrusionStream(length=10)
        assert stream._weights.sum() == pytest.approx(1.0)
