"""Tests for stream CSV persistence."""

import numpy as np
import pytest

from repro.streams.io import load_stream_csv, save_stream_csv
from repro.streams.synthetic import EvolvingClusterStream
from tests.conftest import make_points


class TestStreamCsvRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = list(EvolvingClusterStream(length=50, rng=0))
        path = tmp_path / "stream.csv"
        assert save_stream_csv(original, path) == 50
        loaded = list(load_stream_csv(path))
        assert len(loaded) == 50
        for a, b in zip(original, loaded):
            assert a.index == b.index
            assert a.label == b.label
            np.testing.assert_array_equal(a.values, b.values)

    def test_unlabeled_round_trip(self, tmp_path):
        pts = make_points([[1.5, -2.25]])
        path = tmp_path / "u.csv"
        save_stream_csv(pts, path)
        loaded = list(load_stream_csv(path))
        assert loaded[0].label is None
        np.testing.assert_array_equal(loaded[0].values, [1.5, -2.25])

    def test_exact_float_round_trip(self, tmp_path):
        """repr-based serialization must round-trip bit-exactly."""
        value = 0.1 + 0.2  # classic non-representable sum
        pts = make_points([[value]])
        path = tmp_path / "f.csv"
        save_stream_csv(pts, path)
        loaded = list(load_stream_csv(path))
        assert loaded[0].values[0] == value

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "e.csv"
        assert save_stream_csv([], path) == 0
        assert list(load_stream_csv(path)) == []

    def test_inconsistent_dimensions_rejected(self, tmp_path):
        pts = make_points([[1.0, 2.0]]) + make_points([[1.0]], start_index=2)
        with pytest.raises(ValueError, match="inconsistent"):
            save_stream_csv(pts, tmp_path / "bad.csv")

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="not a stream CSV"):
            list(load_stream_csv(path))

    def test_load_is_lazy(self, tmp_path):
        pts = list(EvolvingClusterStream(length=100, rng=1))
        path = tmp_path / "lazy.csv"
        save_stream_csv(pts, path)
        it = load_stream_csv(path)
        first = next(it)
        assert first.index == 1
