"""Tests for the real-KDD'99 file loader (using synthetic fixture files)."""

import gzip

import numpy as np
import pytest

from repro.streams.kdd99 import (
    KDD99_CONTINUOUS_COLUMNS,
    Kdd99LabelMap,
    load_kdd99,
)

SYMBOLIC = {1: "tcp", 2: "http", 3: "SF", 6: "0", 11: "1", 20: "0", 21: "0"}


def kdd_line(rng, label="normal."):
    """One synthetic record in the exact KDD'99 field layout."""
    fields = []
    for i in range(41):
        if i in SYMBOLIC:
            fields.append(SYMBOLIC[i])
        else:
            fields.append(repr(round(float(rng.uniform(0, 100)), 2)))
    fields.append(label)
    return ",".join(fields)


@pytest.fixture
def kdd_file(tmp_path, rng):
    path = tmp_path / "kddcup.data"
    labels = ["normal.", "smurf.", "smurf.", "neptune.", "normal."]
    path.write_text(
        "\n".join(kdd_line(rng, lab) for lab in labels) + "\n"
    )
    return path


class TestLoadKdd99:
    def test_loads_records(self, kdd_file):
        points = list(load_kdd99(kdd_file, normalize=False))
        assert len(points) == 5
        assert points[0].index == 1
        assert points[-1].index == 5

    def test_continuous_columns_selected(self, kdd_file):
        points = list(load_kdd99(kdd_file, normalize=False))
        assert points[0].dimensions == len(KDD99_CONTINUOUS_COLUMNS) == 34

    def test_labels_dense_in_first_appearance_order(self, kdd_file):
        mapping = Kdd99LabelMap()
        points = list(
            load_kdd99(kdd_file, normalize=False, label_map=mapping)
        )
        assert [p.label for p in points] == [0, 1, 1, 2, 0]
        assert mapping.names() == ["normal", "smurf", "neptune"]

    def test_limit(self, kdd_file):
        points = list(load_kdd99(kdd_file, normalize=False, limit=2))
        assert len(points) == 2

    def test_normalization_applied(self, tmp_path, rng):
        path = tmp_path / "big.data"
        path.write_text(
            "\n".join(kdd_line(rng) for _ in range(500)) + "\n"
        )
        points = list(load_kdd99(path, normalize=True))
        tail = np.vstack([p.values for p in points[200:]])
        assert abs(float(tail.std(axis=0).mean()) - 1.0) < 0.25

    def test_gzip_supported(self, tmp_path, rng):
        path = tmp_path / "kdd.data.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(kdd_line(rng) + "\n")
        points = list(load_kdd99(path, normalize=False))
        assert len(points) == 1

    def test_missing_file_message(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="IntrusionStream"):
            list(load_kdd99(tmp_path / "nope.data"))

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.data"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="malformed"):
            list(load_kdd99(path, normalize=False))

    def test_blank_lines_skipped(self, tmp_path, rng):
        path = tmp_path / "gaps.data"
        path.write_text(kdd_line(rng) + "\n\n" + kdd_line(rng) + "\n")
        assert len(list(load_kdd99(path, normalize=False))) == 2

    def test_non_numeric_in_selected_column(self, tmp_path, rng):
        line = kdd_line(rng).split(",")
        line[0] = "oops"  # column 0 is continuous
        path = tmp_path / "nn.data"
        path.write_text(",".join(line) + "\n")
        with pytest.raises(ValueError, match="non-numeric"):
            list(load_kdd99(path, normalize=False))

    def test_feeds_samplers_end_to_end(self, tmp_path, rng):
        from repro.core import ExponentialReservoir

        path = tmp_path / "stream.data"
        path.write_text(
            "\n".join(kdd_line(rng) for _ in range(300)) + "\n"
        )
        res = ExponentialReservoir(capacity=50, rng=0)
        for point in load_kdd99(path):
            res.offer(point)
        assert res.size == 50


class TestLabelMap:
    def test_strips_trailing_dot(self):
        mapping = Kdd99LabelMap()
        assert mapping.id_for("smurf.") == mapping.id_for("smurf")

    def test_len(self):
        mapping = Kdd99LabelMap()
        mapping.id_for("a")
        mapping.id_for("b")
        mapping.id_for("a")
        assert len(mapping) == 2
