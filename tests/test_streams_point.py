"""Tests for StreamPoint."""

import numpy as np
import pytest

from repro.streams.point import StreamPoint


class TestStreamPoint:
    def test_basic_fields(self, labeled_point):
        assert labeled_point.index == 1
        assert labeled_point.label == 2
        assert labeled_point.dimensions == 3

    def test_values_are_read_only(self, labeled_point):
        with pytest.raises(ValueError):
            labeled_point.values[0] = 99.0

    def test_values_coerced_to_float64(self):
        p = StreamPoint(1, [1, 2, 3])
        assert p.values.dtype == np.float64

    def test_index_must_be_positive(self):
        with pytest.raises(ValueError, match="index"):
            StreamPoint(0, np.zeros(2))

    def test_unlabeled_default(self):
        p = StreamPoint(5, np.zeros(2))
        assert p.label is None

    def test_distance(self):
        a = StreamPoint(1, np.array([0.0, 0.0]))
        b = StreamPoint(2, np.array([3.0, 4.0]))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a = StreamPoint(1, np.array([1.0, 2.0]))
        b = StreamPoint(2, np.array([-1.0, 0.5]))
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_frozen(self, labeled_point):
        with pytest.raises(AttributeError):
            labeled_point.index = 7

    def test_repr_compact(self):
        p = StreamPoint(1, np.arange(10, dtype=float), label=3)
        text = repr(p)
        assert "index=1" in text
        assert "label=3" in text
        assert "..." in text  # truncated values
