"""Tests for the evolving-Gaussian-cluster stream (Section 5.1)."""

import numpy as np
import pytest

from repro.streams.base import stream_to_arrays
from repro.streams.synthetic import EvolvingClusterStream


class TestEvolvingClusterStream:
    def test_defaults_match_paper(self):
        stream = EvolvingClusterStream()
        assert stream.length == 400_000
        assert stream.n_clusters_ == 4
        assert stream.dimensions == 10
        assert stream.radius == 0.2
        assert stream.drift == 0.05

    def test_labels_in_cluster_range(self):
        __, __, labels = stream_to_arrays(
            EvolvingClusterStream(length=500, n_clusters=3, rng=0)
        )
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_n_classes(self):
        assert EvolvingClusterStream(n_clusters=5).n_classes == 5

    def test_initial_centers_in_unit_cube(self):
        stream = EvolvingClusterStream(rng=1)
        assert (stream.initial_centers >= 0).all()
        assert (stream.initial_centers <= 1).all()

    def test_average_radius_calibrated(self):
        """E[dist to own center] ~ radius, in any dimensionality."""
        for dims in (2, 10, 30):
            stream = EvolvingClusterStream(
                length=4000,
                dimensions=dims,
                radius=0.2,
                drift=0.0,  # freeze centers so distances are exact
                rng=2,
            )
            __, vals, labels = stream_to_arrays(stream)
            dists = []
            for c in range(stream.n_clusters_):
                members = vals[labels == c]
                dists.extend(
                    np.linalg.norm(members - stream.centers[c], axis=1)
                )
            assert np.mean(dists) == pytest.approx(0.2, rel=0.07)

    def test_no_drift_keeps_centers(self):
        stream = EvolvingClusterStream(length=1000, drift=0.0, rng=3)
        before = stream.centers.copy()
        list(stream)
        np.testing.assert_array_equal(stream.centers, before)

    def test_drift_moves_centers_bounded_per_epoch(self):
        stream = EvolvingClusterStream(
            length=100, drift=0.05, drift_every=100, rng=4
        )
        before = stream.centers.copy()
        list(stream)  # exactly one epoch
        delta = np.abs(stream.centers - before)
        assert delta.max() <= 0.05 + 1e-12
        assert delta.max() > 0.0

    def test_drift_accumulates_as_random_walk(self):
        """Center spread grows with stream progression."""
        stream = EvolvingClusterStream(length=60_000, drift_every=50, rng=5)
        it = iter(stream)
        for _ in range(1000):
            next(it)
        early = stream.center_spread()
        for _ in range(50_000):
            next(it)
        late = stream.center_spread()
        assert late > early

    def test_cluster_weights_respected(self):
        weights = np.array([0.7, 0.1, 0.1, 0.1])
        __, __, labels = stream_to_arrays(
            EvolvingClusterStream(
                length=8000, cluster_weights=weights, rng=6
            )
        )
        frac0 = float(np.mean(labels == 0))
        assert frac0 == pytest.approx(0.7, abs=0.03)

    def test_cluster_weight_validation(self):
        with pytest.raises(ValueError, match="shape"):
            EvolvingClusterStream(cluster_weights=np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="non-negative"):
            EvolvingClusterStream(
                n_clusters=2, cluster_weights=np.array([-1.0, 2.0])
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"radius": 0.0},
            {"drift": -0.1},
            {"drift_every": 0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            EvolvingClusterStream(**kwargs)

    def test_center_spread_single_cluster_zero(self):
        stream = EvolvingClusterStream(n_clusters=1, rng=7)
        assert stream.center_spread() == 0.0

    def test_deterministic_given_seed(self):
        a = stream_to_arrays(EvolvingClusterStream(length=200, rng=8))
        b = stream_to_arrays(EvolvingClusterStream(length=200, rng=8))
        np.testing.assert_array_equal(a[1], b[1])
        np.testing.assert_array_equal(a[2], b[2])
