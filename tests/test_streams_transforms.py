"""Tests for the stream transforms."""

import numpy as np
import pytest

from repro.streams.point import StreamPoint
from repro.streams.synthetic import EvolvingClusterStream
from repro.streams.transforms import (
    normalize_unit_variance,
    project,
    relabel,
    skip,
    take,
    zscore_online,
)
from tests.conftest import make_points


class TestTakeSkip:
    def test_take(self):
        pts = make_points(np.zeros((10, 2)))
        assert len(list(take(pts, 4))) == 4

    def test_take_more_than_available(self):
        pts = make_points(np.zeros((3, 2)))
        assert len(list(take(pts, 10))) == 3

    def test_take_zero(self):
        pts = make_points(np.zeros((3, 2)))
        assert list(take(pts, 0)) == []

    def test_take_negative_raises(self):
        with pytest.raises(ValueError):
            list(take([], -1))

    def test_skip(self):
        pts = make_points(np.arange(10).reshape(5, 2))
        out = list(skip(pts, 2))
        assert len(out) == 3
        assert out[0].index == 3  # original indices preserved

    def test_skip_negative_raises(self):
        with pytest.raises(ValueError):
            list(skip([], -1))

    def test_take_is_lazy(self):
        stream = EvolvingClusterStream(length=1_000_000, rng=0)
        out = list(take(stream, 5))  # must not generate a million points
        assert len(out) == 5


class TestProjectRelabel:
    def test_project_selects_dims(self):
        pts = make_points([[1.0, 2.0, 3.0]])
        out = list(project(pts, [2, 0]))
        np.testing.assert_array_equal(out[0].values, [3.0, 1.0])

    def test_project_preserves_index_and_label(self):
        pts = make_points([[1.0, 2.0]], labels=[4])
        out = list(project(pts, [0]))
        assert out[0].index == 1
        assert out[0].label == 4

    def test_relabel(self):
        pts = make_points(np.zeros((3, 2)), labels=[0, 1, 2])
        out = list(relabel(pts, lambda lab: 0 if lab < 2 else 1))
        assert [p.label for p in out] == [0, 0, 1]

    def test_relabel_to_none(self):
        pts = make_points(np.zeros((2, 2)), labels=[0, 1])
        out = list(relabel(pts, lambda lab: None))
        assert all(p.label is None for p in out)


class TestNormalization:
    def test_offline_unit_variance(self):
        rng = np.random.default_rng(0)
        pts = make_points(rng.normal(5.0, 3.0, size=(500, 4)))
        out = normalize_unit_variance(pts)
        matrix = np.vstack([p.values for p in out])
        np.testing.assert_allclose(matrix.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix.std(axis=0), 1.0, rtol=1e-9)

    def test_offline_zero_variance_dimension(self):
        pts = make_points([[1.0, 5.0], [1.0, 7.0]])
        out = normalize_unit_variance(pts)
        matrix = np.vstack([p.values for p in out])
        np.testing.assert_allclose(matrix[:, 0], 0.0)  # centered, unscaled

    def test_offline_empty(self):
        assert normalize_unit_variance([]) == []

    def test_offline_preserves_labels_and_indices(self):
        pts = make_points([[1.0], [2.0]], labels=[3, 4])
        out = normalize_unit_variance(pts)
        assert [p.index for p in out] == [1, 2]
        assert [p.label for p in out] == [3, 4]

    def test_online_converges_to_unit_variance(self):
        rng = np.random.default_rng(1)
        pts = make_points(rng.normal(10.0, 4.0, size=(3000, 3)))
        out = list(zscore_online(pts))
        tail = np.vstack([p.values for p in out[1000:]])
        np.testing.assert_allclose(tail.std(axis=0), 1.0, atol=0.1)
        np.testing.assert_allclose(tail.mean(axis=0), 0.0, atol=0.1)

    def test_online_is_one_pass(self):
        """The transform must not look ahead: consume lazily."""
        stream = EvolvingClusterStream(length=1_000_000, rng=2)
        out = list(take(zscore_online(stream), 10))
        assert len(out) == 10

    def test_online_first_point_finite(self):
        """The very first point (no variance estimate yet) must be finite."""
        out = list(zscore_online(make_points([[5.0, -1.0]])))
        assert np.isfinite(out[0].values).all()


class TestPoissonTimestamps:
    def test_yields_point_timestamp_pairs(self):
        from repro.streams.transforms import with_poisson_timestamps

        pts = make_points(np.zeros((50, 2)))
        pairs = list(with_poisson_timestamps(pts, rate=5.0, rng=0))
        assert len(pairs) == 50
        __, stamps = zip(*pairs)
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_mean_rate_matches(self):
        from repro.streams.transforms import with_poisson_timestamps

        pts = make_points(np.zeros((5000, 1)))
        pairs = list(with_poisson_timestamps(pts, rate=20.0, rng=1))
        total_time = pairs[-1][1]
        assert 5000 / total_time == pytest.approx(20.0, rel=0.1)

    def test_callable_rate(self):
        from repro.streams.transforms import with_poisson_timestamps

        pts = make_points(np.zeros((2000, 1)))
        # First half slow (rate 1), second half fast (rate 100).
        rate = lambda index: 1.0 if index <= 1000 else 100.0
        pairs = list(with_poisson_timestamps(pts, rate=rate, rng=2))
        first_half = pairs[999][1] - pairs[0][1]
        second_half = pairs[-1][1] - pairs[1000][1]
        assert first_half > 20 * second_half

    def test_invalid_rate(self):
        from repro.streams.transforms import with_poisson_timestamps

        with pytest.raises(ValueError, match="rate"):
            list(with_poisson_timestamps([], rate=0.0))

    def test_invalid_callable_rate(self):
        from repro.streams.transforms import with_poisson_timestamps

        pts = make_points(np.zeros((2, 1)))
        with pytest.raises(ValueError, match="rate"):
            list(with_poisson_timestamps(pts, rate=lambda i: 0.0))

    def test_feeds_time_decay_reservoir(self):
        from repro.core.time_proportional import TimeDecayReservoir
        from repro.streams.transforms import with_poisson_timestamps

        pts = make_points(np.zeros((3000, 1)))
        res = TimeDecayReservoir(0.05, 50, rng=3)
        for point, stamp in with_poisson_timestamps(pts, rate=10.0, rng=4):
            res.offer_at(point, stamp)
        assert res.size <= 50
        assert res.estimated_rate == pytest.approx(10.0, rel=0.4)
