"""Tests for the closed-form results in repro.core.theory."""

import math

import numpy as np
import pytest

from repro.core.bias import ExponentialBias, PolynomialBias
from repro.core import theory


class TestHarmonicNumber:
    def test_small_values(self):
        assert theory.harmonic_number(0) == 0.0
        assert theory.harmonic_number(1) == 1.0
        assert theory.harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotic_branch_continuity(self):
        """Exact and asymptotic branches must agree at the switchover."""
        exact = float(np.sum(1.0 / np.arange(1, 1_000_001)))
        assert theory.harmonic_number(2_000_000) > exact
        # Compare asymptotic formula at 10^6 against the direct sum.
        gamma = 0.5772156649015328606
        asym = math.log(1_000_000) + gamma + 1 / 2e6 - 1 / (12 * 1e12)
        assert exact == pytest.approx(asym, rel=1e-12)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            theory.harmonic_number(-1)


class TestFillTimes:
    def test_expected_points_to_fill_formula(self):
        assert theory.expected_points_to_fill(3, 1.0) == pytest.approx(
            3 * (1 + 0.5 + 1 / 3)
        )

    def test_p_in_scales_inverse(self):
        full = theory.expected_points_to_fill(100, 1.0)
        half = theory.expected_points_to_fill(100, 0.5)
        assert half == pytest.approx(2 * full)

    def test_fraction_one_equals_full(self):
        assert theory.expected_points_to_fraction(
            50, 1.0, 0.2
        ) == pytest.approx(theory.expected_points_to_fill(50, 0.2))

    def test_fraction_zero_is_zero(self):
        assert theory.expected_points_to_fraction(50, 0.0, 0.5) == 0.0

    def test_fraction_is_linear_in_n_for_fixed_f(self):
        """Corollary 3.1: points to reach fraction f grow ~linearly in n."""
        f = 0.9
        a = theory.expected_points_to_fraction(1000, f)
        b = theory.expected_points_to_fraction(2000, f)
        assert b / a == pytest.approx(2.0, rel=0.02)

    def test_last_slots_dominate(self):
        """Most of the fill time is spent on the last few slots."""
        n = 1000
        to_90 = theory.expected_points_to_fraction(n, 0.9)
        to_full = theory.expected_points_to_fill(n)
        assert to_90 < 0.4 * to_full

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_n(self, bad):
        with pytest.raises(ValueError):
            theory.expected_points_to_fill(bad)

    @pytest.mark.parametrize("bad_p", [0.0, 1.5, -0.1])
    def test_invalid_p_in(self, bad_p):
        with pytest.raises(ValueError):
            theory.expected_points_to_fill(10, bad_p)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            theory.expected_points_to_fraction(10, 1.5)


class TestFillTrajectory:
    def test_starts_at_zero(self):
        assert float(theory.expected_fill_trajectory(100, 0.5, 0)) == 0.0

    def test_monotone_and_bounded(self):
        t = np.arange(0, 5000, 100)
        traj = theory.expected_fill_trajectory(100, 0.1, t)
        assert np.all(np.diff(traj) > 0)
        assert traj[-1] < 100

    def test_p_in_one_matches_algorithm_2_1_fill(self):
        # After n arrivals with p_in=1: n (1 - (1-1/n)^n) ~ n (1 - 1/e).
        val = float(theory.expected_fill_trajectory(1000, 1.0, 1000))
        assert val == pytest.approx(1000 * (1 - math.exp(-1)), rel=0.01)

    def test_vectorized_shape(self):
        out = theory.expected_fill_trajectory(10, 0.5, np.array([1, 2, 3]))
        assert out.shape == (3,)


class TestInclusionModels:
    def test_unbiased_model(self):
        probs = theory.expected_inclusion_unbiased(10, np.array([1, 50]), 100)
        np.testing.assert_allclose(probs, 0.1)

    def test_unbiased_capped(self):
        probs = theory.expected_inclusion_unbiased(10, np.array([1]), 5)
        np.testing.assert_allclose(probs, 1.0)

    def test_exponential_model(self):
        probs = theory.expected_inclusion_exponential(
            100, np.array([100]), 200
        )
        np.testing.assert_allclose(probs, math.exp(-1.0))

    def test_space_constrained_model(self):
        probs = theory.expected_inclusion_space_constrained(
            100, 0.5, np.array([200]), 200
        )
        np.testing.assert_allclose(probs, 0.5)

    def test_models_reject_bad_r(self):
        with pytest.raises(ValueError):
            theory.expected_inclusion_unbiased(10, np.array([0]), 5)
        with pytest.raises(ValueError):
            theory.expected_inclusion_exponential(10, np.array([6]), 5)


class TestMaxReservoirRequirement:
    def test_delegates_to_bias(self):
        bias = ExponentialBias(0.01)
        assert theory.max_reservoir_requirement(
            bias, 500
        ) == bias.max_reservoir_requirement(500)

    def test_polynomial(self):
        bias = PolynomialBias(1.0)
        assert theory.max_reservoir_requirement(bias, 10) == pytest.approx(
            theory.harmonic_number(10)
        )
