"""Tests for the rate-adaptive time-decay reservoir (extension)."""

import math

import numpy as np
import pytest

from repro.core.time_proportional import TimeDecayReservoir


def drive_poisson(res, n, rate, rng, start_now=None):
    now = res.now if start_now is None else start_now
    for i in range(n):
        now += rng.exponential(1.0 / rate)
        res.offer_at((i, rate), now)
    return now


class TestConstruction:
    @pytest.mark.parametrize("lam", [0.0, -1.0])
    def test_invalid_lambda(self, lam):
        with pytest.raises(ValueError, match="lam_time"):
            TimeDecayReservoir(lam, 10)

    @pytest.mark.parametrize("mem", [0.0, 1.5])
    def test_invalid_rate_memory(self, mem):
        with pytest.raises(ValueError, match="rate_memory"):
            TimeDecayReservoir(0.1, 10, rate_memory=mem)


class TestRateEstimation:
    def test_rate_estimate_converges(self, rng):
        res = TimeDecayReservoir(1e-4, 100, rng=0)
        drive_poisson(res, 2000, rate=50.0, rng=rng)
        assert res.estimated_rate == pytest.approx(50.0, rel=0.3)

    def test_insertion_probability_scales_inverse_to_rate(self, rng):
        res = TimeDecayReservoir(1e-3, 100, rng=1)
        drive_poisson(res, 2000, rate=10.0, rng=rng)
        p_slow = res.current_insertion_probability()
        drive_poisson(res, 2000, rate=1000.0, rng=rng)
        p_fast = res.current_insertion_probability()
        assert p_fast < p_slow / 10

    def test_insertion_probability_caps_at_one(self, rng):
        # rate far below n*lam: every arrival should be admitted.
        res = TimeDecayReservoir(1.0, 100, rng=2)
        drive_poisson(res, 200, rate=0.5, rng=rng)
        assert res.current_insertion_probability() == 1.0

    def test_rate_unknown_before_two_arrivals(self):
        res = TimeDecayReservoir(0.1, 10, rng=3)
        assert res.estimated_rate == math.inf
        assert res.current_insertion_probability() == 1.0


class TestDecaySemantics:
    def test_mean_time_age_is_inverse_lambda(self, rng):
        """Steady rate >> n*lam: mean resident time-age ~ 1/lam_time."""
        lam = 0.02
        ages = []
        for seed in range(6):
            local = np.random.default_rng(seed)
            res = TimeDecayReservoir(lam, 100, rng=seed)
            drive_poisson(res, 30_000, rate=20.0, rng=local)
            ages.append(float(res.time_ages().mean()))
        assert np.mean(ages) == pytest.approx(1 / lam, rel=0.25)

    def test_burst_does_not_flush_old_points(self, rng):
        """The design goal: a 100x burst must not evict the quiet epoch."""
        res = TimeDecayReservoir(1e-3, 1000, rng=4)
        now = drive_poisson(res, 10_000, rate=1.0, rng=rng)
        quiet_before = sum(1 for p in res.payloads() if p[1] == 1.0)
        drive_poisson(res, 10_000, rate=100.0, rng=rng, start_now=now)
        quiet_after = sum(1 for p in res.payloads() if p[1] == 1.0)
        # The burst lasts ~100 s; time decay alone removes e^{-0.1} ~ 10%.
        assert quiet_after > 0.5 * quiet_before

    def test_burst_points_subsampled(self, rng):
        """During the burst, only ~n*lam/rho of burst points enter."""
        res = TimeDecayReservoir(1e-3, 1000, rng=5)
        now = drive_poisson(res, 5_000, rate=1.0, rng=rng)
        inserted_before = res.insertions
        drive_poisson(res, 10_000, rate=100.0, rng=rng, start_now=now)
        burst_inserted = res.insertions - inserted_before
        # p_in during burst ~ 1000*1e-3/100 = 0.01 -> ~100 insertions.
        assert burst_inserted < 1_000

    def test_size_bounded(self, rng):
        res = TimeDecayReservoir(1e-3, 50, rng=6)
        drive_poisson(res, 20_000, rate=10.0, rng=rng)
        assert res.size <= 50

    def test_timestamps_must_be_monotone(self):
        res = TimeDecayReservoir(0.1, 10, rng=7)
        res.offer_at("a", 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            res.offer_at("b", 4.0)


class TestEstimation:
    def test_resident_weights_shape_and_positivity(self, rng):
        res = TimeDecayReservoir(1e-3, 100, rng=8)
        drive_poisson(res, 5_000, rate=10.0, rng=rng)
        weights = res.resident_weights()
        assert weights.shape == (res.size,)
        assert (weights > 0).all()

    def test_weighted_rate_estimate_is_consistent(self, rng):
        """HT total mass over a recent time window estimates the number of
        arrivals in that window, even through a rate change."""
        lam = 1e-3
        window = 500.0  # seconds
        totals = []
        truth_values = []
        for seed in range(10):
            local = np.random.default_rng(seed)
            res = TimeDecayReservoir(lam, 1000, rng=seed)
            now = drive_poisson(res, 8_000, rate=2.0, rng=local)
            now = drive_poisson(res, 4_000, rate=20.0, rng=local)
            ages = res.time_ages()
            weights = res.resident_weights()
            mask = ages < window
            totals.append(float(weights[mask].sum()))
            # True arrivals in the window: rate 20 for ~200 s of it, plus
            # rate 2 earlier — reconstruct from the generated stream:
            truth_values.append(min(4_000 / 20.0, window) * 20.0)
        # Rough consistency: mean within 30% of the true count.
        assert np.mean(totals) == pytest.approx(
            np.mean(truth_values), rel=0.3
        )

    def test_inclusion_probability_not_implemented(self):
        res = TimeDecayReservoir(0.1, 10, rng=9)
        res.offer("a")
        with pytest.raises(NotImplementedError):
            res.inclusion_probability(1)
