"""Tests for the wall-clock biased reservoir (extension)."""

import math

import numpy as np
import pytest

from repro.core.timestamped import TimestampedExponentialReservoir


class TestConstruction:
    def test_invalid_lambda(self):
        with pytest.raises(ValueError, match="lam_time"):
            TimestampedExponentialReservoir(0.0, 10)

    def test_suggested_capacity(self):
        # rate 100/s, decay 0.1/s -> relevant mass 1000.
        assert TimestampedExponentialReservoir.suggested_capacity(
            100.0, 0.1
        ) == 1000

    def test_suggested_capacity_validation(self):
        with pytest.raises(ValueError):
            TimestampedExponentialReservoir.suggested_capacity(0.0, 0.1)


class TestOfferAt:
    def test_timestamps_must_be_monotone(self):
        res = TimestampedExponentialReservoir(0.1, 10, rng=0)
        res.offer_at("a", 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            res.offer_at("b", 0.5)

    def test_equal_timestamps_allowed(self):
        res = TimestampedExponentialReservoir(0.1, 10, rng=0)
        res.offer_at("a", 1.0)
        res.offer_at("b", 1.0)  # burst: two points, same instant
        assert res.size == 2

    def test_size_bounded(self):
        res = TimestampedExponentialReservoir(0.01, 50, rng=1)
        for i in range(5000):
            res.offer_at(i, i * 0.1)
        assert res.size <= 50

    def test_every_offer_stored(self):
        res = TimestampedExponentialReservoir(0.01, 50, rng=2)
        for i in range(200):
            assert res.offer_at(i, float(i))
        assert res.insertions == 200

    def test_plain_offer_unit_spacing(self):
        res = TimestampedExponentialReservoir(0.01, 50, rng=3)
        res.offer("a")
        res.offer("b")
        assert res.now == 2.0
        assert res.timestamps().tolist() == [1.0, 2.0]

    def test_timestamps_parallel_to_payloads(self):
        res = TimestampedExponentialReservoir(0.05, 20, rng=4)
        for i in range(500):
            res.offer_at(i, i * 0.5)
        assert len(res.timestamps()) == res.size
        assert (res.time_ages() >= 0).all()


class TestDecaySemantics:
    def test_sparse_regime_time_decay_dominates(self):
        """rho << n * lam: mean time-age ~ 1/lam_time."""
        lam, n = 0.01, 1000  # relevant mass rho/lam = 100 << n
        ages = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            res = TimestampedExponentialReservoir(lam, n, rng=seed)
            now = 0.0
            for i in range(4000):
                now += rng.exponential(1.0)  # rate 1, n*lam = 10 >> rho=1
                res.offer_at(i, now)
            ages.append(float(res.time_ages().mean()))
        # Hybrid rate per unit time: lam + rho/n = 0.01 + 0.001 = 0.011.
        assert np.mean(ages) == pytest.approx(1 / 0.011, rel=0.2)

    def test_dense_regime_count_decay_dominates(self):
        """rho >> n * lam: behaves like Algorithm 2.1 (mean arrival-age n)."""
        lam, n = 1e-6, 100
        res = TimestampedExponentialReservoir(lam, n, rng=5)
        for i in range(5000):
            res.offer_at(i, i * 0.001)  # rate 1000, n*lam = 1e-4
        assert float(res.ages().mean()) == pytest.approx(n, rel=0.4)

    def test_long_gap_flushes_reservoir(self):
        """A huge idle gap should decay away almost everything."""
        res = TimestampedExponentialReservoir(0.1, 100, rng=6)
        for i in range(100):
            res.offer_at(i, i * 0.01)
        assert res.size > 50
        res.offer_at("after-gap", 1000.0)  # gap of ~999 time units
        assert res.size <= 5  # survival e^{-99.9} ~ 0

    def test_empirical_survival_matches_hybrid_model(self):
        """Retention over a gap with no arrivals = exp(-lam * delta)."""
        lam, n, delta = 0.05, 50, 20.0
        survived = 0
        reps = 400
        for seed in range(reps):
            res = TimestampedExponentialReservoir(lam, n, rng=seed)
            # Fill completely at time 0 (many same-instant offers).
            for i in range(n * 3):
                res.offer_at(i, 0.0)
            marker_present_before = "marker" not in res.payloads()
            # Plant a marker by replacing: offer it last at time 0.
            res.offer_at("marker", 0.0)
            if "marker" not in res.payloads():
                continue
            # One arrival after the gap applies the decay rounds.
            res.offer_at("probe", delta)
            if "marker" in res.payloads():
                survived += 1
        # Model: exp(-lam*delta) * (1 - 1/n) for the probe replacement.
        expected = math.exp(-lam * delta) * (1 - 1 / n)
        assert survived / reps == pytest.approx(expected, abs=0.08)


class TestInclusionModel:
    def test_arrival_index_model_unavailable(self):
        res = TimestampedExponentialReservoir(0.1, 10, rng=7)
        res.offer_at("a", 1.0)
        with pytest.raises(NotImplementedError):
            res.inclusion_probability(1)

    def test_pure_time_component(self):
        res = TimestampedExponentialReservoir(0.5, 10, rng=8)
        res.offer_at("a", 0.0)
        res.offer_at("b", 2.0)
        assert res.inclusion_probability_at(0.0) == pytest.approx(
            math.exp(-1.0)
        )

    def test_hybrid_with_arrival_index(self):
        res = TimestampedExponentialReservoir(0.5, 10, rng=9)
        res.offer_at("a", 0.0)
        res.offer_at("b", 2.0)
        p = res.inclusion_probability_at(0.0, arrival_index=1)
        assert p == pytest.approx(math.exp(-1.0) * (1 - 1 / 10))

    def test_future_timestamp_rejected(self):
        res = TimestampedExponentialReservoir(0.5, 10, rng=10)
        res.offer_at("a", 1.0)
        with pytest.raises(ValueError, match="future"):
            res.inclusion_probability_at(2.0)

    def test_vectorized_matches_scalar(self):
        res = TimestampedExponentialReservoir(0.2, 10, rng=11)
        for i in range(20):
            res.offer_at(i, float(i))
        stamps = np.array([0.0, 10.0, 19.0])
        indices = np.array([1, 11, 20])
        vec = res.inclusion_probabilities_at(stamps, indices)
        scal = [
            res.inclusion_probability_at(float(s), int(r))
            for s, r in zip(stamps, indices)
        ]
        np.testing.assert_allclose(vec, scal)
