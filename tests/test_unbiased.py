"""Tests for the unbiased baselines (Algorithm R and the skip variant)."""

import numpy as np
import pytest

from repro.core.theory import harmonic_number
from repro.core.unbiased import SkipUnbiasedReservoir, UnbiasedReservoir


class TestUnbiasedReservoir:
    def test_first_n_points_all_inserted(self):
        res = UnbiasedReservoir(10, rng=0)
        assert res.extend(range(10)) == 10
        assert sorted(res.payloads()) == list(range(10))

    def test_size_never_exceeds_capacity(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(1000))
        assert res.size == 10

    def test_t_counts_all_offers(self):
        res = UnbiasedReservoir(5, rng=0)
        res.extend(range(100))
        assert res.t == 100
        assert res.offers == 100

    def test_inclusion_probability_model(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        assert res.inclusion_probability(1) == pytest.approx(0.25)
        assert res.inclusion_probability(40) == pytest.approx(0.25)

    def test_inclusion_capped_at_one(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(5))
        assert res.inclusion_probability(3) == 1.0

    def test_inclusion_probabilities_vectorized(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        probs = res.inclusion_probabilities(np.array([1, 20, 40]))
        np.testing.assert_allclose(probs, 0.25)

    def test_inclusion_bad_r_raises(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        with pytest.raises(ValueError):
            res.inclusion_probability(0)
        with pytest.raises(ValueError):
            res.inclusion_probability(41)

    def test_empirical_inclusion_is_uniform(self):
        """Property 2.1: every point resident with probability n/t."""
        n, t, reps = 10, 100, 400
        counts = np.zeros(t)
        for seed in range(reps):
            res = UnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            counts[res.arrival_indices() - 1] += 1
        freq = counts / reps
        # Each frequency ~ Binomial(reps, n/t)/reps: mean 0.1, sd ~0.015.
        assert abs(freq.mean() - n / t) < 1e-9  # exactly n*reps total slots
        assert np.all(np.abs(freq - n / t) < 0.07)  # ~4.5 sigma

    def test_expected_insertions_match_harmonic(self):
        """E[insertions] = n + n (H_t - H_n) for Algorithm R."""
        n, t = 20, 2000
        inserts = []
        for seed in range(40):
            res = UnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            inserts.append(res.insertions)
        expected = n + n * (harmonic_number(t) - harmonic_number(n))
        assert np.mean(inserts) == pytest.approx(expected, rel=0.1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            UnbiasedReservoir(0)

    def test_repr(self):
        res = UnbiasedReservoir(3, rng=0)
        assert "UnbiasedReservoir" in repr(res)


class TestSkipUnbiasedReservoir:
    def test_size_never_exceeds_capacity(self):
        res = SkipUnbiasedReservoir(10, rng=0)
        res.extend(range(1000))
        assert res.size == 10

    def test_insertion_count_matches_algorithm_r_in_expectation(self):
        """The skip variant must sample the same distribution."""
        n, t = 20, 2000
        skip_inserts, plain_inserts = [], []
        for seed in range(40):
            s = SkipUnbiasedReservoir(n, rng=seed)
            s.extend(range(t))
            skip_inserts.append(s.insertions)
            p = UnbiasedReservoir(n, rng=seed + 1000)
            p.extend(range(t))
            plain_inserts.append(p.insertions)
        assert np.mean(skip_inserts) == pytest.approx(
            np.mean(plain_inserts), rel=0.12
        )

    def test_empirical_inclusion_is_uniform(self):
        n, t, reps = 10, 100, 400
        counts = np.zeros(t)
        for seed in range(reps):
            res = SkipUnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            counts[res.arrival_indices() - 1] += 1
        freq = counts / reps
        assert abs(freq.mean() - n / t) < 1e-9
        assert np.all(np.abs(freq - n / t) < 0.07)

    def test_inclusion_model_same_as_plain(self):
        s = SkipUnbiasedReservoir(10, rng=0)
        s.extend(range(50))
        assert s.inclusion_probability(5) == pytest.approx(0.2)
        np.testing.assert_allclose(
            s.inclusion_probabilities(np.array([1, 50])), 0.2
        )

    def test_uses_fewer_random_draws_than_offers(self):
        """The whole point of Algorithm X: skip draws, not per-point ones."""
        res = SkipUnbiasedReservoir(10, rng=0)
        res.extend(range(10_000))
        # insertions past the fill are ~ n ln(t/n) ~ 69; each costs one
        # uniform draw plus victim choice, far fewer than 10k offers.
        assert res.insertions < 200
