"""Tests for the unbiased baselines (Algorithm R and the skip variant)."""

import numpy as np
import pytest

from repro.core.theory import harmonic_number
from repro.core.unbiased import SkipUnbiasedReservoir, UnbiasedReservoir


class TestUnbiasedReservoir:
    def test_first_n_points_all_inserted(self):
        res = UnbiasedReservoir(10, rng=0)
        assert res.extend(range(10)) == 10
        assert sorted(res.payloads()) == list(range(10))

    def test_size_never_exceeds_capacity(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(1000))
        assert res.size == 10

    def test_t_counts_all_offers(self):
        res = UnbiasedReservoir(5, rng=0)
        res.extend(range(100))
        assert res.t == 100
        assert res.offers == 100

    def test_inclusion_probability_model(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        assert res.inclusion_probability(1) == pytest.approx(0.25)
        assert res.inclusion_probability(40) == pytest.approx(0.25)

    def test_inclusion_capped_at_one(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(5))
        assert res.inclusion_probability(3) == 1.0

    def test_inclusion_probabilities_vectorized(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        probs = res.inclusion_probabilities(np.array([1, 20, 40]))
        np.testing.assert_allclose(probs, 0.25)

    def test_inclusion_bad_r_raises(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(40))
        with pytest.raises(ValueError):
            res.inclusion_probability(0)
        with pytest.raises(ValueError):
            res.inclusion_probability(41)

    def test_empirical_inclusion_is_uniform(self):
        """Property 2.1: every point resident with probability n/t."""
        n, t, reps = 10, 100, 400
        counts = np.zeros(t)
        for seed in range(reps):
            res = UnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            counts[res.arrival_indices() - 1] += 1
        freq = counts / reps
        # Each frequency ~ Binomial(reps, n/t)/reps: mean 0.1, sd ~0.015.
        assert abs(freq.mean() - n / t) < 1e-9  # exactly n*reps total slots
        assert np.all(np.abs(freq - n / t) < 0.07)  # ~4.5 sigma

    def test_expected_insertions_match_harmonic(self):
        """E[insertions] = n + n (H_t - H_n) for Algorithm R."""
        n, t = 20, 2000
        inserts = []
        for seed in range(40):
            res = UnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            inserts.append(res.insertions)
        expected = n + n * (harmonic_number(t) - harmonic_number(n))
        assert np.mean(inserts) == pytest.approx(expected, rel=0.1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            UnbiasedReservoir(0)

    def test_repr(self):
        res = UnbiasedReservoir(3, rng=0)
        assert "UnbiasedReservoir" in repr(res)


class TestSkipUnbiasedReservoir:
    def test_size_never_exceeds_capacity(self):
        res = SkipUnbiasedReservoir(10, rng=0)
        res.extend(range(1000))
        assert res.size == 10

    def test_insertion_count_matches_algorithm_r_in_expectation(self):
        """The skip variant must sample the same distribution."""
        n, t = 20, 2000
        skip_inserts, plain_inserts = [], []
        for seed in range(40):
            s = SkipUnbiasedReservoir(n, rng=seed)
            s.extend(range(t))
            skip_inserts.append(s.insertions)
            p = UnbiasedReservoir(n, rng=seed + 1000)
            p.extend(range(t))
            plain_inserts.append(p.insertions)
        assert np.mean(skip_inserts) == pytest.approx(
            np.mean(plain_inserts), rel=0.12
        )

    def test_empirical_inclusion_is_uniform(self):
        n, t, reps = 10, 100, 400
        counts = np.zeros(t)
        for seed in range(reps):
            res = SkipUnbiasedReservoir(n, rng=seed)
            res.extend(range(t))
            counts[res.arrival_indices() - 1] += 1
        freq = counts / reps
        assert abs(freq.mean() - n / t) < 1e-9
        assert np.all(np.abs(freq - n / t) < 0.07)

    def test_inclusion_model_same_as_plain(self):
        s = SkipUnbiasedReservoir(10, rng=0)
        s.extend(range(50))
        assert s.inclusion_probability(5) == pytest.approx(0.2)
        np.testing.assert_allclose(
            s.inclusion_probabilities(np.array([1, 50])), 0.2
        )

    def test_uses_fewer_random_draws_than_offers(self):
        """The whole point of Algorithm X: skip draws, not per-point ones."""
        res = SkipUnbiasedReservoir(10, rng=0)
        res.extend(range(10_000))
        # insertions past the fill are ~ n ln(t/n) ~ 69; each costs one
        # uniform draw plus victim choice, far fewer than 10k offers.
        assert res.insertions < 200


class TestInclusionAtStreamStart:
    """Regression: inclusion_probabilities([]) at t=0 must return an empty
    vector, not divide by t = 0 (_uniform_inclusion used to raise
    ZeroDivisionError before any point was offered)."""

    def test_empty_query_before_any_offer(self):
        for sampler in (
            UnbiasedReservoir(10, rng=0),
            SkipUnbiasedReservoir(10, rng=0),
        ):
            out = sampler.inclusion_probabilities(np.array([]))
            assert out.shape == (0,)

    def test_concrete_index_still_rejected_at_t0(self):
        sampler = UnbiasedReservoir(10, rng=0)
        with pytest.raises(ValueError):
            sampler.inclusion_probabilities(np.array([1]))


class TestDrawSkipOffByOne:
    """Regression for the Algorithm X skip distribution.

    ``offer`` increments ``self.t`` before drawing, so ``t`` already names
    the *current* undecided arrival: the rejection product must start at
    ``(t - n)/t`` (P(reject current) = 1 - n/t), not ``(t + 1 - n)/(t + 1)``.
    The old off-by-one accepted the arrival right after the fill with
    probability ``n/(t + 1)`` instead of ``n/t``.
    """

    def test_first_post_fill_acceptance_probability(self):
        """n=3: arrival 4 must be accepted with probability exactly 3/4."""
        n, trials = 3, 4000
        accepted = 0
        for seed in range(trials):
            res = SkipUnbiasedReservoir(n, rng=seed)
            res.extend(range(n))  # fill: t = n
            if res.offer(n):
                accepted += 1
        p_hat = accepted / trials
        # 5 sigma for p = 0.75: sqrt(.75*.25/4000) ~ 0.0068. The buggy
        # start value would center at n/(t+1) = 0.6, ~20 sigma away.
        assert abs(p_hat - 0.75) < 5 * np.sqrt(0.75 * 0.25 / trials)

    def test_skip_matches_plain_inclusion_frequencies(self):
        """Seeded property test: per-arrival resident frequencies of the
        skip sampler match plain Algorithm R within Monte Carlo noise."""
        n, t, reps = 8, 120, 500
        counts = {"skip": np.zeros(t), "plain": np.zeros(t)}
        for seed in range(reps):
            s = SkipUnbiasedReservoir(n, rng=seed)
            s.extend(range(t))
            counts["skip"][s.arrival_indices() - 1] += 1
            p = UnbiasedReservoir(n, rng=seed + 7000)
            p.extend(range(t))
            counts["plain"][p.arrival_indices() - 1] += 1
        f_skip = counts["skip"] / reps
        f_plain = counts["plain"] / reps
        # Each frequency ~ Bernoulli(n/t = 1/15): sigma ~ 0.011 at 500
        # reps. Compare both to the exact model and to each other.
        sigma = np.sqrt((n / t) * (1 - n / t) / reps)
        assert np.all(np.abs(f_skip - n / t) < 5 * sigma)
        assert np.all(np.abs(f_skip - f_plain) < 5 * np.sqrt(2) * sigma)

    def test_draw_skip_zero_probability_mass(self):
        """P(skip = 0) from the generator must be n/t for explicit t."""
        res = SkipUnbiasedReservoir(5, rng=123)
        res.extend(range(5))
        trials = 4000
        zeros = sum(res._draw_skip(t=10) == 0 for _ in range(trials))
        p_hat = zeros / trials
        assert abs(p_hat - 0.5) < 5 * np.sqrt(0.25 / trials)
