"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, require_probability, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(7).random(5)
        b = as_generator(8).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(3))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="cannot build"):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_children_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        a1, b1 = spawn_generators(9, 2)
        a2, b2 = spawn_generators(9, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))
        np.testing.assert_array_equal(b1.random(5), b2.random(5))

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(1)
        gens = spawn_generators(parent, 3)
        assert len(gens) == 3

    def test_spawn_from_seed_sequence(self):
        gens = spawn_generators(np.random.SeedSequence(2), 2)
        assert len(gens) == 2

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_invalid(self, value):
        with pytest.raises(ValueError, match="must lie in"):
            require_probability(value, "p")
