"""Tests for repro.utils.running_stats."""

import math

import numpy as np
import pytest

from repro.utils.running_stats import ExponentialMovingAverage, RunningStats


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.std == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.update(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, size=500)
        s = RunningStats()
        for x in data:
            s.update(float(x))
        assert s.mean == pytest.approx(float(np.mean(data)))
        assert s.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert s.minimum == pytest.approx(float(data.min()))
        assert s.maximum == pytest.approx(float(data.max()))

    def test_merge_equals_sequential(self, rng):
        data = rng.normal(size=301)
        merged = RunningStats()
        left, right = RunningStats(), RunningStats()
        for x in data[:100]:
            left.update(float(x))
        for x in data[100:]:
            right.update(float(x))
        left.merge(right)
        for x in data:
            merged.update(float(x))
        assert left.count == merged.count
        assert left.mean == pytest.approx(merged.mean)
        assert left.variance == pytest.approx(merged.variance)
        assert left.minimum == merged.minimum
        assert left.maximum == merged.maximum

    def test_merge_empty_other(self):
        s = RunningStats()
        s.update(1.0)
        s.merge(RunningStats())
        assert s.count == 1
        assert s.mean == 1.0

    def test_merge_into_empty(self):
        s = RunningStats()
        other = RunningStats()
        other.update(2.0)
        other.update(4.0)
        s.merge(other)
        assert s.count == 2
        assert s.mean == 3.0

    def test_numerical_stability_large_offset(self):
        s = RunningStats()
        base = 1e9
        for x in (base + 1.0, base + 2.0, base + 3.0):
            s.update(x)
        assert s.variance == pytest.approx(1.0, rel=1e-9)


class TestExponentialMovingAverage:
    def test_first_value_exact(self):
        ema = ExponentialMovingAverage(0.3)
        assert ema.update(7.0) == 7.0

    def test_empty_value_zero(self):
        assert ExponentialMovingAverage(0.5).value == 0.0

    def test_converges_to_constant(self):
        ema = ExponentialMovingAverage(0.2)
        for _ in range(200):
            ema.update(4.0)
        assert ema.value == pytest.approx(4.0)

    def test_recurrence(self):
        ema = ExponentialMovingAverage(0.5)
        ema.update(0.0)
        ema.update(10.0)
        assert ema.value == pytest.approx(5.0)

    def test_alpha_one_tracks_latest(self):
        ema = ExponentialMovingAverage(1.0)
        ema.update(1.0)
        ema.update(9.0)
        assert ema.value == 9.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            ExponentialMovingAverage(alpha)

    def test_count_tracks_updates(self):
        ema = ExponentialMovingAverage(0.5)
        for i in range(5):
            ema.update(float(i))
        assert ema.count == 5
