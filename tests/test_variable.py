"""Tests for variable reservoir sampling (Theorem 3.3 scheme)."""

import math

import numpy as np
import pytest

from repro.core.space_constrained import SpaceConstrainedReservoir
from repro.core.variable import VariableReservoir


class TestConstruction:
    def test_default_q_is_paper_recommendation(self):
        res = VariableReservoir(lam=1e-4, capacity=1000)
        assert res.q == pytest.approx(1 - 1 / 1000)

    def test_target_p_in(self):
        res = VariableReservoir(lam=1e-4, capacity=1000)
        assert res.target_p_in == pytest.approx(0.1)

    def test_starts_at_full_insertion_rate(self):
        res = VariableReservoir(lam=1e-4, capacity=1000)
        assert res.p_in == 1.0

    def test_capacity_above_natural_size_raises(self):
        with pytest.raises(ValueError, match="not constrained"):
            VariableReservoir(lam=1e-2, capacity=500)

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_q(self, q):
        with pytest.raises(ValueError, match="q must lie"):
            VariableReservoir(lam=1e-4, capacity=100, q=q)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError, match="lambda"):
            VariableReservoir(lam=0.0, capacity=100)


class TestFillBehaviour:
    def test_fills_in_about_capacity_points(self):
        """Figure 1's headline: full after ~n_max arrivals, not n log n/p."""
        res = VariableReservoir(lam=1e-5, capacity=1000, rng=0)
        res.extend(range(1500))
        assert res.size >= 999

    def test_stays_within_one_point_of_full(self):
        """With q = 1 - 1/n_max at most one point is ever missing."""
        res = VariableReservoir(lam=1e-5, capacity=1000, rng=1)
        deficit = 0
        for i in range(5000):
            res.offer(i)
            if i > 1500:
                deficit = max(deficit, res.capacity - res.size)
        assert deficit <= 1

    def test_much_fuller_than_fixed_scheme(self):
        """The Figure 1 contrast, as an invariant."""
        lam, n = 1e-5, 1000
        var = VariableReservoir(lam=lam, capacity=n, rng=2)
        fixed = SpaceConstrainedReservoir(lam=lam, capacity=n, rng=3)
        for i in range(20_000):
            var.offer(i)
            fixed.offer(i)
        assert var.size >= 999
        assert fixed.size < 400

    def test_p_in_descends_towards_target(self):
        res = VariableReservoir(lam=1e-4, capacity=500, rng=4)
        res.extend(range(2000))
        mid_p = res.p_in
        assert mid_p < 1.0
        res.extend(range(200_000))
        assert res.p_in == pytest.approx(res.target_p_in)

    def test_p_in_never_below_target(self):
        res = VariableReservoir(lam=1e-3, capacity=100, rng=5)
        for i in range(50_000):
            res.offer(i)
            assert res.p_in >= res.target_p_in - 1e-12

    def test_phase_history_monotone(self):
        res = VariableReservoir(lam=1e-4, capacity=500, rng=6)
        res.extend(range(30_000))
        times = [t for t, _ in res.phase_history]
        p_values = [p for _, p in res.phase_history]
        assert times == sorted(times)
        assert all(a >= b for a, b in zip(p_values, p_values[1:]))

    def test_aggressive_q_also_correct_but_jumpier(self):
        """Theorem 3.3 holds for any q; halving ejects half per phase."""
        res = VariableReservoir(lam=1e-4, capacity=1000, q=0.5, rng=7)
        res.extend(range(5000))
        assert res.size <= 1000
        # After a halving phase the reservoir can be down to ~half.
        assert res.size >= 400


class TestDistribution:
    def test_converged_age_distribution_matches_fixed_scheme(self):
        """After p_in converges, the sample must look like Algorithm 3.1's
        stationary distribution (Theorem 3.3)."""
        lam, n = 1e-3, 200  # target p_in = 0.2, mean stationary age 1/lam
        ages = []
        for seed in range(12):
            res = VariableReservoir(lam=lam, capacity=n, rng=seed)
            res.extend(range(12_000))
            assert res.p_in == pytest.approx(res.target_p_in)
            ages.append(float(res.ages().mean()))
        assert np.mean(ages) == pytest.approx(1 / lam, rel=0.15)

    def test_inclusion_probability_uses_current_p_in(self):
        res = VariableReservoir(lam=1e-3, capacity=100, rng=8)
        res.extend(range(5000))
        expected = res.p_in * math.exp(-1e-3 * 100)
        assert res.inclusion_probability(4900) == pytest.approx(expected)

    def test_inclusion_probabilities_vectorized(self):
        res = VariableReservoir(lam=1e-3, capacity=100, rng=9)
        res.extend(range(2000))
        r = np.array([500, 1500, 2000])
        np.testing.assert_allclose(
            res.inclusion_probabilities(r),
            [res.inclusion_probability(int(x)) for x in r],
        )

    def test_p_in_at_reconstructs_history(self):
        res = VariableReservoir(lam=1e-4, capacity=500, rng=10)
        res.extend(range(10_000))
        assert res.p_in_at(0) == 1.0
        assert res.p_in_at(res.t) == pytest.approx(res.p_in)
        # Mid-stream value must match some recorded phase.
        mid = res.p_in_at(2000)
        recorded = [p for _, p in res.phase_history]
        assert any(math.isclose(mid, p) for p in recorded)

    def test_p_in_at_negative_raises(self):
        res = VariableReservoir(lam=1e-4, capacity=500)
        with pytest.raises(ValueError, match="t must be >= 0"):
            res.p_in_at(-1)


class TestCapacityOneEdgeCase:
    def test_capacity_one_uses_halving_default(self):
        """n_max = 1 degenerates the paper's q = 1 - 1/n schedule to 0;
        the sampler falls back to halving."""
        res = VariableReservoir(lam=0.1, capacity=1, rng=0)
        assert res.q == 0.5
        res.extend(range(200))
        assert res.size <= 1
