"""Tests for the Section 4 variance analysis."""

import numpy as np
import pytest

from repro.queries import variance_analysis as va
from repro.queries.inclusion import (
    exact_variance,
    exponential_model,
    space_constrained_model,
    unbiased_model,
)
from repro.queries.spec import count_query


def lemma41_direct(model, h, t):
    """Direct Lemma 4.1 evaluation via the generic machinery."""
    r = np.arange(1, t + 1)
    c = count_query(h).coefficients(r, t)
    p = model(r, t)
    return float(exact_variance(c, np.ones(t), p)[0])


class TestClosedFormsMatchDirectSums:
    @pytest.mark.parametrize("h", [1, 10, 100, 500])
    def test_unbiased(self, h):
        n, t = 50, 1000
        closed = va.count_variance_unbiased(n, h, t)
        direct = lemma41_direct(unbiased_model(n), h, t)
        assert closed == pytest.approx(direct, rel=1e-9)

    @pytest.mark.parametrize("h", [1, 10, 100, 400])
    def test_exponential(self, h):
        n, t = 50, 1000
        closed = va.count_variance_exponential(n, h, t)
        direct = lemma41_direct(exponential_model(n), h, t)
        assert closed == pytest.approx(direct, rel=1e-9)

    @pytest.mark.parametrize("h", [1, 10, 100, 400])
    def test_space_constrained(self, h):
        n, p_in, t = 50, 0.4, 1000
        closed = va.count_variance_space_constrained(n, p_in, h, t)
        direct = lemma41_direct(space_constrained_model(n, p_in), h, t)
        assert closed == pytest.approx(direct, rel=1e-9)


class TestQualitativeShape:
    def test_unbiased_variance_linear_in_t(self):
        n, h = 100, 500
        v1 = va.count_variance_unbiased(n, h, 10_000)
        v2 = va.count_variance_unbiased(n, h, 20_000)
        assert v2 == pytest.approx(2 * v1, rel=0.02)

    def test_exponential_variance_independent_of_t(self):
        n, h = 100, 500
        assert va.count_variance_exponential(
            n, h, 10_000
        ) == va.count_variance_exponential(n, h, 1_000_000)

    def test_exponential_variance_explodes_in_horizon(self):
        n, t = 100, 100_000
        small = va.count_variance_exponential(n, n, t)
        large = va.count_variance_exponential(n, 10 * n, t)
        assert large > 100 * small

    def test_unbiased_exact_when_n_ge_t(self):
        assert va.count_variance_unbiased(100, 50, 80) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            va.count_variance_unbiased(10, 0, 100)
        with pytest.raises(ValueError):
            va.count_variance_exponential(10, 101, 100)
        with pytest.raises(ValueError):
            va.count_variance_space_constrained(10, 0.0, 5, 100)


class TestCrossover:
    def test_crossover_exists_for_long_streams(self):
        n, t = 1000, 200_000
        h_star = va.crossover_horizon(n, t)
        assert h_star is not None
        # The crossover must actually separate the regimes.
        assert va.count_variance_exponential(
            n, h_star, t
        ) > va.count_variance_unbiased(n, h_star, t)
        assert va.count_variance_exponential(
            n, h_star - 1, t
        ) <= va.count_variance_unbiased(n, h_star - 1, t)

    def test_crossover_moves_out_with_stream_length(self):
        """Longer streams push the crossover to larger horizons — the
        longer the stream, the more horizons favor the biased design."""
        n = 1000
        h1 = va.crossover_horizon(n, 50_000)
        h2 = va.crossover_horizon(n, 500_000)
        assert h1 is not None and h2 is not None
        assert h2 > h1

    def test_no_crossover_within_cap(self):
        # Tiny max_horizon: biased still better everywhere below it.
        assert va.crossover_horizon(1000, 200_000, max_horizon=100) is None

    def test_space_constrained_crossover(self):
        h_star = va.crossover_horizon(1000, 200_000, p_in=0.1)
        assert h_star is not None

    def test_crossover_matches_empirical_regime(self):
        """The Figure 2-5 reproductions crossed over between h=25k and
        h=50k at t=200k with n=1000, p_in=0.1; the analysis must place the
        predicted crossover in that region (same order of magnitude)."""
        h_star = va.crossover_horizon(1000, 200_000, p_in=0.1)
        assert 10_000 < h_star < 120_000


class TestVarianceProfile:
    def test_shape_and_columns(self):
        horizons = np.array([100, 1_000, 10_000])
        profile = va.variance_profile(1000, 100_000, horizons)
        assert profile.shape == (3, 2)
        # biased column grows faster than unbiased at large horizons.
        assert profile[-1, 0] > profile[0, 0]

    def test_profile_with_p_in(self):
        horizons = np.array([100, 1_000])
        profile = va.variance_profile(1000, 100_000, horizons, p_in=0.1)
        assert np.all(profile >= 0)


class TestExactUnbiasedVariance:
    def test_matches_lemma_for_small_horizon(self):
        """For h << t the fpc correction vanishes."""
        n, t, h = 100, 1_000_000, 100
        assert va.count_variance_unbiased_exact(n, h, t) == pytest.approx(
            va.count_variance_unbiased(n, h, t), rel=0.01
        )

    def test_smaller_than_lemma_at_large_horizon(self):
        """Negative dependence of fixed-size sampling reduces variance."""
        n, t, h = 100, 10_000, 6_000
        exact = va.count_variance_unbiased_exact(n, h, t)
        lemma = va.count_variance_unbiased(n, h, t)
        assert exact < lemma
        # exact = h (1-h/t) (t-n)/(t-1) (t/n); lemma = h (t-n)/n, so the
        # ratio is (1 - h/t) * t/(t-1).
        fpc = (1 - h / t) * t / (t - 1)
        assert exact / lemma == pytest.approx(fpc, rel=1e-9)

    def test_zero_when_everything_retained(self):
        assert va.count_variance_unbiased_exact(100, 50, 80) == 0.0

    def test_matches_hypergeometric_monte_carlo(self, rng):
        """Cross-check against scipy's hypergeometric variance."""
        from scipy import stats

        n, t, h = 30, 500, 200
        hyper_var = stats.hypergeom(t, h, n).var() * (t / n) ** 2
        assert va.count_variance_unbiased_exact(n, h, t) == pytest.approx(
            hyper_var, rel=1e-9
        )
