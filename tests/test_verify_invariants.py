"""Adversarial-stream invariant checks (fast tier).

Every sampler family is driven over every hostile stream shape —
bursts, heavy duplication, constants, numeric extremes — with
structural invariants checked at every checkpoint and determinism
asserted across re-runs. This is the fast-tier complement of the
``statistical`` conformance specs: it runs on every push.
"""

import numpy as np
import pytest

from repro.core.unbiased import UnbiasedReservoir
from repro.verify import (
    ADVERSARIAL_STREAMS,
    SAMPLER_FAMILIES,
    adversarial_stream,
    check_state_invariants,
    run_all_invariants,
    run_invariant_case,
)

CASES = [
    (family, stream)
    for family in sorted(SAMPLER_FAMILIES)
    for stream in sorted(ADVERSARIAL_STREAMS)
]


class TestStreams:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_STREAMS))
    def test_streams_are_deterministic_and_sized(self, name):
        a = adversarial_stream(name, length=500, seed=3)
        b = adversarial_stream(name, length=500, seed=3)
        assert a == b
        assert len(a) == 500

    def test_burst_stream_contains_runs(self):
        stream = adversarial_stream("bursts", length=2000, seed=0)
        arr = np.asarray(stream)
        runs = np.flatnonzero(np.diff(arr) == 0.0)
        assert runs.size > 100  # long identical runs exist

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError, match="unknown stream"):
            adversarial_stream("nope")


class TestInvariantHarness:
    @pytest.mark.parametrize("family,stream", CASES)
    def test_family_survives_stream(self, family, stream):
        result = run_invariant_case(family, stream, length=800, seed=0)
        assert result.passed, result.violations

    def test_run_all_invariants_covers_matrix(self):
        results = run_all_invariants(length=300, seed=0)
        pairs = {(r.family, r.stream) for r in results}
        assert len(pairs) == len(results)  # no duplicate cases
        assert len(results) == len(CASES) + 2  # + timestamp-ordering cases
        assert all(r.passed for r in results), [
            (r.family, r.stream, r.violations) for r in results if not r.passed
        ]

    def test_timestamp_ordering_cases_present(self):
        results = run_all_invariants(length=300, seed=0)
        reversed_cases = [
            r for r in results if r.stream == "reversed-timestamps"
        ]
        assert {r.family for r in reversed_cases} == {
            "timestamped",
            "time_decay",
        }

    def test_to_dict_shape(self):
        result = run_invariant_case("unbiased", "constant", length=300)
        payload = result.to_dict()
        assert payload["family"] == "unbiased"
        assert payload["stream"] == "constant"
        assert payload["passed"] is True
        assert payload["violations"] == []


class TestStateChecker:
    def test_clean_sampler_has_no_violations(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(100))
        assert check_state_invariants(res) == []

    def test_detects_capacity_overflow(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(20))
        res._payloads.append("extra")  # corrupt the state on purpose
        res._arrivals.append(res.t)
        violations = check_state_invariants(res)
        assert any("capacity" in v for v in violations)

    def test_detects_bad_arrival_index(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(20))
        res._arrivals[0] = 999  # out of [1, t]
        violations = check_state_invariants(res)
        assert any("arrival indices" in v for v in violations)

    def test_detects_counter_drift(self):
        res = UnbiasedReservoir(10, rng=0)
        res.extend(range(20))
        res.insertions += 5
        violations = check_state_invariants(res)
        assert any("insertions - ejections" in v for v in violations)
