"""The Monte-Carlo runner: seeding contract, parallel equivalence,
check semantics, and report structure.

Everything here runs at tiny replicate budgets — the point is the
machinery (determinism, fan-out, JSON shape), not statistical power,
which the ``statistical`` tier covers.
"""

import json

import numpy as np
import pytest

from repro.verify import (
    SPECS,
    build_report,
    get_spec,
    render_report,
    run_spec,
    run_specs,
    specs_for,
    write_report,
)
from repro.verify.runner import spec_seed_sequences
from repro.verify.spec import (
    FrequencyCheck,
    InclusionBandCheck,
    MeanBandCheck,
)

FAST_SPEC = "unbiased-uniform"


class TestSeeding:
    def test_seed_sequences_are_deterministic(self):
        a = spec_seed_sequences("exponential-age", 0, 5)
        b = spec_seed_sequences("exponential-age", 0, 5)
        for sa, sb in zip(a, b):
            assert np.random.default_rng(sa).integers(1 << 30) == (
                np.random.default_rng(sb).integers(1 << 30)
            )

    def test_specs_draw_independent_streams(self):
        a = spec_seed_sequences("exponential-age", 0, 3)
        b = spec_seed_sequences("unbiased-uniform", 0, 3)
        draws_a = [int(np.random.default_rng(s).integers(1 << 30)) for s in a]
        draws_b = [int(np.random.default_rng(s).integers(1 << 30)) for s in b]
        assert draws_a != draws_b

    def test_changing_base_seed_changes_replicates(self):
        a = spec_seed_sequences(FAST_SPEC, 0, 3)
        b = spec_seed_sequences(FAST_SPEC, 1, 3)
        assert [
            int(np.random.default_rng(s).integers(1 << 30)) for s in a
        ] != [int(np.random.default_rng(s).integers(1 << 30)) for s in b]


class TestRunner:
    def test_same_seed_same_result(self):
        spec = get_spec(FAST_SPEC)
        r1 = run_spec(spec, replicates=10, jobs=1, seed=0)
        r2 = run_spec(spec, replicates=10, jobs=1, seed=0)
        assert r1.result.statistic == r2.result.statistic
        assert r1.result.p_value == r2.result.p_value

    def test_jobs_do_not_change_the_result(self):
        """The fan-out must be a pure execution detail: identical
        statistics regardless of worker count."""
        spec = get_spec(FAST_SPEC)
        inline = run_spec(spec, replicates=16, jobs=1, seed=3)
        fanned = run_spec(spec, replicates=16, jobs=2, seed=3)
        assert inline.result.statistic == fanned.result.statistic
        assert inline.result.p_value == fanned.result.p_value

    def test_run_specs_shares_one_pool(self):
        specs = specs_for([FAST_SPEC, "space-constrained-fill"])
        results = run_specs(specs, replicates=8, jobs=2, seed=0)
        assert [r.spec.name for r in results] == [
            FAST_SPEC,
            "space-constrained-fill",
        ]

    def test_invalid_arguments(self):
        spec = get_spec(FAST_SPEC)
        with pytest.raises(ValueError, match="replicates"):
            run_spec(spec, replicates=0, jobs=1)
        with pytest.raises(ValueError, match="jobs"):
            run_spec(spec, replicates=4, jobs=0)

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError, match="unknown spec"):
            specs_for(["no-such-spec"])
        with pytest.raises(KeyError, match="no-such-spec"):
            get_spec("no-such-spec")


class TestChecks:
    def test_frequency_check_accepts_its_own_model(self):
        rng = np.random.default_rng(0)
        pmf = np.full(10, 0.1)
        obs = [rng.integers(0, 10, size=200) for _ in range(5)]
        result = FrequencyCheck(pmf, alpha=1e-4).evaluate(obs)
        assert result.passed
        assert result.band is not None
        assert 0.0 < result.p_value <= 1.0

    def test_frequency_check_rejects_wrong_model(self):
        rng = np.random.default_rng(0)
        pmf = np.full(10, 0.1)
        skewed = [rng.integers(0, 5, size=200) for _ in range(5)]
        result = FrequencyCheck(pmf, alpha=1e-4).evaluate(skewed)
        assert not result.passed
        assert result.p_value < 1e-10

    def test_frequency_check_merges_sparse_bins(self):
        pmf = np.array([0.9] + [0.01] * 10)
        obs = [np.zeros(300, dtype=int)]
        result = FrequencyCheck(pmf, alpha=1e-4, min_expected=5.0).evaluate(obs)
        assert 2 <= result.detail["bins"] < pmf.size

    def test_frequency_check_refuses_degenerate_binning(self):
        pmf = np.full(25, 0.04)
        with pytest.raises(ValueError, match="fewer than 2 bins"):
            FrequencyCheck(pmf, min_expected=20.0).evaluate(
                [np.zeros(4, dtype=int)]
            )

    def test_frequency_check_rejects_out_of_support(self):
        with pytest.raises(ValueError, match="support"):
            FrequencyCheck(np.full(5, 0.2)).evaluate([np.array([9])])

    def test_mean_band_check(self):
        obs = [np.array([10.0 + 0.01 * i]) for i in range(20)]
        ok = MeanBandCheck(expected=10.1, alpha=1e-5).evaluate(obs)
        assert ok.passed
        off = MeanBandCheck(expected=50.0, alpha=1e-5).evaluate(obs)
        assert not off.passed
        assert off.p_value < 1e-10

    def test_inclusion_band_check(self):
        rng = np.random.default_rng(1)
        # 40 replicates of a perfect Bernoulli(0.5) inclusion per position.
        obs = [
            np.flatnonzero(rng.random(20) < 0.5) + 1 for _ in range(40)
        ]
        check = InclusionBandCheck(
            positions=20,
            probability=lambda r: np.full(len(r), 0.5),
            alpha=1e-4,
        )
        assert check.evaluate(obs).passed
        # All-included is far outside the band.
        saturated = [np.arange(1, 21) for _ in range(40)]
        assert not check.evaluate(saturated).passed


class TestReport:
    def test_report_structure_and_roundtrip(self, tmp_path):
        results = run_specs(
            specs_for([FAST_SPEC]), replicates=8, jobs=1, seed=0
        )
        report = build_report(
            results, [], seed=0, jobs=1, elapsed_seconds=0.5
        )
        assert report["schema"] == "repro.verify/1"
        assert report["specs_total"] == 1
        spec_row = report["specs"][0]
        for key in (
            "name",
            "family",
            "theory",
            "statistic",
            "statistic_value",
            "p_value",
            "alpha",
            "confidence_band",
            "passed",
            "replicates",
            "seed",
        ):
            assert key in spec_row
        path = write_report(report, tmp_path / "VERIFY_report.json")
        assert json.loads(path.read_text()) == report

    def test_render_mentions_every_spec(self):
        results = run_specs(
            specs_for([FAST_SPEC, "space-constrained-fill"]),
            replicates=8,
            jobs=1,
            seed=0,
        )
        report = build_report(results, [], seed=0, jobs=1, elapsed_seconds=0.1)
        text = render_report(report)
        assert FAST_SPEC in text
        assert "space-constrained-fill" in text
        assert "overall" in text


class TestRegistry:
    def test_at_least_eight_specs(self):
        assert len(SPECS) >= 8

    def test_spec_metadata_is_complete(self):
        for spec in SPECS.values():
            meta = spec.describe()
            assert meta["name"] == spec.name
            assert meta["statistic"] in {"chi2", "z_mean", "binom_band"}
            assert meta["ingest"] in {"per-item", "batched"}
            assert spec.default_replicates >= spec.test_replicates
