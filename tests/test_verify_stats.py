"""Cross-checks of the numpy-only statistics kernel against scipy.

``repro.verify.stats`` hand-implements the special functions it needs
(regularized incomplete gamma, Kolmogorov tails, binomial tails) so the
library keeps its numpy-only dependency contract; these tests pin every
implementation to scipy's reference values.
"""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.verify import stats as vstats


class TestChiSquare:
    @pytest.mark.parametrize("df", [1, 2, 5, 9, 24, 99, 400])
    @pytest.mark.parametrize("x", [0.1, 1.0, 5.0, 20.0, 120.0, 700.0])
    def test_sf_matches_scipy(self, df, x):
        expected = sps.chi2.sf(x, df)
        assert vstats.chi2_sf(x, df) == pytest.approx(
            expected, rel=1e-9, abs=1e-300
        )

    @pytest.mark.parametrize("df", [2, 9, 99])
    @pytest.mark.parametrize("p", [0.5, 1e-2, 1e-4, 1e-6])
    def test_isf_matches_scipy(self, df, p):
        assert vstats.chi2_isf(p, df) == pytest.approx(
            sps.chi2.isf(p, df), rel=1e-6
        )

    def test_chisquare_matches_scipy(self):
        observed = np.array([18, 22, 29, 11, 20.0])
        expected = np.full(5, observed.sum() / 5)
        stat, p = vstats.chisquare(observed, expected)
        ref_stat, ref_p = sps.chisquare(observed, expected)
        assert stat == pytest.approx(ref_stat)
        assert p == pytest.approx(ref_p, rel=1e-9)

    def test_sf_edge_cases(self):
        assert vstats.chi2_sf(0.0, 5) == 1.0
        assert vstats.chi2_sf(-1.0, 5) == 1.0
        with pytest.raises(ValueError):
            vstats.chi2_sf(1.0, 0)


class TestGammaInc:
    @pytest.mark.parametrize("a", [0.5, 1.0, 3.7, 50.0])
    @pytest.mark.parametrize("x", [0.01, 0.9, 4.2, 60.0])
    def test_lower_matches_scipy(self, a, x):
        from scipy.special import gammainc

        assert vstats.gammainc_lower(a, x) == pytest.approx(
            gammainc(a, x), rel=1e-10, abs=1e-300
        )

    def test_lower_plus_upper_is_one(self):
        for a, x in [(0.5, 0.2), (3.0, 3.5), (10.0, 25.0)]:
            total = vstats.gammainc_lower(a, x) + vstats.gammainc_upper(a, x)
            assert total == pytest.approx(1.0, rel=1e-12)


class TestNormal:
    @pytest.mark.parametrize("z", [-3.0, -1.0, 0.0, 0.5, 2.0, 4.5, 8.0])
    def test_sf_matches_scipy(self, z):
        assert vstats.normal_sf(z) == pytest.approx(
            sps.norm.sf(z), rel=1e-10, abs=1e-300
        )


class TestKolmogorov:
    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(size=500)

        def cdf(x):
            return 1.0 - np.exp(-np.asarray(x))

        stat = vstats.ks_statistic(data, cdf)
        ref = sps.ks_1samp(data, lambda x: 1.0 - np.exp(-x))
        assert stat == pytest.approx(ref.statistic, rel=1e-12)

    @pytest.mark.parametrize("n", [50, 500, 5000])
    @pytest.mark.parametrize("d", [0.01, 0.05, 0.12])
    def test_sf_close_to_scipy_asymptotic(self, n, d):
        """Stephens' approximation tracks the exact distribution to a few
        percent wherever the p-value is non-negligible."""
        ref = sps.kstwobign.sf(d * math.sqrt(n))
        ours = vstats.kolmogorov_sf(d, n)
        if ref > 1e-6:
            assert ours == pytest.approx(ref, rel=0.15, abs=1e-4)

    def test_sf_bounds(self):
        assert vstats.kolmogorov_sf(0.0, 100) == 1.0
        assert vstats.kolmogorov_sf(1.0, 100) == 0.0


class TestBinomial:
    @pytest.mark.parametrize("n,p", [(50, 0.1), (200, 0.5), (600, 0.02)])
    def test_cdf_matches_scipy(self, n, p):
        for k in [0, 1, n // 10, n // 2, n - 1, n]:
            assert vstats.binom_cdf(k, n, p) == pytest.approx(
                sps.binom.cdf(k, n, p), rel=1e-9, abs=1e-12
            )

    @pytest.mark.parametrize("n,p,alpha", [(200, 0.1, 1e-4), (80, 0.5, 1e-2)])
    def test_interval_matches_scipy_ppf(self, n, p, alpha):
        lo, hi = vstats.binom_interval(n, p, alpha)
        ref_lo, ref_hi = sps.binom.ppf([alpha / 2, 1 - alpha / 2], n, p)
        assert lo == int(ref_lo)
        assert hi == int(ref_hi)

    def test_two_sided_pvalue_is_symmetric_tail(self):
        p = vstats.binom_two_sided_pvalue(50, 100, 0.5)
        assert p == pytest.approx(1.0)
        low = vstats.binom_two_sided_pvalue(20, 100, 0.5)
        high = vstats.binom_two_sided_pvalue(80, 100, 0.5)
        assert low == pytest.approx(high, rel=1e-9)
        assert low < 1e-8

    def test_logpmf_matches_scipy(self):
        k = np.arange(0, 51)
        ours = vstats.binom_logpmf(k, 50, 0.3)
        ref = sps.binom.logpmf(k, 50, 0.3)
        np.testing.assert_allclose(ours, ref, rtol=1e-10)
